//! Offline stand-in for the real `serde` crate (see `vendor/README.md`).
//!
//! The workspace only ever *derives* `Serialize` / `Deserialize` — no code
//! path serializes at runtime — so no-op derive macros are a faithful,
//! dependency-free substitute in the hermetic build environment.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
