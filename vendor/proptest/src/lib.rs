//! Offline stand-in for the real `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API this workspace uses:
//! [`Strategy`] over ranges/tuples with `prop_map` / `prop_flat_map`,
//! [`any`], `prop::collection::vec`, the [`proptest!`] macro with
//! `#![proptest_config(..)]`, and the `prop_assert*` macros. Generation is
//! deterministic — every case is derived from a hash of the test's module
//! path, name and case index — so failures reproduce exactly. There is no
//! shrinking: a failing case panics with the generated values debuggable
//! from the assertion message.

use std::ops::Range;

/// Deterministic splitmix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for one test case, seeded from the test identity and case index.
    #[must_use]
    pub fn for_case(test_id: &str, case: u32) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_id.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of test values (the proptest `Strategy` subset).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second-stage strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several decades.
        let mag = (rng.unit_f64() * 60.0) - 30.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag.exp2()
    }
}

/// Strategy for any value of `T` (subset of proptest's `any`).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::` namespace mirrored from the real crate.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// A vector-length specification: a fixed size or a half-open range.
        #[derive(Debug, Clone)]
        pub struct SizeRange(Range<usize>);

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange(n..n + 1)
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                SizeRange(r)
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `sizes`.
        pub fn vec<S: Strategy>(element: S, sizes: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                sizes: sizes.into(),
            }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            sizes: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.sizes.0.clone().generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Per-`proptest!` block configuration (subset: case count only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a property; identical to `assert!` in this stand-in.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality; identical to `assert_eq!` in this stand-in.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = (0.0f64..1.0, 1usize..10).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::TestRng::for_case("t", 0);
        let mut r2 = crate::TestRng::for_case("t", 0);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 3);
        for _ in 0..1000 {
            let x = (2usize..5).generate(&mut rng);
            assert!((2..5).contains(&x));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(v in prop::collection::vec(0.0f64..1.0, 1..8), flag in any::<bool>()) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert_eq!(flag, flag);
        }
    }
}
