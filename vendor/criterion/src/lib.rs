//! Offline stand-in for the real `criterion` crate (see `vendor/README.md`).
//!
//! Provides the macro/struct surface the workspace's benches use and
//! measures plain wall-clock time: every `Bencher::iter` target is warmed
//! once, then timed over enough iterations to fill a small budget, and a
//! one-line report is printed. No statistics, plots or comparisons — the
//! goal is that `cargo bench` runs and reports honest timings offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Per-iteration time budget for one benchmark id.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (subset of criterion's `Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&self.name, &id.into().0);
        self
    }

    /// Runs one parameterized benchmark under this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&self.name, &id.into().0);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures; handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over a small fixed wall-clock budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, excluded from timing
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= TIME_BUDGET {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("{group}/{id}: no measurement");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        println!(
            "{group}/{id}: {:.3} ms/iter ({} iters)",
            per_iter * 1e3,
            self.iters
        );
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
