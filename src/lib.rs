//! # synts — Synergistic Timing Speculation for Multi-Threaded Programs
//!
//! The facade crate of the SynTS reproduction suite (DAC 2016 /
//! Yasin 2016). It re-exports every member crate and flattens the
//! optimization API — the [`Solver`] trait, the [`SolverRegistry`] and
//! the [`Synts`] builder — so applications depend on one crate and write
//! `use synts::prelude::*;`.
//!
//! ## Layers
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`gatelib`] | `gatelib` | cell library, netlists, STA, dynamic timing simulation |
//! | [`circuits`] | `circuits` | Decode / SimpleALU / ComplexALU stage generators |
//! | [`timing`] | `timing` | delay traces, error curves, energy-delay metrics |
//! | [`workloads`] | `workloads` | instrumented SPLASH-2-like parallel kernels |
//! | [`archsim`] | `archsim` | CPI model, caches, cycle-level Razor simulation |
//! | [`gpgpu`] | `gpgpu` | the SIMD-unit homogeneity case study |
//! | [`milp`] | `milp` | the dense LP/MILP solver backing SynTS-MILP |
//! | [`core_api`] | `synts-core` | system model, solvers, baselines, extensions, online controller |
//!
//! ## Quickstart
//!
//! Solve one heterogeneous barrier interval with the paper's exact
//! polynomial solver, via the builder:
//!
//! ```
//! use synts::prelude::*;
//!
//! # fn main() -> Result<(), OptError> {
//! let cfg = SystemConfig::paper_default(100.0);
//! let curve = |lo: f64| {
//!     ErrorCurve::from_normalized_delays(
//!         (0..64).map(|i| lo + (1.0 - lo) * i as f64 / 64.0).collect(),
//!     )
//! };
//! let profiles = vec![
//!     ThreadProfile::new(10_000.0, 1.2, curve(0.7)?), // speculation-critical
//!     ThreadProfile::new(10_000.0, 1.0, curve(0.4)?), // has headroom
//! ];
//!
//! // The fluent front door...
//! let synts = Synts::builder().scheme("synts_poly").theta(1.0).build()?;
//! let (assignment, ed) = synts.run(&cfg, &profiles)?;
//! assert_eq!(assignment.len(), 2);
//! assert!(ed.energy > 0.0 && ed.time > 0.0);
//!
//! // ...or registry-driven dispatch over every scheme:
//! let registry = SolverRegistry::with_defaults();
//! for name in ["synts_poly", "per_core_ts", "nominal"] {
//!     let solver = registry.get(name).expect("registered");
//!     let a = solver.solve(&cfg, &profiles, 1.0)?;
//!     assert_eq!(a.len(), profiles.len());
//! }
//! # Ok(())
//! # }
//! ```
//!
//! End-to-end (workload kernel → gate-level characterization → solver),
//! as in `examples/quickstart.rs`:
//!
//! ```no_run
//! use synts::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = characterize(Benchmark::Radix, StageKind::Decode, &HarnessConfig::quick())?;
//! let cfg = data.system_config();
//! let profiles = data.intervals[0].profiles();
//! let theta = theta_equal_weight(&cfg, &profiles)?;
//! let assignment = Synts::builder().theta(theta).build()?.solve(&cfg, &profiles)?;
//! println!("{assignment:?}");
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

pub use archsim;
pub use circuits;
pub use gatelib;
pub use gpgpu;
pub use milp;
pub use synts_core as core_api;
pub use timing;
pub use workloads;

// The naive pre-engine solver paths — the executable spec the sweep-scale
// engine is property-tested and benchmarked against.
pub use synts_core::reference;

// The optimization API, flattened to the facade root.
pub use synts_core::{
    characterize_cached, characterize_workload_cached, default_theta_sweep, evaluate,
    log_theta_grid, no_ts, nominal, pareto_sweep, pareto_sweep_pooled, per_core_ts, pruning_stats,
    run_interval, run_interval_full, run_interval_offline, run_interval_with,
    run_intervals_batched, synts_exhaustive, synts_milp, synts_milp_with, synts_poly,
    theta_equal_weight, thread_energy, thread_time, weighted_cost, worker_count, Assignment,
    CacheStats, Capabilities, CharCache, Dataset, Experiment, FaultPlan, IntervalOutcome,
    IntervalSelection, MilpTuning, Objective, OperatingPoint, OptError, PruningStats, Quality,
    Record, Report, ReportCheck, SamplingPlan, ScenarioSpec, SolveRequest, Solver, SolverRegistry,
    SweepPoint, SyntsBuilder, SystemConfig, ThetaSpec, ThreadPool, ThreadProfile, ThreadTrace,
    CACHE_DIR_ENV, FAULTS_ENV, THREADS_ENV,
};

// Keep the builder's name free at the root for the facade struct itself.
pub use synts_core::Synts;

/// Everything a SynTS application typically needs: the solver API, the
/// system model, the characterization harness, and the cross-layer types
/// it produces and consumes.
pub mod prelude {
    pub use synts_core::experiments::{
        characterize, characterize_workload, characterize_workload_pooled, BenchmarkData,
        HarnessConfig, IntervalData, ThreadData,
    };
    pub use synts_core::leakage::{
        evaluate_with_leakage, synts_poly_leakage, weighted_cost_with_leakage, LeakageModel,
    };
    pub use synts_core::online::estimate_curve;
    pub use synts_core::power_cap::{synts_poly_power_capped, PowerCappedSolution};
    pub use synts_core::scenario::Json;
    pub use synts_core::thrifty::{thrifty_barrier, ThriftyConfig};
    pub use synts_core::{
        characterize_cached, characterize_workload_cached, default_theta_sweep, evaluate,
        log_theta_grid, no_ts, nominal, pareto_sweep, pareto_sweep_pooled, per_core_ts,
        pruning_stats, run_interval, run_interval_full, run_interval_offline, run_interval_with,
        run_intervals_batched, synts_exhaustive, synts_milp, synts_milp_with, synts_poly,
        theta_equal_weight, thread_energy, thread_time, weighted_cost, worker_count, Assignment,
        CacheStats, Capabilities, CharCache, Dataset, Experiment, FaultPlan, IntervalOutcome,
        IntervalSelection, MilpTuning, Objective, OperatingPoint, OptError, PruningStats, Quality,
        Record, Report, ReportCheck, SamplingPlan, ScenarioSpec, Shard, ShardPlan, SolveRequest,
        Solver, SolverRegistry, SweepPoint, Synts, SyntsBuilder, SystemConfig, ThetaSpec,
        ThreadPool, ThreadProfile, ThreadTrace, CACHE_DIR_ENV, FAULTS_ENV, THREADS_ENV,
    };

    pub use circuits::StageKind;
    pub use timing::{EnergyDelay, ErrorCurve, ErrorModel, SampledCurve};
    pub use workloads::{Benchmark, WorkloadConfig};
}
