//! Umbrella crate for the SynTS reproduction suite: see the member crates.
pub use synts_core as core_api;
