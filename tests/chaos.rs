//! The chaos harness: deterministic fault injection end-to-end.
//!
//! Three guarantees, each load-bearing for the crash-safety story:
//!
//! * **Fault determinism** — the same seeded [`FaultPlan`] against the
//!   same spec produces the same final report *and* the same fired-site
//!   ledger, run after run, at 1, 2 and 4 workers. Faults never corrupt
//!   results: a plan that drops cache writes, tears cache reads and
//!   panics first shard attempts still converges to the byte-exact
//!   monolithic report.
//! * **Client resilience** — torn server replies and refused
//!   connections are retried with deterministic backoff; a keyed
//!   resubmission never double-enqueues.
//! * **Artifacts** — with `SYNTS_CHAOS_ARTIFACTS=1` each scenario drops
//!   its journal and a JSON fault report under
//!   `target/chaos-artifacts/` for CI upload.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use synts::prelude::*;
use synts_serve::{
    Client, Journal, ReportOutcome, RetryPolicy, Server, ServerConfig, Service, ServiceConfig,
    Shutdown, SimExecutor,
};

/// A plan that exercises the cache and executor sites: half the cache
/// writes are dropped, a third of the reads torn, and every shard's
/// first attempt panics (`#a0` is in every first-attempt token).
fn chaos_plan(seed: u64) -> String {
    format!("seed={seed};cache.write=1/2;cache.read=1/3;exec.panic=~#a0")
}

fn quick_spec(name: &str) -> ScenarioSpec {
    ScenarioSpec::new(name, Benchmark::Radix, StageKind::Decode)
        .schemes(["synts_poly", "per_core_ts", "no_ts"])
        .thetas(ThetaSpec::LogAroundEqualWeight {
            points: 5,
            decades: 1.0,
        })
        .normalize_to("nominal")
        .verify_model(true)
        .workers(1)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synts-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// One full chaos scenario: journaled service + armed plan, submit,
/// wait, return (report bytes, fault ledger render, journal dir).
fn chaos_run(tag: &str, seed: u64, workers: usize) -> (String, String, PathBuf) {
    let plan = Arc::new(FaultPlan::parse(&chaos_plan(seed)).expect("plan parses"));
    let journal_dir = fresh_dir(&format!("{tag}-journal"));
    let service = Arc::new(Service::start(ServiceConfig {
        workers,
        max_shards: 3,
        max_attempts: 3,
        cache: CharCache::at_dir(fresh_dir(&format!("{tag}-cache"))),
        registry: SolverRegistry::with_defaults(),
        journal: Some(Journal::open(&journal_dir).expect("journal opens")),
        faults: Some(Arc::clone(&plan)),
        ..ServiceConfig::default()
    }));
    let id = service.submit(quick_spec("chaos")).expect("submits").id;
    let report = loop {
        match service.report(&id) {
            ReportOutcome::Ready(report) => break report.to_json_string(),
            ReportOutcome::Pending(_) => std::thread::sleep(Duration::from_millis(20)),
            other => panic!("chaos job must survive its faults: {other:?}"),
        }
    };
    service.shutdown(Shutdown::Now);
    (report, plan.report().render(), journal_dir)
}

/// Copies a finished scenario's journal and fault report into
/// `target/chaos-artifacts/<tag>/` when the CI chaos job asks for it.
fn save_artifacts(tag: &str, journal_dir: &std::path::Path, fault_report: &str) {
    if std::env::var("SYNTS_CHAOS_ARTIFACTS").is_err() {
        return;
    }
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/chaos-artifacts")
        .join(tag);
    let _ = std::fs::remove_dir_all(&out);
    std::fs::create_dir_all(out.join("journal")).expect("artifact dir");
    std::fs::write(out.join("fault-report.json"), fault_report).expect("fault report");
    for sub in ["records", "payloads"] {
        let dst = out.join("journal").join(sub);
        std::fs::create_dir_all(&dst).expect("artifact subdir");
        if let Ok(dir) = std::fs::read_dir(journal_dir.join(sub)) {
            for entry in dir.flatten() {
                let _ = std::fs::copy(entry.path(), dst.join(entry.file_name()));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The chaos invariant: seeded fault plans are deterministic — two
    /// independent runs (fresh service, cache, journal and plan
    /// instance) fire the same faults and converge to the same bytes,
    /// and those bytes are the monolithic engine's, at every worker
    /// count.
    #[test]
    fn seeded_chaos_is_deterministic_and_faults_never_corrupt(seed in 0u64..1000) {
        let monolithic = Experiment::new(quick_spec("chaos"))
            .run()
            .expect("monolithic run")
            .to_json_string();
        for workers in [1usize, 2, 4] {
            let tag_a = format!("det-{seed}-{workers}-a");
            let tag_b = format!("det-{seed}-{workers}-b");
            let (report_a, fired_a, journal_a) = chaos_run(&tag_a, seed, workers);
            let (report_b, fired_b, _) = chaos_run(&tag_b, seed, workers);
            prop_assert_eq!(&report_a, &report_b, "report bytes drifted across identical runs");
            prop_assert_eq!(&fired_a, &fired_b, "fault ledger drifted across identical runs");
            prop_assert_eq!(&report_a, &monolithic, "faults corrupted the report");
            save_artifacts(&tag_a, &journal_a, &fired_a);
        }
    }
}

/// The CI chaos job's fixed-seed entry point: `SYNTS_CHAOS_SEED` (a
/// plain integer, default 7) pins one scenario per matrix leg; the two
/// independent runs must agree byte-for-byte, and the first run's
/// journal + fired-fault report land in `target/chaos-artifacts/` when
/// `SYNTS_CHAOS_ARTIFACTS` is set.
#[test]
fn fixed_seed_matrix_is_deterministic() {
    let seed: u64 = std::env::var("SYNTS_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let tag = format!("matrix-{seed}");
    let (report_a, fired_a, journal_a) = chaos_run(&format!("{tag}-a"), seed, 2);
    let (report_b, fired_b, _) = chaos_run(&format!("{tag}-b"), seed, 2);
    assert_eq!(report_a, report_b, "seed {seed}: report bytes drifted");
    assert_eq!(fired_a, fired_b, "seed {seed}: fault ledger drifted");
    save_artifacts(&tag, &journal_a, &fired_a);
}

/// A fleet-mode chaos scenario for the matrix: every shard goes to sim
/// executors, the plan kills `node1` on its first dispatched shard AND
/// drops a quarter of all dispatches (`fleet.dispatch` — the attempt is
/// charged and the shard requeued). Returns (report, ledger, journal).
fn chaos_fleet_run(tag: &str, seed: u64) -> (String, String, PathBuf) {
    let plan = Arc::new(
        FaultPlan::parse(&format!("seed={seed};fleet.dispatch=1/4;exec.kill=~@node1"))
            .expect("plan parses"),
    );
    let journal_dir = fresh_dir(&format!("{tag}-journal"));
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 1,
        max_shards: 3,
        max_attempts: 6,
        cache: CharCache::at_dir(fresh_dir(&format!("{tag}-cache"))),
        registry: SolverRegistry::with_defaults(),
        journal: Some(Journal::open(&journal_dir).expect("journal opens")),
        faults: Some(Arc::clone(&plan)),
        local_shards: false,
        lease_ticks: 3,
    }));
    let shared_cache = CharCache::at_dir(fresh_dir(&format!("{tag}-sim-cache")));
    let mut sims: Vec<SimExecutor> = (1..=2)
        .map(|n| {
            SimExecutor::register(
                &service,
                &format!("node{n}"),
                shared_cache.clone(),
                Some(Arc::clone(&plan)),
            )
        })
        .collect();
    let id = service
        .submit(quick_spec("chaos-fleet"))
        .expect("submits")
        .id;
    // Step only the victim until it claims (and dies on) its first
    // shard: the node→shard assignment is then a pure function of the
    // seed, so the fired-fault ledger can't drift between runs.
    {
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while !sims[0].is_dead() {
            let _ = sims[0].step();
            assert!(
                std::time::Instant::now() < deadline,
                "the victim never saw work"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let report = loop {
        for sim in sims.iter_mut() {
            let _ = sim.step();
        }
        let _ = service.fleet_tick();
        match service.report(&id) {
            ReportOutcome::Ready(report) => break report.to_json_string(),
            ReportOutcome::Pending(_) => {}
            other => panic!("fleet chaos job must survive its faults: {other:?}"),
        }
    };
    assert!(
        sims[0].is_dead(),
        "seed {seed}: node1 must have been killed"
    );
    service.shutdown(Shutdown::Now);
    (report, plan.report().render(), journal_dir)
}

/// The fleet leg of the CI chaos matrix: the same `SYNTS_CHAOS_SEED`
/// also drives the fleet sites (`fleet.dispatch` drops + an `exec.kill`
/// on one executor). Two independent runs must agree byte-for-byte with
/// each other AND with the monolithic engine, with identical ledgers.
#[test]
fn fixed_seed_fleet_matrix_is_deterministic() {
    let seed: u64 = std::env::var("SYNTS_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let monolithic = Experiment::new(quick_spec("chaos-fleet"))
        .run()
        .expect("monolithic run")
        .to_json_string();
    let tag = format!("fleet-matrix-{seed}");
    let (report_a, fired_a, journal_a) = chaos_fleet_run(&format!("{tag}-a"), seed);
    let (report_b, fired_b, _) = chaos_fleet_run(&format!("{tag}-b"), seed);
    assert_eq!(
        report_a, report_b,
        "seed {seed}: fleet report bytes drifted"
    );
    assert_eq!(fired_a, fired_b, "seed {seed}: fleet fault ledger drifted");
    assert_eq!(
        report_a, monolithic,
        "seed {seed}: fleet faults corrupted the report"
    );
    save_artifacts(&tag, &journal_a, &fired_a);
}

/// A server that tears half its replies: the client's retry loop (with
/// deterministic backoff) still lands every idempotent request, while a
/// no-retry client sees the torn replies fail.
#[test]
fn client_retries_through_torn_server_replies() {
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 1,
        cache: CharCache::at_dir(fresh_dir("torn-cache")),
        ..ServiceConfig::default()
    }));
    let server_plan = Arc::new(FaultPlan::parse("seed=11;net.torn=1/2").expect("plan parses"));
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            read_deadline: Duration::from_secs(10),
            faults: Some(server_plan),
        },
    )
    .expect("binds");

    let patient = Client::new(server.addr().to_string()).with_policy(RetryPolicy {
        attempts: 8,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        request_timeout: Duration::from_secs(10),
    });
    for _ in 0..6 {
        assert!(patient.healthy(), "retries must ride out torn replies");
    }
    let impatient = Client::new(server.addr().to_string()).with_policy(RetryPolicy::none());
    let failures = (0..6)
        .filter(|_| impatient.request("GET", "/v1/healthz", None).is_err())
        .count();
    assert!(
        failures > 0,
        "with net.torn=1/2 a no-retry client must see failures"
    );
}

/// Mid-body disconnects (`net.disconnect`): the server sends the full
/// head plus half the body, then drops the socket. The FIN ends the
/// client's read *cleanly*, so only the Content-Length check stands
/// between a torn report and a silently truncated 200 — a no-retry
/// client must surface it as a transport error, and the retry loop
/// must ride through to the complete report bytes.
#[test]
fn truncated_reply_bodies_are_transport_errors_not_short_200s() {
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 2,
        cache: CharCache::at_dir(fresh_dir("disconnect-cache")),
        ..ServiceConfig::default()
    }));
    let id = service
        .submit(quick_spec("disconnect"))
        .expect("submits")
        .id;
    let expected = loop {
        match service.report(&id) {
            ReportOutcome::Ready(report) => break report.to_json_string(),
            ReportOutcome::Pending(_) => std::thread::sleep(Duration::from_millis(20)),
            other => panic!("job must finish: {other:?}"),
        }
    };

    let server_plan = Arc::new(FaultPlan::parse("seed=3;net.disconnect=1/2").expect("plan parses"));
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            read_deadline: Duration::from_secs(10),
            faults: Some(Arc::clone(&server_plan)),
        },
    )
    .expect("binds");

    // Single-shot fetches: every reply is either the complete report or
    // a truncated-body transport error — never a short 200.
    let impatient = Client::new(server.addr().to_string()).with_policy(RetryPolicy::none());
    let mut truncated = 0;
    for _ in 0..8 {
        match impatient.fetch_report(&id, false) {
            Ok(reply) => {
                assert_eq!(reply.status, 200);
                assert_eq!(
                    reply.body, expected,
                    "a 200 must never carry a truncated body"
                );
            }
            Err(e) => {
                assert!(e.to_string().contains("truncated"), "{e}");
                truncated += 1;
            }
        }
    }
    assert!(
        truncated > 0,
        "with net.disconnect=1/2 a no-retry client must see truncated bodies"
    );
    assert!(
        server_plan
            .fired_counts()
            .get("net.disconnect")
            .copied()
            .unwrap_or(0)
            >= 1,
        "the disconnect site must have fired"
    );

    // The retrying path lands the complete bytes despite the faults.
    let patient = Client::new(server.addr().to_string()).with_policy(RetryPolicy {
        attempts: 8,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        request_timeout: Duration::from_secs(10),
    });
    let body = patient
        .wait_report(&id, false, Duration::from_secs(30))
        .expect("retries must ride out mid-body disconnects");
    assert_eq!(body, expected, "the fetched report must be complete");
}

/// Client-side refused connections: `net.refuse=~#a0` rejects every
/// first attempt before a byte is sent; the retrying path succeeds on
/// attempt 1 and the single-shot path fails outright.
#[test]
fn client_refusal_faults_are_absorbed_by_retries() {
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 1,
        cache: CharCache::at_dir(fresh_dir("refuse-cache")),
        ..ServiceConfig::default()
    }));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let plan = Arc::new(FaultPlan::parse("seed=5;net.refuse=~#a0").expect("plan parses"));
    let client = Client::new(server.addr().to_string())
        .with_policy(RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(10),
            request_timeout: Duration::from_secs(10),
        })
        .with_faults(Some(Arc::clone(&plan)));

    assert!(client.healthy(), "attempt 1 must get through");
    let err = client
        .request("GET", "/v1/stats", None)
        .expect_err("single-shot request hits the refused first attempt");
    assert!(
        err.to_string().contains("injected connection refusal"),
        "{err}"
    );
    let counts = plan.fired_counts();
    assert!(
        counts.get("net.refuse").copied().unwrap_or(0) >= 2,
        "both paths must have consulted the plan: {counts:?}"
    );
}

/// Keyed resubmission over HTTP: the retried POST with the same `?key=`
/// returns the same job, so a client that lost a 202 can safely resend.
#[test]
fn keyed_resubmission_over_http_never_double_enqueues() {
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 2,
        cache: CharCache::at_dir(fresh_dir("keyed-cache")),
        ..ServiceConfig::default()
    }));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let client = Client::new(server.addr().to_string());

    let spec = quick_spec("keyed").to_json_string();
    let first = client
        .submit_idempotent(&spec, "retry-key-1")
        .expect("first submit");
    let second = client
        .submit_idempotent(&spec, "retry-key-1")
        .expect("replayed submit");
    assert_eq!(first, second, "same key must return the same job");
    let other = client
        .submit_idempotent(&spec, "retry-key-2")
        .expect("different key");
    assert_ne!(first, other, "a new key is a new job");

    let stats = client.stats().expect("stats");
    let submitted = stats
        .get("jobs")
        .and_then(|j| j.get("submitted"))
        .and_then(Json::as_f64);
    assert_eq!(submitted, Some(2.0), "the replay must not enqueue");

    let err = client
        .submit_idempotent(&spec, "bad key!")
        .expect_err("keys are plain tokens");
    assert!(err.to_string().contains("idempotency key"), "{err}");
}

/// The client's backoff schedule is a pure function of the policy — the
/// retry cadence chaos tests rely on never drifts.
#[test]
fn backoff_schedule_is_deterministic_and_capped() {
    let policy = RetryPolicy {
        attempts: 6,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_secs(2),
        request_timeout: Duration::from_secs(30),
    };
    let schedule: Vec<Duration> = (0..6).map(|a| policy.backoff(a)).collect();
    assert_eq!(
        schedule,
        [50, 100, 200, 400, 800, 1600]
            .into_iter()
            .map(Duration::from_millis)
            .collect::<Vec<_>>()
    );
    assert_eq!(policy.backoff(30), Duration::from_secs(2), "capped");
    assert_eq!(RetryPolicy::default().attempts, 4);
}
