//! Integration tests for the declarative scenario layer: spec JSON
//! round-trips, committed spec files, runner correctness against the
//! direct solver API, worker-count determinism, and a golden canonical
//! JSON report fixture.
//!
//! To regenerate the fixture after an intentional change:
//! `SYNTS_REGEN_FIXTURES=1 cargo test --test scenario`

use std::fs;
use std::path::PathBuf;

use synts::prelude::*;
use synts_bench::figures;

fn quick_data(bench: Benchmark, stage: StageKind) -> BenchmarkData {
    characterize(bench, stage, &HarnessConfig::quick()).expect("characterizes")
}

#[test]
fn committed_spec_files_parse_and_name_their_figure() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("crates/bench/specs");
    let mut seen = 0;
    for entry in fs::read_dir(&dir).expect("specs dir exists") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("readable");
        let spec = ScenarioSpec::from_json_str(&src)
            .unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
        let stem = path.file_stem().and_then(|s| s.to_str()).expect("stem");
        assert_eq!(spec.name, stem, "{}: name matches the file", path.display());
        assert!(!spec.schemes.is_empty());
        seen += 1;
    }
    assert!(
        seen >= 7,
        "expected the committed paper specs, found {seen}"
    );
    // The Pareto figures resolve through the same committed sources.
    for (id, _) in figures::PARETO_SPECS {
        let spec = figures::pareto_spec(id).expect("parses");
        assert_eq!(spec.name, *id);
        assert_eq!(spec.quality, Quality::Paper);
        assert_eq!(spec.normalize_to.as_deref(), Some("nominal"));
    }
}

#[test]
fn unknown_scheme_fails_fast_and_lists_registered_keys() {
    let data = quick_data(Benchmark::Radix, StageKind::SimpleAlu);
    let spec = ScenarioSpec::new("bad", Benchmark::Radix, StageKind::SimpleAlu)
        .schemes(["synts_poly", "simulated_annealing"]);
    let err = Experiment::new(spec)
        .run_on(&data)
        .expect_err("unknown scheme");
    let msg = err.to_string();
    assert!(msg.contains("simulated_annealing"), "{msg}");
    for known in ["synts_poly", "nominal", "per_core_ts", "thrifty"] {
        assert!(msg.contains(known), "{msg} should list '{known}'");
    }
}

#[test]
fn mismatched_data_is_rejected() {
    let data = quick_data(Benchmark::Radix, StageKind::SimpleAlu);
    let spec = ScenarioSpec::new("mismatch", Benchmark::Fmm, StageKind::SimpleAlu);
    assert!(Experiment::new(spec).run_on(&data).is_err());
    let spec = ScenarioSpec::new("oob", Benchmark::Radix, StageKind::SimpleAlu)
        .intervals(IntervalSelection::Index(99));
    assert!(Experiment::new(spec).run_on(&data).is_err());
}

#[test]
fn equal_weight_record_matches_the_direct_solver_api() {
    let data = quick_data(Benchmark::Cholesky, StageKind::SimpleAlu);
    let cfg = data.system_config();
    let iv = 1usize;
    let profiles = data.intervals[iv].profiles();
    let theta = theta_equal_weight(&cfg, &profiles).expect("theta");

    let spec = ScenarioSpec::new("direct", Benchmark::Cholesky, StageKind::SimpleAlu)
        .intervals(IntervalSelection::Index(iv))
        .record_assignments(true);
    let report = Experiment::new(spec).run_on(&data).expect("runs");
    assert_eq!(report.theta_center, theta, "same equal-weight θ");

    let solver: std::sync::Arc<dyn Solver<ErrorCurve>> = SolverRegistry::with_defaults()
        .get("synts_poly")
        .expect("registered");
    let (assignment, ed) = solver.solve_evaluated(&cfg, &profiles, theta).expect("ok");
    let record = &report.datasets[0].records[0];
    assert_eq!(record.ed.energy.to_bits(), ed.energy.to_bits());
    assert_eq!(record.ed.time.to_bits(), ed.time.to_bits());
    assert_eq!(
        record.assignments.as_ref().expect("recorded")[0],
        assignment,
        "report assignment equals the direct solve"
    );
}

#[test]
fn grid_records_match_a_pareto_sweep() {
    let data = quick_data(Benchmark::Fmm, StageKind::SimpleAlu);
    let cfg = data.system_config();
    let profiles = data.intervals[0].profiles();
    let thetas = [0.01, 0.1, 1.0, 10.0];

    let spec = ScenarioSpec::new("grid", Benchmark::Fmm, StageKind::SimpleAlu)
        .thetas(ThetaSpec::Grid(thetas.to_vec()))
        .intervals(IntervalSelection::Index(0));
    let report = Experiment::new(spec).run_on(&data).expect("runs");
    assert_eq!(report.theta_grid, thetas);

    let solver: std::sync::Arc<dyn Solver<ErrorCurve>> = SolverRegistry::with_defaults()
        .get("synts_poly")
        .expect("registered");
    let swept = pareto_sweep(&*solver, &cfg, &profiles, &thetas).expect("sweeps");
    for (record, point) in report.datasets[0].records.iter().zip(&swept) {
        assert_eq!(record.ed.energy.to_bits(), point.ed.energy.to_bits());
        assert_eq!(record.ed.time.to_bits(), point.ed.time.to_bits());
    }
}

/// The worker count must not change a single byte of the report: the
/// CI matrix re-runs this whole file at `SYNTS_THREADS=1` and `8`
/// against the same golden fixture, and this test additionally pins
/// explicit 1-vs-8 worker specs against each other in-process.
#[test]
fn reports_are_identical_at_any_worker_count() {
    let data = quick_data(Benchmark::Radix, StageKind::Decode);
    let run_with = |workers: usize| {
        let spec = ScenarioSpec::new("det", Benchmark::Radix, StageKind::Decode)
            .schemes(["synts_poly", "per_core_ts", "no_ts"])
            .thetas(ThetaSpec::LogAroundEqualWeight {
                points: 7,
                decades: 2.0,
            })
            .normalize_to("nominal")
            .record_assignments(true)
            .workers(workers);
        Experiment::new(spec).run_on(&data).expect("runs")
    };
    let sequential = run_with(1);
    for workers in [2, 8] {
        let parallel = run_with(workers);
        assert_eq!(
            sequential.datasets, parallel.datasets,
            "datasets drift at {workers} workers"
        );
        assert_eq!(sequential.checks, parallel.checks);
        assert_eq!(sequential.theta_grid, parallel.theta_grid);
        assert_eq!(sequential.baseline, parallel.baseline);
    }
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.report.golden.json"))
}

/// Pins the canonical JSON report of a quick scenario — structure and
/// numbers, not prose. Byte-stable across the CI thread matrix.
#[test]
fn report_json_matches_golden_fixture() {
    let spec = ScenarioSpec::new("scenario-quick", Benchmark::Cholesky, StageKind::SimpleAlu)
        .schemes(["synts_poly", "per_core_ts", "no_ts"])
        .thetas(ThetaSpec::LogAroundEqualWeight {
            points: 5,
            decades: 1.0,
        })
        .normalize_to("nominal")
        .record_assignments(true)
        .verify_model(true);
    let report = Experiment::new(spec).run().expect("runs");
    assert!(report.all_checks_pass(), "{:?}", report.checks);

    let rendered = report.to_json_string();
    let path = fixture_path(&report.spec.name);
    if std::env::var("SYNTS_REGEN_FIXTURES").is_ok() {
        fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir");
        fs::write(&path, &rendered).expect("write fixture");
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             SYNTS_REGEN_FIXTURES=1 cargo test --test scenario",
            path.display()
        )
    });
    assert_eq!(
        golden, rendered,
        "canonical report JSON drifted; if intentional, regenerate with \
         SYNTS_REGEN_FIXTURES=1"
    );
}

/// The report JSON is valid JSON that round-trips through the vendored
/// parser, and the embedded spec parses back to the original.
#[test]
fn report_json_embeds_a_recoverable_spec() {
    let data = quick_data(Benchmark::Ocean, StageKind::Decode);
    let spec = ScenarioSpec::new("embed", Benchmark::Ocean, StageKind::Decode)
        .schemes(["nominal", "synts_poly"])
        .intervals(IntervalSelection::MostHeterogeneous);
    let report = Experiment::new(spec.clone()).run_on(&data).expect("runs");
    let json = Json::parse(&report.to_json_string()).expect("valid JSON");
    let spec_back = ScenarioSpec::from_json(json.get("spec").expect("spec field")).expect("parses");
    assert_eq!(spec_back, spec);
    assert_eq!(
        report.intervals_used,
        vec![data.most_heterogeneous_interval()]
    );
    // CSV sink: one row per (scheme, record), header first.
    let (header, rows) = report.to_csv();
    assert_eq!(rows.len(), 2, "two schemes x one θ");
    assert_eq!(header[0], "scheme");
    assert!(rows.iter().all(|r| r.len() == header.len()));
}
