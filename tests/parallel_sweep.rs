//! Determinism and Pareto-front invariants of the parallel θ-sweep
//! engine: for every registered solver, a pooled sweep is bit-identical
//! at 1, 2, 4 and 8 workers; sweep points come back in θ-grid order; the
//! Pareto front of any sweep is mutually non-dominated; and the batched
//! online path equals the sequential per-interval loop.

mod common;

use common::instance_strategy;
use proptest::prelude::*;
use synts::prelude::*;
use synts::timing::pareto_front;

const WORKER_GRID: [usize; 4] = [1, 2, 4, 8];

/// `a` weakly dominates `b` on both axes.
fn dominates(a: EnergyDelay, b: EnergyDelay) -> bool {
    a.energy <= b.energy && a.time <= b.time && (a.energy < b.energy || a.time < b.time)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline determinism guarantee: for every registered solver
    /// the sweep output — θ order, assignments, energy/time points, and
    /// therefore the Pareto front — is bit-identical at any worker count.
    #[test]
    fn sweep_is_bit_identical_at_every_worker_count(inst in instance_strategy()) {
        let registry = SolverRegistry::with_defaults();
        let thetas = default_theta_sweep(&inst.cfg, &inst.profiles, 9, 2.0).expect("grid");
        for name in registry.names() {
            let solver = registry.get(name).expect("registered");
            let reference = pareto_sweep_pooled(
                &*solver, &inst.cfg, &inst.profiles, &thetas, ThreadPool::new(1),
            )
            .unwrap_or_else(|e| panic!("{name} failed sequentially: {e}"));
            for workers in WORKER_GRID {
                let pooled = pareto_sweep_pooled(
                    &*solver, &inst.cfg, &inst.profiles, &thetas, ThreadPool::new(workers),
                )
                .unwrap_or_else(|e| panic!("{name} failed at {workers} workers: {e}"));
                prop_assert_eq!(
                    &reference, &pooled,
                    "{} diverges at {} workers", name, workers
                );
            }
        }
    }

    /// Sweep points come back in θ-grid order regardless of pool width.
    #[test]
    fn sweep_points_are_sorted_by_theta(inst in instance_strategy()) {
        let thetas = default_theta_sweep(&inst.cfg, &inst.profiles, 11, 2.0).expect("grid");
        prop_assert!(
            thetas.windows(2).all(|w| w[0] < w[1]),
            "the default grid is strictly ascending"
        );
        let registry = SolverRegistry::with_defaults();
        let solver = registry.get("synts_poly").expect("registered");
        for workers in WORKER_GRID {
            let pts = pareto_sweep_pooled(
                &*solver, &inst.cfg, &inst.profiles, &thetas, ThreadPool::new(workers),
            )
            .expect("sweeps");
            let got: Vec<f64> = pts.iter().map(|p| p.theta).collect();
            prop_assert_eq!(&got, &thetas, "θ order at {} workers", workers);
        }
    }

    /// The Pareto front extracted from any sweep is mutually
    /// non-dominated — no front member weakly dominates another.
    #[test]
    fn sweep_front_is_mutually_non_dominated(inst in instance_strategy()) {
        let registry = SolverRegistry::with_defaults();
        let thetas = default_theta_sweep(&inst.cfg, &inst.profiles, 9, 2.0).expect("grid");
        for name in registry.names() {
            let solver = registry.get(name).expect("registered");
            let pts = pareto_sweep_pooled(
                &*solver, &inst.cfg, &inst.profiles, &thetas, ThreadPool::new(4),
            )
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            let eds: Vec<EnergyDelay> = pts.iter().map(|p| p.ed).collect();
            let front = pareto_front(&eds);
            prop_assert!(!front.is_empty(), "{}: a non-empty sweep has a front", name);
            for (i, &a) in front.iter().enumerate() {
                for &b in &front[i + 1..] {
                    prop_assert!(
                        !dominates(eds[a], eds[b]) && !dominates(eds[b], eds[a]),
                        "{}: front members {:?} and {:?} dominate each other",
                        name, eds[a], eds[b]
                    );
                }
            }
        }
    }

    /// `run_intervals_batched` equals the sequential per-interval loop at
    /// every worker count, interval by interval.
    #[test]
    fn batched_online_intervals_match_sequential_loop(
        seeds in prop::collection::vec(1u64..1_000_000, 2..5),
    ) {
        let cfg = SystemConfig::paper_default(10.0);
        let intervals: Vec<Vec<ThreadTrace>> = seeds
            .iter()
            .map(|&seed| {
                (0..3u64)
                    .map(|t| {
                        let mut state = seed.wrapping_add(t * 77);
                        let delays: Vec<f64> = (0..2_000)
                            .map(|_| {
                                state = state
                                    .wrapping_mul(6364136223846793005)
                                    .wrapping_add(1);
                                0.3 + 0.7 * ((state >> 33) as f64 / (1u64 << 31) as f64)
                            })
                            .collect();
                        ThreadTrace::new(delays, 1.0 + 0.1 * t as f64)
                    })
                    .collect()
            })
            .collect();
        let plan = SamplingPlan::paper_default(2_000, cfg.s());
        let registry = SolverRegistry::<SampledCurve>::with_defaults();
        let solver = registry.get("synts_poly").expect("registered");
        let sequential: Vec<IntervalOutcome> = intervals
            .iter()
            .map(|traces| run_interval_with(&cfg, traces, 1.0, plan, &*solver).expect("runs"))
            .collect();
        for workers in WORKER_GRID {
            let batched = run_intervals_batched(
                &cfg, &intervals, 1.0, plan, &*solver, ThreadPool::new(workers),
            )
            .expect("runs");
            prop_assert_eq!(batched.len(), sequential.len());
            for (b, s) in batched.iter().zip(&sequential) {
                prop_assert_eq!(&b.assignment, &s.assignment, "{} workers", workers);
                prop_assert_eq!(b.total, s.total, "{} workers", workers);
                prop_assert_eq!(b.sampling, s.sampling, "{} workers", workers);
            }
        }
    }
}

/// The builder's `workers` knob reaches the sweep pool — and an explicit
/// zero fails as loudly as `SYNTS_THREADS=0` would, instead of silently
/// clamping to a sequential run.
#[test]
fn builder_workers_knob_configures_the_pool() {
    let synts: Synts = Synts::builder().workers(3).build().expect("builds");
    assert_eq!(synts.pool().workers(), 3);
    let panic = std::panic::catch_unwind(|| Synts::builder().workers(0).build())
        .expect_err("workers(0) must be rejected loudly");
    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("expected an integer >= 1"),
        "same message shape as the SYNTS_THREADS rejection: {msg}"
    );
}

/// `Synts::sweep` goes through the pooled engine and stays deterministic.
#[test]
fn synts_sweep_matches_direct_pooled_sweep() {
    let cfg = SystemConfig::paper_default(10.0);
    let curve = |lo: f64, hi: f64| {
        ErrorCurve::from_normalized_delays(
            (0..128)
                .map(|i| lo + (hi - lo) * i as f64 / 128.0)
                .collect(),
        )
        .expect("non-empty")
    };
    let profiles = vec![
        ThreadProfile::new(10_000.0, 1.2, curve(0.70, 1.00)),
        ThreadProfile::new(9_000.0, 1.1, curve(0.50, 0.85)),
        ThreadProfile::new(11_000.0, 1.0, curve(0.30, 0.65)),
    ];
    let thetas = default_theta_sweep(&cfg, &profiles, 7, 2.0).expect("grid");
    let synts: Synts = Synts::builder().workers(4).build().expect("builds");
    let via_synts = synts.sweep(&cfg, &profiles, &thetas).expect("sweeps");
    let registry = SolverRegistry::with_defaults();
    let solver = registry.get("synts_poly").expect("registered");
    let direct = pareto_sweep_pooled(&*solver, &cfg, &profiles, &thetas, ThreadPool::new(4))
        .expect("sweeps");
    assert_eq!(via_synts, direct);
}

/// A failing θ surfaces the same error the sequential loop would report:
/// the lowest-index failure, independent of worker count.
#[test]
fn sweep_error_reporting_is_order_deterministic() {
    let mut cfg = SystemConfig::paper_default(10.0);
    // Blow past EXHAUSTIVE_LIMIT so every θ fails with the same error.
    cfg.tsr_levels = (0..6).map(|k| 0.6 + 0.4 * k as f64 / 5.0).collect();
    let curve =
        ErrorCurve::from_normalized_delays((0..32).map(|i| 0.5 + 0.01 * i as f64).collect())
            .expect("non-empty");
    let profiles: Vec<ThreadProfile<ErrorCurve>> = (0..12)
        .map(|_| ThreadProfile::new(1_000.0, 1.0, curve.clone()))
        .collect();
    let registry = SolverRegistry::with_defaults();
    let solver = registry.get("synts_exhaustive").expect("registered");
    let thetas: Vec<f64> = (0..8).map(|i| 0.5 + i as f64).collect();
    let seq_err = pareto_sweep_pooled(&*solver, &cfg, &profiles, &thetas, ThreadPool::new(1))
        .expect_err("oversized instance");
    for workers in WORKER_GRID {
        let err = pareto_sweep_pooled(&*solver, &cfg, &profiles, &thetas, ThreadPool::new(workers))
            .expect_err("oversized instance");
        assert_eq!(
            err.to_string(),
            seq_err.to_string(),
            "error at {workers} workers"
        );
    }
}
