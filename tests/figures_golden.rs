//! Golden snapshot tests for the bench figure generators.
//!
//! Each covered figure is rendered (title, data table, CSV payload, shape
//! checks) and diffed against a committed fixture under
//! `tests/fixtures/`, so a rewrite of the sweep/solve plumbing — like the
//! parallel θ-sweep engine — cannot silently perturb the numbers. The
//! corpus-backed snapshot doubles as a cross-`SYNTS_THREADS` determinism
//! check: the CI matrix runs these tests at 1 and 8 workers against the
//! same fixtures.
//!
//! To regenerate after an intentional change:
//! `SYNTS_REGEN_FIXTURES=1 cargo test --test figures_golden`

use std::fs;
use std::path::PathBuf;

use synts::prelude::*;
use synts_bench::corpus::{Corpus, Effort};
use synts_bench::figures::{self, Figure};

fn fixture_path(id: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{id}.golden.txt"))
}

/// Serializes everything observable about a figure: title, rendered
/// table, CSV payload, and the shape-check claims with their outcomes.
fn render(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n\n", fig.title));
    out.push_str(&fig.text);
    if let Some((header, rows)) = &fig.csv {
        out.push_str("\n[csv]\n");
        out.push_str(&header.join(","));
        out.push('\n');
        for row in rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
    }
    out.push_str("\n[checks]\n");
    for check in &fig.checks {
        out.push_str(&format!(
            "[{}] {}\n",
            if check.pass { "PASS" } else { "FAIL" },
            check.claim
        ));
    }
    out
}

fn assert_matches_golden(fig: &Figure) {
    let path = fixture_path(fig.id);
    let rendered = render(fig);
    if std::env::var("SYNTS_REGEN_FIXTURES").is_ok() {
        fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir");
        fs::write(&path, &rendered).expect("write fixture");
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             SYNTS_REGEN_FIXTURES=1 cargo test --test figures_golden",
            path.display()
        )
    });
    assert_eq!(
        golden, rendered,
        "figure `{}` drifted from its golden fixture; if the change is \
         intentional, regenerate with SYNTS_REGEN_FIXTURES=1",
        fig.id
    );
}

#[test]
fn table_5_1_matches_golden() {
    assert_matches_golden(&figures::table_5_1().expect("generates"));
}

#[test]
fn sec_6_3_matches_golden() {
    assert_matches_golden(&figures::sec_6_3().expect("generates"));
}

#[test]
fn fig_5_10_matches_golden() {
    assert_matches_golden(&figures::fig_5_10().expect("generates"));
}

/// The corpus-backed Pareto figure runs the full parallel sweep path
/// (θ batches fanned across the pool), so this snapshot is the one that
/// pins the parallel rewrite to the sequential numbers.
#[test]
fn fig_pareto_quick_matches_golden() {
    let corpus = Corpus::build_subset(
        Effort::Quick,
        &[Benchmark::Cholesky],
        &[StageKind::SimpleAlu],
    )
    .expect("corpus");
    let fig = figures::fig_pareto(
        &corpus,
        "fig-6-12",
        "6.12",
        Benchmark::Cholesky,
        StageKind::SimpleAlu,
    )
    .expect("generates");
    assert_matches_golden(&fig);
}
