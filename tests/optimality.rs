//! Property-based certification of Lemma 4.2.1: on random instances,
//! SynTS-Poly, SynTS-MILP and exhaustive search agree on the optimum of
//! Eq 4.4, and the optimizer invariants hold.

use proptest::prelude::*;
use synts::prelude::*;
use synts::timing::VoltageTable;

#[derive(Debug, Clone)]
struct Instance {
    cfg: SystemConfig,
    profiles: Vec<ThreadProfile<ErrorCurve>>,
    theta: f64,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    let thread = (
        0.2f64..0.8,          // delay band low
        0.05f64..0.3,         // band width
        1_000.0f64..50_000.0, // N
        1.0f64..2.5,          // CPI
    );
    (
        prop::collection::vec(thread, 2..4),
        2usize..4,     // voltage levels
        2usize..4,     // TSR levels
        0.0f64..100.0, // theta scale
    )
        .prop_map(|(threads, q, s, theta_raw)| {
            let volts: Vec<f64> = (0..q).map(|j| 1.0 - 0.08 * j as f64).collect();
            let mut cfg = SystemConfig::paper_default(25.0);
            cfg.voltages = VoltageTable::from_volts(volts).expect("in range");
            cfg.tsr_levels = (0..s)
                .map(|k| 0.6 + 0.4 * k as f64 / (s - 1) as f64)
                .collect();
            let profiles = threads
                .into_iter()
                .map(|(lo, w, n, cpi)| {
                    let delays: Vec<f64> = (0..64)
                        .map(|i| (lo + w * i as f64 / 64.0).min(1.0))
                        .collect();
                    ThreadProfile::new(
                        n,
                        cpi,
                        ErrorCurve::from_normalized_delays(delays).expect("non-empty"),
                    )
                })
                .collect();
            Instance {
                cfg,
                profiles,
                theta: theta_raw,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn poly_matches_exhaustive(inst in instance_strategy()) {
        let poly = synts_poly(&inst.cfg, &inst.profiles, inst.theta).expect("poly");
        let ex = synts_exhaustive(&inst.cfg, &inst.profiles, inst.theta).expect("exhaustive");
        let cp = weighted_cost(&inst.cfg, &inst.profiles, &poly, inst.theta);
        let ce = weighted_cost(&inst.cfg, &inst.profiles, &ex, inst.theta);
        prop_assert!((cp - ce).abs() <= 1e-9 * ce.abs().max(1.0), "poly {cp} vs exhaustive {ce}");
    }

    #[test]
    fn milp_matches_poly(inst in instance_strategy()) {
        let poly = synts_poly(&inst.cfg, &inst.profiles, inst.theta).expect("poly");
        let milp = synts_milp(&inst.cfg, &inst.profiles, inst.theta).expect("milp");
        let cp = weighted_cost(&inst.cfg, &inst.profiles, &poly, inst.theta);
        let cm = weighted_cost(&inst.cfg, &inst.profiles, &milp, inst.theta);
        prop_assert!((cp - cm).abs() <= 1e-6 * cp.abs().max(1.0), "poly {cp} vs milp {cm}");
    }

    #[test]
    fn optimum_is_never_beaten_by_random_assignments(inst in instance_strategy(), seed in any::<u64>()) {
        let poly = synts_poly(&inst.cfg, &inst.profiles, inst.theta).expect("poly");
        let c_opt = weighted_cost(&inst.cfg, &inst.profiles, &poly, inst.theta);
        // A handful of random assignments must not improve on the optimum.
        let mut state = seed | 1;
        for _ in 0..20 {
            let points = (0..inst.profiles.len())
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    OperatingPoint {
                        voltage_idx: (state >> 33) as usize % inst.cfg.q(),
                        tsr_idx: (state >> 49) as usize % inst.cfg.s(),
                    }
                })
                .collect();
            let a = Assignment { points };
            let c = weighted_cost(&inst.cfg, &inst.profiles, &a, inst.theta);
            prop_assert!(c >= c_opt - 1e-9 * c_opt.abs().max(1.0));
        }
    }

    #[test]
    fn evaluation_invariants(inst in instance_strategy()) {
        let a = synts_poly(&inst.cfg, &inst.profiles, inst.theta).expect("poly");
        let ed = evaluate(&inst.cfg, &inst.profiles, &a);
        prop_assert!(ed.energy > 0.0);
        prop_assert!(ed.time > 0.0);
        // texec is the max thread time (Eq 4.2).
        for (p, pt) in inst.profiles.iter().zip(&a.points) {
            let t = thread_time(&inst.cfg, p, *pt);
            prop_assert!(t <= ed.time * (1.0 + 1e-12));
        }
    }

    #[test]
    fn theta_monotonicity(inst in instance_strategy()) {
        // Raising theta never slows the optimum down.
        let slow = synts_poly(&inst.cfg, &inst.profiles, inst.theta).expect("poly");
        let fast = synts_poly(&inst.cfg, &inst.profiles, inst.theta * 100.0 + 1.0).expect("poly");
        let ed_slow = evaluate(&inst.cfg, &inst.profiles, &slow);
        let ed_fast = evaluate(&inst.cfg, &inst.profiles, &fast);
        prop_assert!(ed_fast.time <= ed_slow.time * (1.0 + 1e-9));
    }
}
