//! Certification of the PR 5 sweep-scale solver engine against the naive
//! reference paths (`synts::reference`): sorted-tables poly,
//! dominance-pruned exhaustive search and warm-started MILP must be
//! assignment-cost-identical to the pre-engine implementations across
//! random instances × θ grids, θ-dedup in `solve_batch` must be
//! invisible, and degenerate (pruned-to-one-point) instances must still
//! solve.

mod common;

use common::instance_strategy;
use proptest::prelude::*;
use synts::prelude::*;
use synts::reference;
use synts::timing::VoltageTable;

/// A θ grid exercising the extremes and the instance's own scale.
fn theta_grid(theta: f64) -> [f64; 5] {
    [0.0, 0.1 * theta, theta, 10.0 * theta + 1.0, 1e6]
}

/// The grid for MILP comparisons stays inside the simplex's numerical
/// envelope (huge θ makes the scaled objective coefficient `θ·t/e`
/// explode and can exhaust pivot iterations — on the warm and cold path
/// alike, since they solve the same LP subproblems).
fn milp_theta_grid(theta: f64) -> [f64; 4] {
    [0.0, 0.1 * theta, theta, 10.0 * theta + 1.0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sorted tables + dominance-pruned critical candidates reach exactly
    /// the cost of the paper-literal `O(M²Q²S²)` scan at every θ.
    #[test]
    fn engine_poly_cost_matches_naive(inst in instance_strategy()) {
        for theta in theta_grid(inst.theta) {
            let fast = synts_poly(&inst.cfg, &inst.profiles, theta).expect("engine poly");
            let naive = reference::synts_poly_naive(&inst.cfg, &inst.profiles, theta)
                .expect("naive poly");
            let cf = weighted_cost(&inst.cfg, &inst.profiles, &fast, theta);
            let cn = weighted_cost(&inst.cfg, &inst.profiles, &naive, theta);
            prop_assert!(
                (cf - cn).abs() <= 1e-9 * cn.abs().max(1.0),
                "theta {}: engine {} vs naive {}", theta, cf, cn
            );
        }
    }

    /// The warm-started, best-first MILP reaches exactly the cost of the
    /// cold depth-first branch-and-bound at every θ.
    #[test]
    fn warm_milp_cost_matches_cold(inst in instance_strategy()) {
        for theta in milp_theta_grid(inst.theta) {
            let warm = synts_milp(&inst.cfg, &inst.profiles, theta).expect("warm milp");
            let cold = reference::synts_milp_naive(&inst.cfg, &inst.profiles, theta)
                .expect("cold milp");
            let cw = weighted_cost(&inst.cfg, &inst.profiles, &warm, theta);
            let cc = weighted_cost(&inst.cfg, &inst.profiles, &cold, theta);
            prop_assert!(
                (cw - cc).abs() <= 1e-6 * cc.abs().max(1.0),
                "theta {}: warm {} vs cold {}", theta, cw, cc
            );
        }
    }

    /// Dominance pruning cannot change the exhaustive optimum: the pruned
    /// odometer reaches exactly the unpruned cost.
    #[test]
    fn pruned_exhaustive_cost_matches_naive(inst in instance_strategy()) {
        for theta in theta_grid(inst.theta) {
            let pruned = synts_exhaustive(&inst.cfg, &inst.profiles, theta).expect("pruned");
            let naive = reference::synts_exhaustive_naive(&inst.cfg, &inst.profiles, theta)
                .expect("naive");
            let cp = weighted_cost(&inst.cfg, &inst.profiles, &pruned, theta);
            let cn = weighted_cost(&inst.cfg, &inst.profiles, &naive, theta);
            prop_assert!(
                (cp - cn).abs() <= 1e-9 * cn.abs().max(1.0),
                "theta {}: pruned {} vs naive {}", theta, cp, cn
            );
            // Pruning never *grows* the search space.
            let stats = pruning_stats(&inst.cfg, &inst.profiles).expect("stats");
            prop_assert!(stats.pruned_points <= stats.total_points);
            prop_assert!(stats.pruned_combinations <= stats.raw_combinations);
        }
    }

    /// Batched sweeps through the engine match the naive per-θ sweep
    /// cost-for-cost (the batch path is what `pareto_sweep`, the online
    /// controller and the `Experiment` runner ride).
    #[test]
    fn engine_batch_sweep_matches_naive_sweep(inst in instance_strategy()) {
        let thetas: Vec<f64> = milp_theta_grid(inst.theta).to_vec();
        let requests: Vec<SolveRequest<'_, ErrorCurve>> = thetas
            .iter()
            .map(|&theta| SolveRequest::new(&inst.cfg, &inst.profiles, theta))
            .collect();
        let registry = SolverRegistry::with_defaults();
        for (name, naive) in [
            (
                "synts_poly",
                reference::poly_sweep_naive(&inst.cfg, &inst.profiles, &thetas).expect("poly"),
            ),
            (
                "synts_milp",
                reference::milp_sweep_naive(&inst.cfg, &inst.profiles, &thetas).expect("milp"),
            ),
        ] {
            let solver = registry.get(name).expect("registered");
            let batch = solver.solve_batch(&requests);
            for ((result, reference_a), &theta) in batch.iter().zip(&naive).zip(&thetas) {
                let a = result.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
                let ca = weighted_cost(&inst.cfg, &inst.profiles, a, theta);
                let cr = weighted_cost(&inst.cfg, &inst.profiles, reference_a, theta);
                prop_assert!(
                    (ca - cr).abs() <= 1e-6 * cr.abs().max(1.0),
                    "{} theta {}: engine {} vs naive {}", name, theta, ca, cr
                );
            }
        }
    }

    /// Duplicate θ values in a batch (log-spaced grids round-trip them)
    /// are deduped: every duplicate reuses the solved assignment, and the
    /// batch is indistinguishable from the same batch without duplicates.
    #[test]
    fn solve_batch_dedupes_repeated_thetas(inst in instance_strategy()) {
        let registry = SolverRegistry::with_defaults();
        let unique = [0.0, inst.theta, 3.0 * inst.theta + 0.5];
        // Interleave duplicates: [a, a, b, c, b, a].
        let dup = [unique[0], unique[0], unique[1], unique[2], unique[1], unique[0]];
        for name in ["synts_poly", "synts_milp", "synts_exhaustive"] {
            let solver = registry.get(name).expect("registered");
            let dup_requests: Vec<SolveRequest<'_, ErrorCurve>> = dup
                .iter()
                .map(|&theta| SolveRequest::new(&inst.cfg, &inst.profiles, theta))
                .collect();
            let batch = solver.solve_batch(&dup_requests);
            prop_assert_eq!(batch.len(), dup.len(), "{}", name);
            for (result, &theta) in batch.iter().zip(&dup) {
                let direct = solver
                    .solve(&inst.cfg, &inst.profiles, theta)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                let got = result.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
                prop_assert_eq!(got, &direct, "{} at theta {}", name, theta);
            }
            // Duplicates are bitwise-identical to their first occurrence.
            prop_assert_eq!(&batch[0], &batch[1], "{}", name);
            prop_assert_eq!(&batch[0], &batch[5], "{}", name);
            prop_assert_eq!(&batch[2], &batch[4], "{}", name);
        }
    }
}

/// A thread whose candidate set prunes to a single point (one voltage
/// level, an error-free workload: the lowest-TSR point dominates every
/// other) must still solve under all three engine solvers — and they must
/// pick that point.
#[test]
fn pruned_to_one_point_thread_still_solves() {
    let mut cfg = SystemConfig::paper_default(10.0);
    cfg.voltages = VoltageTable::from_volts([1.0]).expect("single level");
    cfg.tsr_levels = vec![0.7, 0.85, 1.0];
    // Error-free at every TSR level: delays far below the lowest ratio.
    let flat = ErrorCurve::from_normalized_delays(vec![0.1; 16]).expect("non-empty");
    let profiles = vec![
        ThreadProfile::new(5_000.0, 1.0, flat.clone()),
        ThreadProfile::new(7_000.0, 1.2, flat),
    ];
    let stats = pruning_stats(&cfg, &profiles).expect("stats");
    assert_eq!(
        stats.pruned_points, 2,
        "one surviving point per thread: {stats:?}"
    );
    let registry = SolverRegistry::with_defaults();
    for name in ["synts_poly", "synts_milp", "synts_exhaustive"] {
        let solver = registry.get(name).expect("registered");
        for theta in [0.0, 1.0, 1e9] {
            let a = solver
                .solve(&cfg, &profiles, theta)
                .unwrap_or_else(|e| panic!("{name} at {theta}: {e}"));
            for p in &a.points {
                assert_eq!((p.voltage_idx, p.tsr_idx), (0, 0), "{name} at {theta}");
            }
        }
    }
}

/// θ < 0 rewards a *larger* barrier time, where dominance pruning no
/// longer preserves the optimum — the engine solvers refuse loudly
/// (solve and batch alike) instead of silently answering wrong, while
/// the naive references keep the old exact-at-any-θ behavior.
#[test]
fn negative_theta_is_rejected_not_silently_suboptimal() {
    let mut cfg = SystemConfig::paper_default(10.0);
    cfg.voltages = VoltageTable::from_volts([1.0, 0.86]).expect("ok");
    cfg.tsr_levels = vec![0.7, 1.0];
    let curve =
        ErrorCurve::from_normalized_delays((0..32).map(|i| 0.4 + 0.015 * i as f64).collect())
            .expect("non-empty");
    let profiles = vec![
        ThreadProfile::new(5_000.0, 1.0, curve.clone()),
        ThreadProfile::new(6_000.0, 1.2, curve),
    ];
    let registry = SolverRegistry::with_defaults();
    for theta in [-5.0, -1e-9, f64::NAN] {
        for name in ["synts_poly", "synts_milp", "synts_exhaustive"] {
            let solver = registry.get(name).expect("registered");
            let err = solver
                .solve(&cfg, &profiles, theta)
                .expect_err("out-of-domain weight");
            assert!(matches!(err, OptError::BadConfig(_)), "{name}: {err}");
            let batch = solver.solve_batch(&[SolveRequest::new(&cfg, &profiles, theta)]);
            assert_eq!(
                batch[0].as_ref().expect_err("batch too").to_string(),
                err.to_string()
            );
        }
    }
    // The references still solve (and agree with each other) at θ < 0.
    let naive_poly = reference::synts_poly_naive(&cfg, &profiles, -5.0).expect("naive exact");
    let naive_ex = reference::synts_exhaustive_naive(&cfg, &profiles, -5.0).expect("naive exact");
    let (cp, ce) = (
        weighted_cost(&cfg, &profiles, &naive_poly, -5.0),
        weighted_cost(&cfg, &profiles, &naive_ex, -5.0),
    );
    assert!((cp - ce).abs() <= 1e-9 * ce.abs().max(1.0), "{cp} vs {ce}");
}

/// The MILP node budget is honored end-to-end and the error reports how
/// many nodes were explored before the budget ran out.
#[test]
fn milp_node_limit_reports_nodes() {
    use synts::core_api::solver::Milp;

    let mut cfg = SystemConfig::paper_default(10.0);
    cfg.voltages = VoltageTable::from_volts([1.0, 0.86, 0.72]).expect("ok");
    cfg.tsr_levels = vec![0.64, 0.82, 1.0];
    let curve = |lo: f64, hi: f64| {
        ErrorCurve::from_normalized_delays(
            (0..96).map(|i| lo + (hi - lo) * i as f64 / 96.0).collect(),
        )
        .expect("non-empty")
    };
    let profiles = vec![
        ThreadProfile::new(10_000.0, 1.2, curve(0.70, 1.00)),
        ThreadProfile::new(9_000.0, 1.1, curve(0.50, 0.85)),
        ThreadProfile::new(11_000.0, 1.0, curve(0.30, 0.65)),
    ];
    let strict: &dyn Solver<ErrorCurve> = &Milp::with_node_limit(0);
    let err = strict
        .solve(&cfg, &profiles, 1.0)
        .expect_err("zero node budget cannot finish");
    let msg = err.to_string();
    assert!(
        msg.contains("nodes"),
        "IterationLimit must report explored nodes: {msg}"
    );
    // A sane budget solves, and matches the unlimited configuration.
    let roomy: &dyn Solver<ErrorCurve> = &Milp::default();
    let a = roomy.solve(&cfg, &profiles, 1.0).expect("solves");
    let b = Milp::with_node_limit(100_000);
    let b: &dyn Solver<ErrorCurve> = &b;
    assert_eq!(a, b.solve(&cfg, &profiles, 1.0).expect("solves"));
}
