//! The characterization fast path, held to its determinism contract:
//!
//! * a [`BenchmarkData`] served from the on-disk cache is **bit-identical**
//!   to a freshly simulated one (delays, curves, CPI, instruction counts);
//! * a parallel corpus build at 1/2/8 workers equals the sequential one;
//! * corrupted, truncated or garbage cache entries silently recompute;
//! * the zero-alloc batched `delay_trace_into` entry point reproduces
//!   `delay_trace_sampled` exactly, including across buffer reuse;
//! * `guard_band` is worker-count-invariant.

use std::path::PathBuf;

use proptest::prelude::*;
use synts::prelude::*;
use synts_bench::corpus::{Corpus, Effort};

const BENCHES: [Benchmark; 3] = [Benchmark::Radix, Benchmark::Cholesky, Benchmark::Fmm];

fn tmp_cache(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("synts-cache-proptest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bitwise equality of two characterizations — stricter than `==` on
/// floats (NaN-proof, and distinguishes -0.0).
fn assert_bit_identical(a: &BenchmarkData, b: &BenchmarkData) {
    assert_eq!(a.benchmark, b.benchmark);
    assert_eq!(a.stage, b.stage);
    assert_eq!(a.tnom_v1.to_bits(), b.tnom_v1.to_bits(), "tnom drifted");
    assert_eq!(a.intervals.len(), b.intervals.len());
    for (ia, ib) in a.intervals.iter().zip(&b.intervals) {
        assert_eq!(ia.threads.len(), ib.threads.len());
        for (ta, tb) in ia.threads.iter().zip(&ib.threads) {
            assert_eq!(ta.curve, tb.curve, "error curve drifted");
            let da: Vec<u64> = ta.normalized_delays.iter().map(|d| d.to_bits()).collect();
            let db: Vec<u64> = tb.normalized_delays.iter().map(|d| d.to_bits()).collect();
            assert_eq!(da, db, "delay trace drifted");
            assert_eq!(ta.instructions.to_bits(), tb.instructions.to_bits());
            assert_eq!(ta.cpi_base.to_bits(), tb.cpi_base.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Cache round-trip: fresh characterization, cold (store) pass and
    /// warm (load) pass are all bit-identical, for every stage.
    #[test]
    fn cached_equals_fresh_bit_for_bit(bench_idx in 0..BENCHES.len()) {
        let bench = BENCHES[bench_idx];
        let cfg = HarnessConfig::quick();
        let dir = tmp_cache(&format!("roundtrip-{bench}"));
        let cache = CharCache::at_dir(&dir);
        for stage in StageKind::ALL {
            let fresh = characterize(bench, stage, &cfg).expect("fresh");
            let cold = characterize_cached(bench, stage, &cfg, &cache, ThreadPool::new(2))
                .expect("cold");
            let warm = characterize_cached(bench, stage, &cfg, &cache, ThreadPool::new(2))
                .expect("warm");
            assert_bit_identical(&fresh, &cold);
            assert_bit_identical(&fresh, &warm);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The parallel corpus build is bit-identical to the sequential one
    /// at any worker count, cache off (pure fan-out determinism).
    #[test]
    fn parallel_corpus_equals_sequential(bench_idx in 0..BENCHES.len()) {
        let bench = BENCHES[bench_idx];
        let benchmarks = [bench];
        let cache = CharCache::disabled();
        let reference = Corpus::build_subset_with(
            Effort::Quick, &benchmarks, &StageKind::ALL, &cache, ThreadPool::sequential(),
        )
        .expect("sequential corpus");
        for workers in [2usize, 8] {
            let pooled = Corpus::build_subset_with(
                Effort::Quick, &benchmarks, &StageKind::ALL, &cache, ThreadPool::new(workers),
            )
            .expect("pooled corpus");
            prop_assert_eq!(pooled.iter().count(), reference.iter().count());
            for ((ka, da), (kb, db)) in reference.iter().zip(pooled.iter()) {
                prop_assert_eq!(ka, kb, "corpus key order drifted at {} workers", workers);
                assert_bit_identical(da, db);
            }
        }
    }

    /// Any byte-level damage to a cache entry reads as a miss: the
    /// characterization recomputes bit-identically instead of erroring.
    #[test]
    fn damaged_cache_entries_recompute(cut in 1..64usize) {
        let cfg = HarnessConfig::quick();
        let dir = tmp_cache(&format!("damage-{cut}"));
        let cache = CharCache::at_dir(&dir);
        let pool = ThreadPool::sequential();
        let cold = characterize_cached(Benchmark::Radix, StageKind::Decode, &cfg, &cache, pool)
            .expect("cold");
        let entry = std::fs::read_dir(&dir)
            .expect("cache dir")
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "json"))
            .expect("one entry");
        let full = std::fs::read(&entry).expect("entry bytes");
        // Truncate at a generated fraction of the file.
        let keep = full.len() * cut / 64;
        std::fs::write(&entry, &full[..keep]).expect("truncate");
        let truncated =
            characterize_cached(Benchmark::Radix, StageKind::Decode, &cfg, &cache, pool)
                .expect("truncated entry must recompute");
        assert_bit_identical(&cold, &truncated);
        // Flip a byte in the middle of the (rewritten) entry.
        let mut bytes = std::fs::read(&entry).expect("entry bytes");
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1 + (cut as u8 % 7));
        std::fs::write(&entry, &bytes).expect("corrupt");
        let corrupted =
            characterize_cached(Benchmark::Radix, StageKind::Decode, &cfg, &cache, pool)
                .expect("corrupted entry must recompute");
        assert_bit_identical(&cold, &corrupted);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The streaming batch entry point reproduces `delay_trace_sampled`
/// exactly — including when one output buffer is recycled across stages
/// and sample caps.
#[test]
fn delay_trace_into_matches_sampled_with_reused_buffer() {
    use synts::timing::StageCharacterizer;
    let cfg = HarnessConfig::quick();
    let trace = Benchmark::Radix.run(&cfg.workload);
    let mut buf = Vec::new();
    for stage in [StageKind::Decode, StageKind::SimpleAlu] {
        let charac = StageCharacterizer::new(stage, cfg.workload.width).expect("builds");
        for max_samples in [7usize, 50, 400, usize::MAX] {
            for work in trace.intervals[0].iter() {
                let reference = charac
                    .delay_trace_sampled(&work.events, max_samples)
                    .expect("trace");
                charac
                    .delay_trace_into(&work.events, max_samples, &mut buf)
                    .expect("batched");
                let a: Vec<u64> = reference.delays().iter().map(|d| d.to_bits()).collect();
                let b: Vec<u64> = buf.iter().map(|d| d.to_bits()).collect();
                assert_eq!(a, b, "{stage:?} max_samples={max_samples}");
            }
        }
    }
}

/// The Monte Carlo guard-band fan-out is a max-reduction: bit-identical
/// at any worker count.
#[test]
fn guard_band_is_worker_count_invariant() {
    use synts::gatelib::variation::{guard_band_with_workers, VariationModel};
    use synts::gatelib::Voltage;
    let stage = synts::circuits::build_stage(StageKind::SimpleAlu, 8).expect("stage");
    let netlist = stage.netlist();
    let model = VariationModel::ptm22_typical();
    let reference =
        guard_band_with_workers(netlist, Voltage::NOMINAL, &model, 24, 7, 1).expect("sequential");
    for workers in [2usize, 3, 8, 64] {
        let pooled = guard_band_with_workers(netlist, Voltage::NOMINAL, &model, 24, 7, workers)
            .expect("pooled");
        assert_eq!(
            reference.to_bits(),
            pooled.to_bits(),
            "guard band drifted at {workers} workers"
        );
    }
}
