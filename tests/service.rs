//! Integration tests for the scenario service: the shard planner /
//! report merger (property-tested against the monolithic engine), the
//! in-process HTTP round trip, malformed-request survival, and graceful
//! drain on shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use synts::prelude::*;
use synts_serve::{Client, Server, ServerConfig, Service, ServiceConfig, Shutdown};

fn radix_decode_quick() -> &'static BenchmarkData {
    static DATA: OnceLock<BenchmarkData> = OnceLock::new();
    DATA.get_or_init(|| {
        characterize(Benchmark::Radix, StageKind::Decode, &HarnessConfig::quick())
            .expect("characterizes")
    })
}

/// Runs `spec` through plan → shard-by-shard execution → merge, on
/// shared characterization data, and returns the merged report.
fn sharded_run(spec: &ScenarioSpec, max_shards: usize) -> Report {
    let data = radix_decode_quick();
    let registry = SolverRegistry::with_defaults();
    let plan = ShardPlan::plan(spec, data, max_shards).expect("plans");
    let parts: Vec<Report> = plan
        .shards()
        .iter()
        .map(|shard| {
            Experiment::new(shard.spec.clone())
                .run_on(data)
                .expect("shard runs")
        })
        .collect();
    plan.merge(&parts, &registry).expect("merges")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole invariant: for any random spec and any shard
    /// partition (`max_shards` sweeps the chunking), the merged report
    /// renders byte-identical canonical JSON to the monolithic run — at
    /// 1, 2 and 4 workers.
    #[test]
    fn merged_reports_are_byte_identical_to_monolithic(
        grid in prop::collection::vec(0.001f64..10.0, 2..7),
        max_shards in 1usize..6,
        normalize in any::<bool>(),
        verify in any::<bool>(),
    ) {
        let data = radix_decode_quick();
        for workers in [1usize, 2, 4] {
            let mut spec = ScenarioSpec::new("prop-shard", Benchmark::Radix, StageKind::Decode)
                .schemes(["synts_poly", "per_core_ts", "no_ts"])
                .thetas(ThetaSpec::Grid(grid.clone()))
                .verify_model(verify)
                .workers(workers);
            if normalize {
                spec = spec.normalize_to("nominal");
            }
            let monolithic = Experiment::new(spec.clone())
                .run_on(data)
                .expect("monolithic runs");
            let merged = sharded_run(&spec, max_shards);
            prop_assert_eq!(
                merged.to_json_string(),
                monolithic.to_json_string(),
                "merge drifted at {} workers, {} max shards",
                workers,
                max_shards
            );
        }
    }
}

fn test_service(name: &str, workers: usize) -> Arc<Service> {
    let cache_dir =
        std::env::temp_dir().join(format!("synts-serve-it-{name}-{}", std::process::id()));
    Arc::new(Service::start(ServiceConfig {
        workers,
        max_shards: 3,
        max_attempts: 2,
        cache: CharCache::at_dir(cache_dir),
        registry: SolverRegistry::with_defaults(),
        journal: None,
        faults: None,
        ..ServiceConfig::default()
    }))
}

fn quick_spec(name: &str) -> ScenarioSpec {
    ScenarioSpec::new(name, Benchmark::Radix, StageKind::Decode)
        .schemes(["synts_poly", "per_core_ts", "no_ts"])
        .thetas(ThetaSpec::LogAroundEqualWeight {
            points: 5,
            decades: 1.0,
        })
        .normalize_to("nominal")
        .verify_model(true)
        .workers(1)
}

/// Submit over HTTP, poll to completion, fetch — and the body is
/// byte-identical to the engine's canonical JSON for the same spec.
#[test]
fn http_round_trip_matches_in_process_run() {
    let service = test_service("roundtrip", 2);
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let client = Client::new(server.addr().to_string());
    assert!(client.healthy(), "healthz answers");

    let spec = quick_spec("http-e2e");
    let id = client.submit(&spec.to_json_string()).expect("submits");
    let body = client
        .wait_report(&id, false, Duration::from_secs(600))
        .expect("job completes");
    let monolithic = Experiment::new(spec).run().expect("monolithic runs");
    assert_eq!(body, monolithic.to_json_string(), "HTTP report drifted");

    // The CSV rendering serves the same records.
    let csv = client.fetch_report(&id, true).expect("csv fetch");
    assert_eq!(csv.status, 200);
    let (header, rows) = monolithic.to_csv();
    assert_eq!(
        csv.body.lines().count(),
        rows.len() + 1,
        "one CSV line per record plus the header"
    );
    assert_eq!(csv.body.lines().next(), Some(header.join(",").as_str()));

    // Status and stats reflect the finished job.
    let status = client.status(&id).expect("status");
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    let stats = client.stats().expect("stats");
    let jobs = stats.get("jobs").expect("jobs object");
    assert_eq!(jobs.get("done").and_then(Json::as_f64), Some(1.0));
}

fn raw_request(addr: std::net::SocketAddr, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout set");
    // The server may reply-and-close before the full payload lands
    // (oversized requests), so a broken pipe here is expected.
    let _ = stream.write_all(payload);
    let mut reply = String::new();
    let _ = stream.read_to_string(&mut reply);
    reply
}

/// Nothing a client sends may take the server down: garbage request
/// lines, non-JSON bodies, unknown routes, oversized payloads — each
/// gets a 4xx and the server keeps answering.
#[test]
fn malformed_requests_get_4xx_and_never_kill_the_server() {
    let service = test_service("malformed", 1);
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let addr = server.addr();

    let cases: &[(&[u8], &str)] = &[
        (b"GARBAGE\r\n\r\n", "400"),
        (b"GET /v1/healthz SMTP/1.0\r\n\r\n", "400"),
        (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!",
            "400",
        ),
        (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 14\r\n\r\n{\"name\": true}",
            "400",
        ),
        (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "400",
        ),
        (b"GET /wrong/place HTTP/1.1\r\n\r\n", "404"),
        (b"PATCH /v1/jobs/job-1 HTTP/1.1\r\n\r\n", "404"),
        (b"GET /v1/jobs/no-such-job/report HTTP/1.1\r\n\r\n", "404"),
        (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
            "413",
        ),
    ];
    for (payload, expected) in cases {
        let reply = raw_request(addr, payload);
        let status = reply.split_whitespace().nth(1).unwrap_or("<none>");
        assert_eq!(
            &status,
            expected,
            "for request {:?}",
            String::from_utf8_lossy(payload)
        );
    }
    // An oversized request head is cut off at the limit, too.
    let mut huge = b"GET /v1/healthz HTTP/1.1\r\n".to_vec();
    for i in 0..2000 {
        huge.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "y".repeat(64)).as_bytes());
    }
    huge.extend_from_slice(b"\r\n");
    let reply = raw_request(addr, &huge);
    assert_eq!(reply.split_whitespace().nth(1), Some("413"));

    // A single endless header line (no newline at all): the head bound
    // must fire mid-line, not per complete line, so a client streaming
    // one giant line can never grow server memory past the 16 KiB cap.
    let mut endless = b"GET /v1/healthz HTTP/1.1\r\nX-Endless: ".to_vec();
    endless.resize(endless.len() + 64 * 1024, b'y');
    let reply = raw_request(addr, &endless);
    assert_eq!(
        reply.split_whitespace().nth(1),
        Some("413"),
        "endless header line: {reply:?}"
    );

    // The server is still alive and serving.
    let client = Client::new(addr.to_string());
    assert!(client.healthy(), "server survived the abuse");
}

/// Pins the exact bytes the CI service smoke diffs against: the
/// committed `fig-6-12` spec at quick quality, submitted over HTTP and
/// fetched back. Regenerate after an intentional engine change with
/// `SYNTS_REGEN_FIXTURES=1 cargo test --test service`.
#[test]
fn service_report_matches_golden_fixture() {
    let spec_path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("crates/bench/specs/fig-6-12.json");
    let src = std::fs::read_to_string(spec_path).expect("committed spec");
    let mut spec = ScenarioSpec::from_json_str(&src).expect("parses");
    spec.quality = Quality::Quick;

    let service = test_service("golden", 2);
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let client = Client::new(server.addr().to_string());
    let id = client.submit(&spec.to_json_string()).expect("submits");
    let body = client
        .wait_report(&id, false, Duration::from_secs(600))
        .expect("job completes");

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/fig-6-12-quick.report.golden.json");
    if std::env::var("SYNTS_REGEN_FIXTURES").is_ok() {
        std::fs::write(&path, &body).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             SYNTS_REGEN_FIXTURES=1 cargo test --test service",
            path.display()
        )
    });
    assert_eq!(
        golden, body,
        "service report drifted from the golden fixture; if intentional, \
         regenerate with SYNTS_REGEN_FIXTURES=1"
    );
}

/// Drain shutdown finishes every queued job before the workers join;
/// submitting afterwards is refused.
#[test]
fn drain_shutdown_finishes_queued_jobs() {
    let service = test_service("drain", 2);
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let client = Client::new(server.addr().to_string());

    let first = client
        .submit(&quick_spec("drain-1").to_json_string())
        .expect("submits");
    let second = client
        .submit(&quick_spec("drain-2").to_json_string())
        .expect("submits");
    server.shutdown(Shutdown::Drain); // joins only after the queue is dry
    for id in [&first, &second] {
        let status = service.status(id).expect("job exists");
        assert_eq!(status.state, synts_serve::JobState::Done, "{status:?}");
        assert!(matches!(
            service.report(id),
            synts_serve::ReportOutcome::Ready(_)
        ));
    }
    let err = service
        .submit(quick_spec("late"))
        .expect_err("post-drain submit");
    assert!(err.to_string().contains("shutting down"), "{err}");
}

/// Mid-job hard shutdown: in-flight shards finish, the rest stay
/// queued, nothing panics, and the queue never runs work afterwards.
#[test]
fn immediate_shutdown_mid_job_leaves_consistent_state() {
    let service = test_service("now", 1);
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let client = Client::new(server.addr().to_string());
    let id = client
        .submit(&quick_spec("interrupted").to_json_string())
        .expect("submits");
    // Give the single worker a moment to pick the job up, then pull the
    // plug while shards are (most likely) still queued or running.
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown(Shutdown::Now);

    let status = service.status(&id).expect("job exists");
    let counted = status.shards.queued + status.shards.running + status.shards.done;
    assert_eq!(counted, status.shards.total, "no shard went missing");
    assert_eq!(status.shards.failed, 0, "shutdown must not fail shards");
    assert!(
        matches!(
            status.state,
            synts_serve::JobState::Queued
                | synts_serve::JobState::Planning
                | synts_serve::JobState::Running
                | synts_serve::JobState::Done
        ),
        "{status:?}"
    );
}

/// Torn requests: a half-written request line still gets its 400, a
/// body cut short of its Content-Length is dropped silently (no thread
/// pinned, no panic), and a connection that sends nothing hits the
/// read deadline with a 408. The server answers normally afterwards.
#[test]
fn torn_and_stalled_requests_never_pin_the_server() {
    let service = test_service("torn", 1);
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            read_deadline: Duration::from_millis(400),
            faults: None,
        },
    )
    .expect("binds");
    let addr = server.addr();

    // Torn header: the request line stops mid-path, then the write side
    // closes. The server sees a malformed request line -> 400.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.write_all(b"GET /v1/hea").expect("partial line");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut reply = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout set");
    let _ = stream.read_to_string(&mut reply);
    assert_eq!(
        reply.split_whitespace().nth(1),
        Some("400"),
        "torn header: {reply:?}"
    );

    // Torn body: Content-Length promises more than arrives. The read
    // fails inside the deadline -> transport error -> silent close.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"torn")
        .expect("torn body");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut reply = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout set");
    let _ = stream.read_to_string(&mut reply);
    assert!(reply.is_empty(), "torn body must close silently: {reply:?}");

    // Stalled connection: bytes never come. The read budget expires and
    // the server answers 408 rather than pinning the handler thread.
    let mut stream = TcpStream::connect(addr).expect("connects");
    let mut reply = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    let _ = stream.read_to_string(&mut reply);
    assert_eq!(
        reply.split_whitespace().nth(1),
        Some("408"),
        "stalled connection: {reply:?}"
    );

    // And the server still serves.
    let client = Client::new(addr.to_string());
    assert!(client.healthy(), "server survived torn/stalled clients");
}
