//! Shared randomized-instance generator for the root integration tests
//! (`solver_registry`, `parallel_sweep`): one definition of the solver
//! input space, so both suites exercise the same instances.

use proptest::prelude::*;
use synts::prelude::*;
use synts::timing::VoltageTable;

/// One randomized SynTS-OPT instance.
#[derive(Debug, Clone)]
pub struct Instance {
    pub cfg: SystemConfig,
    pub profiles: Vec<ThreadProfile<ErrorCurve>>,
    /// A sweep-scale weight; suites sweeping their own θ grid ignore it.
    #[allow(dead_code)]
    pub theta: f64,
}

/// Small heterogeneous instances every registered solver (including the
/// exhaustive oracle) can handle: 2–3 threads, 2–3 voltage/TSR levels.
pub fn instance_strategy() -> impl Strategy<Value = Instance> {
    let thread = (
        0.2f64..0.8,          // delay band low
        0.05f64..0.3,         // band width
        1_000.0f64..50_000.0, // N
        1.0f64..2.5,          // CPI
    );
    (
        prop::collection::vec(thread, 2..4),
        2usize..4,     // voltage levels
        2usize..4,     // TSR levels
        0.0f64..100.0, // theta scale
    )
        .prop_map(|(threads, q, s, theta_raw)| {
            let volts: Vec<f64> = (0..q).map(|j| 1.0 - 0.08 * j as f64).collect();
            let mut cfg = SystemConfig::paper_default(25.0);
            cfg.voltages = VoltageTable::from_volts(volts).expect("in range");
            cfg.tsr_levels = (0..s)
                .map(|k| 0.6 + 0.4 * k as f64 / (s - 1) as f64)
                .collect();
            let profiles = threads
                .into_iter()
                .map(|(lo, w, n, cpi)| {
                    let delays: Vec<f64> = (0..64)
                        .map(|i| (lo + w * i as f64 / 64.0).min(1.0))
                        .collect();
                    ThreadProfile::new(
                        n,
                        cpi,
                        ErrorCurve::from_normalized_delays(delays).expect("non-empty"),
                    )
                })
                .collect();
            Instance {
                cfg,
                profiles,
                theta: theta_raw,
            }
        })
}
