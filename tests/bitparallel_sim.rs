//! Bit-identity of the 64-lane bit-parallel gate sim against the scalar
//! simulator — the contract that lets the characterization pipeline run
//! 64 trace vectors per machine word without perturbing a single golden
//! fixture.
//!
//! Two layers are pinned:
//!
//! * [`gatelib::WideTimingSim`] lane-for-lane against 64 independent
//!   [`gatelib::TimingSim`] runs — delays, toggle counts, outputs and
//!   cumulative energy, including *ragged* batches that drive fewer than
//!   64 lanes and leave the rest idle;
//! * [`timing::StageCharacterizer::delay_trace_into`] (the lane-batched
//!   entry point) against `delay_trace_into_scalar` (the sequential
//!   reference) across random event streams, stage kinds and sampling
//!   caps — covering both the chained stride-1 walk and the strided
//!   seeded-pair regime.

use proptest::prelude::*;
use synts::circuits::{build_stage, AluEvent, AluOp, StageKind};
use synts::gatelib::{TimingSim, Voltage, WideTimingSim, LANES};
use synts::timing::StageCharacterizer;

/// Deterministic pseudo-random bit stream (the tests' only entropy
/// source beyond the proptest case seed).
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn next_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }
}

fn stage_for(choice: usize) -> StageKind {
    [
        StageKind::SimpleAlu,
        StageKind::Decode,
        StageKind::ComplexAlu,
    ][choice % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every active lane of one wide sim equals its own scalar sim,
    /// transition for transition; idle lanes (ragged batches < 64) toggle
    /// nothing and cost nothing.
    #[test]
    fn wide_sim_matches_independent_scalar_sims(
        stage_choice in 0usize..3,
        width_choice in 0usize..2,
        active in 1usize..65,
        steps in 2usize..30,
        seed in any::<u64>(),
    ) {
        let width = [4, 8][width_choice];
        let stage = build_stage(stage_for(stage_choice), width).expect("stage");
        let netlist = stage.netlist();
        let n_pi = netlist.primary_inputs().len();
        let mut wide = WideTimingSim::new(netlist, Voltage::NOMINAL).expect("wide");
        let mut scalars: Vec<TimingSim> = (0..active)
            .map(|_| TimingSim::new(netlist, Voltage::NOMINAL).expect("scalar"))
            .collect();
        let mut rngs: Vec<Lcg> = (0..active)
            .map(|lane| Lcg(seed ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        let mut words = vec![0u64; n_pi];
        let mut vector = vec![false; n_pi];
        for t in 0..steps {
            // Idle lanes (active..64) keep their initial all-zero vector:
            // never toggled, never counted.
            let mut expected = Vec::with_capacity(active);
            for lane in 0..active {
                for (i, slot) in vector.iter_mut().enumerate() {
                    *slot = rngs[lane].next_bool();
                    let mask = !(1u64 << lane);
                    words[i] = (words[i] & mask) | (u64::from(*slot) << lane);
                }
                expected.push(scalars[lane].step(&vector).expect("scalar"));
            }
            // One wide step advances all lanes at once.
            let ws = wide.step(&words).expect("wide");
            for (lane, exp) in expected.iter().enumerate() {
                prop_assert_eq!(
                    ws.delays[lane].to_bits(),
                    exp.delay.to_bits(),
                    "delay diverges: lane {} step {}", lane, t
                );
                prop_assert_eq!(
                    ws.toggles[lane],
                    exp.toggles,
                    "toggles diverge: lane {} step {}", lane, t
                );
                prop_assert_eq!(
                    wide.output_word(lane),
                    scalars[lane].output_word(),
                    "outputs diverge: lane {} step {}", lane, t
                );
            }
            for lane in active..LANES {
                prop_assert_eq!(ws.toggles[lane], 0, "idle lane {} toggled", lane);
                prop_assert_eq!(ws.delays[lane].to_bits(), 0f64.to_bits());
            }
        }
        for (lane, scalar) in scalars.iter().enumerate() {
            prop_assert_eq!(
                wide.total_toggles(lane),
                scalar.total_toggles(),
                "toggle totals diverge: lane {}", lane
            );
            prop_assert_eq!(
                wide.total_switch_energy(lane).to_bits(),
                scalar.total_switch_energy().to_bits(),
                "energy totals diverge: lane {}", lane
            );
        }
        for lane in active..LANES {
            prop_assert_eq!(wide.total_toggles(lane), 0);
        }
    }

    /// Per-step delays and toggles, lane for lane: the wide step's result
    /// arrays equal the scalar step results exactly.
    #[test]
    fn wide_step_results_match_scalar_step_results(
        stage_choice in 0usize..2,
        active in 1usize..65,
        steps in 2usize..20,
        seed in any::<u64>(),
    ) {
        let stage = build_stage(stage_for(stage_choice), 8).expect("stage");
        let netlist = stage.netlist();
        let n_pi = netlist.primary_inputs().len();
        let mut wide = WideTimingSim::new(netlist, Voltage::NOMINAL).expect("wide");
        let mut scalars: Vec<TimingSim> = (0..active)
            .map(|_| TimingSim::new(netlist, Voltage::NOMINAL).expect("scalar"))
            .collect();
        let mut rngs: Vec<Lcg> = (0..active)
            .map(|lane| Lcg(seed.wrapping_add(lane as u64).wrapping_mul(0x2545F4914F6CDD1D)))
            .collect();
        let mut words = vec![0u64; n_pi];
        let mut lane_vectors: Vec<Vec<bool>> = vec![vec![false; n_pi]; active];
        for t in 0..steps {
            for (lane, vector) in lane_vectors.iter_mut().enumerate() {
                for (i, slot) in vector.iter_mut().enumerate() {
                    *slot = rngs[lane].next_bool();
                    let mask = !(1u64 << lane);
                    words[i] = (words[i] & mask) | (u64::from(*slot) << lane);
                }
            }
            let ws = wide.step(&words).expect("wide");
            for (lane, vector) in lane_vectors.iter().enumerate() {
                let ss = scalars[lane].step(vector).expect("scalar");
                prop_assert_eq!(
                    ws.delays[lane].to_bits(),
                    ss.delay.to_bits(),
                    "delay diverges: lane {} step {}", lane, t
                );
                prop_assert_eq!(
                    ws.toggles[lane],
                    ss.toggles,
                    "toggles diverge: lane {} step {}", lane, t
                );
            }
        }
    }

    /// The lane-batched characterization entry point is bit-identical to
    /// the sequential reference across random event streams and sampling
    /// caps — including caps that leave a final ragged batch of fewer
    /// than 64 records, and caps that force strided subsampling.
    #[test]
    fn lane_batched_delay_trace_matches_scalar_reference(
        stage_choice in 0usize..3,
        n_events in 10usize..600,
        max_samples in 1usize..700,
        seed in any::<u64>(),
    ) {
        let mut rng = Lcg(seed | 1);
        let events: Vec<AluEvent> = (0..n_events)
            .map(|_| {
                let r = rng.next_u64();
                AluEvent::new(
                    AluOp::ALL[(r >> 58) as usize % AluOp::ALL.len()],
                    r & 0xFF,
                    (r >> 13) & 0xFF,
                )
            })
            .collect();
        let charac = StageCharacterizer::new(stage_for(stage_choice), 8).expect("build");
        let mut wide = Vec::new();
        let mut scalar = Vec::new();
        let wide_result = charac.delay_trace_into(&events, max_samples, &mut wide);
        let scalar_result = charac.delay_trace_into_scalar(&events, max_samples, &mut scalar);
        match (wide_result, scalar_result) {
            (Ok(()), Ok(())) => {
                let wide_bits: Vec<u64> = wide.iter().map(|d| d.to_bits()).collect();
                let scalar_bits: Vec<u64> = scalar.iter().map(|d| d.to_bits()).collect();
                prop_assert_eq!(wide_bits, scalar_bits);
            }
            (Err(w), Err(s)) => prop_assert_eq!(w.to_string(), s.to_string()),
            (w, s) => prop_assert!(false, "paths disagree on success: {:?} vs {:?}", w, s),
        }
    }
}
