//! Certification of the unified `Solver` API: every solver in the default
//! registry round-trips (name → lookup → solve → feasible assignment),
//! exact Eq-4.4 solvers agree with `synts_exhaustive` on small instances,
//! and no solver ever beats the exhaustive optimum of its shared
//! objective.

mod common;

use common::instance_strategy;
use proptest::prelude::*;
use synts::prelude::*;
use synts::timing::VoltageTable;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The registry round-trip: every registered name resolves, solves,
    /// and returns one in-range operating point per thread.
    #[test]
    fn every_registered_solver_round_trips(inst in instance_strategy()) {
        let registry = SolverRegistry::with_defaults();
        prop_assert!(registry.len() >= 9, "default registry too small");
        for name in registry.names() {
            let solver = registry.get(name).expect("names() entries resolve");
            prop_assert_eq!(solver.name(), name, "registry key must be the solver's name");
            let a = solver
                .solve(&inst.cfg, &inst.profiles, inst.theta)
                .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            prop_assert_eq!(a.len(), inst.profiles.len(), "{}", name);
            for p in &a.points {
                prop_assert!(p.voltage_idx < inst.cfg.q(), "{}: voltage index", name);
                prop_assert!(p.tsr_idx < inst.cfg.s(), "{}: TSR index", name);
            }
        }
    }

    /// Exact solvers of the Eq 4.4 objective agree with exhaustive search;
    /// everything else is lower-bounded by it (the optimum is an optimum).
    #[test]
    fn registered_solvers_agree_with_exhaustive(inst in instance_strategy()) {
        let registry = SolverRegistry::with_defaults();
        let exhaustive = registry.get("synts_exhaustive").expect("registered");
        let optimum = {
            let a = exhaustive
                .solve(&inst.cfg, &inst.profiles, inst.theta)
                .expect("exhaustive");
            weighted_cost(&inst.cfg, &inst.profiles, &a, inst.theta)
        };
        for name in registry.names() {
            let solver = registry.get(name).expect("resolves");
            let a = solver
                .solve(&inst.cfg, &inst.profiles, inst.theta)
                .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            let cost = weighted_cost(&inst.cfg, &inst.profiles, &a, inst.theta);
            prop_assert!(
                cost >= optimum * (1.0 - 1e-9),
                "{} beat the exhaustive optimum: {} vs {}", name, cost, optimum
            );
            let caps = solver.capabilities();
            if caps.exact && caps.objective == Objective::WeightedEnergyTime {
                prop_assert!(
                    (cost - optimum).abs() <= 1e-6 * optimum.abs().max(1.0),
                    "{} is declared exact but missed the optimum: {} vs {}",
                    name, cost, optimum
                );
            }
        }
    }

    /// Batch-vs-loop equivalence: for every registered solver,
    /// `solve_batch` over a θ grid sharing one instance equals
    /// element-wise `solve` — result for result, error for error. This is
    /// the contract the table-hoisting overrides (Poly, Milp) must keep.
    #[test]
    fn solve_batch_matches_elementwise_solve(inst in instance_strategy()) {
        let registry = SolverRegistry::with_defaults();
        let thetas = [0.0, 0.3 * inst.theta, inst.theta, 10.0 * inst.theta + 1.0];
        for name in registry.names() {
            let solver = registry.get(name).expect("registered");
            let requests: Vec<SolveRequest<'_, ErrorCurve>> = thetas
                .iter()
                .map(|&theta| SolveRequest::new(&inst.cfg, &inst.profiles, theta))
                .collect();
            let batch = solver.solve_batch(&requests);
            prop_assert_eq!(batch.len(), requests.len(), "{}", name);
            for (result, &theta) in batch.iter().zip(&thetas) {
                let direct = solver.solve(&inst.cfg, &inst.profiles, theta);
                match (result, direct) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(a, &b, "{} at theta {}", name, theta),
                    (Err(ea), Err(eb)) => prop_assert_eq!(
                        ea.to_string(), eb.to_string(), "{} at theta {}", name, theta
                    ),
                    (a, b) => panic!("{name} at theta {theta}: batch {a:?} vs direct {b:?}"),
                }
            }
        }
    }

    /// Interleaving two instances in one batch exercises the overrides'
    /// table-cache invalidation: a stale cache would silently reuse the
    /// wrong instance's tables.
    #[test]
    fn solve_batch_handles_interleaved_instances(
        a in instance_strategy(),
        b in instance_strategy(),
    ) {
        let registry = SolverRegistry::with_defaults();
        for name in ["synts_poly", "synts_milp"] {
            let solver = registry.get(name).expect("registered");
            let requests = vec![
                SolveRequest::new(&a.cfg, &a.profiles, a.theta),
                SolveRequest::new(&a.cfg, &a.profiles, b.theta),
                SolveRequest::new(&b.cfg, &b.profiles, a.theta),
                SolveRequest::new(&a.cfg, &a.profiles, a.theta),
                SolveRequest::new(&b.cfg, &b.profiles, b.theta),
            ];
            let batch = solver.solve_batch(&requests);
            for (result, req) in batch.iter().zip(&requests) {
                let direct = solver
                    .solve(req.cfg, req.profiles, req.theta)
                    .unwrap_or_else(|e| panic!("{name} failed: {e}"));
                let got = result.as_ref().unwrap_or_else(|e| panic!("{name} failed: {e}"));
                prop_assert_eq!(got, &direct, "{} (interleaved)", name);
            }
        }
    }

    /// The builder resolves the same solvers the registry holds.
    #[test]
    fn builder_matches_registry_dispatch(inst in instance_strategy()) {
        let registry = SolverRegistry::with_defaults();
        for scheme in ["synts_poly", "per_core_ts", "no_ts", "nominal"] {
            let via_builder = Synts::builder()
                .scheme(scheme)
                .theta(inst.theta)
                .build()
                .expect("known scheme")
                .solve(&inst.cfg, &inst.profiles)
                .expect("solves");
            let via_registry = registry
                .get(scheme)
                .expect("registered")
                .solve(&inst.cfg, &inst.profiles, inst.theta)
                .expect("solves");
            prop_assert_eq!(via_builder, via_registry, "{}", scheme);
        }
    }
}

/// Deterministic spot check mirroring the paper's configuration: the three
/// exact solvers coincide on a paper-shaped (but exhaustively tractable)
/// instance, through the trait.
#[test]
fn exact_solvers_coincide_on_paper_shaped_instance() {
    let mut cfg = SystemConfig::paper_default(10.0);
    cfg.voltages = VoltageTable::from_volts([1.0, 0.86, 0.72]).expect("ok");
    cfg.tsr_levels = vec![0.64, 0.82, 1.0];
    let curve = |lo: f64, hi: f64| {
        ErrorCurve::from_normalized_delays(
            (0..200)
                .map(|i| lo + (hi - lo) * i as f64 / 200.0)
                .collect(),
        )
        .expect("non-empty")
    };
    let profiles = vec![
        ThreadProfile::new(10_000.0, 1.2, curve(0.70, 1.00)),
        ThreadProfile::new(9_000.0, 1.1, curve(0.50, 0.85)),
        ThreadProfile::new(11_000.0, 1.0, curve(0.30, 0.65)),
        ThreadProfile::new(8_000.0, 1.3, curve(0.45, 0.90)),
    ];
    let registry = SolverRegistry::with_defaults();
    for theta in [0.0, 0.05, 1.0, 50.0] {
        let costs: Vec<(&str, f64)> = ["synts_poly", "synts_milp", "synts_exhaustive"]
            .iter()
            .map(|&name| {
                let a = registry
                    .get(name)
                    .expect("registered")
                    .solve(&cfg, &profiles, theta)
                    .expect(name);
                (name, weighted_cost(&cfg, &profiles, &a, theta))
            })
            .collect();
        let reference = costs[2].1;
        for (name, cost) in costs {
            assert!(
                (cost - reference).abs() <= 1e-6 * reference.abs().max(1.0),
                "theta {theta}: {name} cost {cost} vs exhaustive {reference}"
            );
        }
    }
}
