//! Smoke tests for the reproduction harness: corpus-free figures pass all
//! their shape checks, and corpus-backed figures generate cleanly at quick
//! effort.

use synts::prelude::*;
use synts_bench::corpus::{Corpus, Effort};
use synts_bench::figures;

#[test]
fn table_5_1_reproduces_exactly() {
    let fig = figures::table_5_1().expect("generates");
    assert!(fig.checks.iter().all(|c| c.pass), "{:?}", fig.checks);
    assert!(fig.text.contains("2.63"), "lowest-voltage row present");
}

#[test]
fn sec_6_3_overheads_in_band() {
    let fig = figures::sec_6_3().expect("generates");
    assert!(fig.checks.iter().all(|c| c.pass), "{:?}", fig.checks);
}

#[test]
fn fig_5_10_lane_homogeneity() {
    let fig = figures::fig_5_10().expect("generates");
    assert!(fig.checks.iter().all(|c| c.pass), "{:?}", fig.checks);
}

#[test]
fn radix_figures_generate_with_passing_checks() {
    let corpus = Corpus::build_subset(Effort::Quick, &[Benchmark::Radix], &[StageKind::Decode])
        .expect("corpus");
    let fig = figures::fig_3_5(&corpus).expect("generates");
    assert!(
        fig.checks.iter().all(|c| c.pass),
        "fig 3.5 checks: {:?}",
        fig.checks
    );
    let fig = figures::fig_3_6(&corpus).expect("generates");
    assert!(
        fig.checks.iter().all(|c| c.pass),
        "fig 3.6 checks: {:?}",
        fig.checks
    );
}

#[test]
fn pareto_figure_generates_with_passing_checks() {
    let corpus = Corpus::build_subset(
        Effort::Quick,
        &[Benchmark::Cholesky],
        &[StageKind::SimpleAlu],
    )
    .expect("corpus");
    let fig = figures::fig_pareto(
        &corpus,
        "fig-6-12",
        "6.12",
        Benchmark::Cholesky,
        StageKind::SimpleAlu,
    )
    .expect("generates");
    assert!(fig.checks.iter().all(|c| c.pass), "{:?}", fig.checks);
    assert!(fig.csv.is_some());
}

#[test]
fn missing_corpus_entry_is_a_clean_error() {
    let corpus = Corpus::build_subset(Effort::Quick, &[], &[]).expect("empty corpus");
    let err = figures::fig_3_5(&corpus).expect_err("no data");
    assert!(err.to_string().contains("corpus"));
}
