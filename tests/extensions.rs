//! Property-based certification of the extension modules: the leakage
//! and power-cap generalizations keep their solvers exact, the thrifty
//! barrier and task-queue models obey their defining inequalities, and
//! the `N_i` predictors stay inside the envelope of their observations.

use proptest::prelude::*;
use synts::core_api::criticality::{NiPredictor, PredictorKind};
use synts::core_api::leakage::synts_exhaustive_leakage;
use synts::core_api::power_cap::synts_exhaustive_power_capped;
use synts::prelude::*;
use synts::timing::VoltageTable;

#[derive(Debug, Clone)]
struct Instance {
    cfg: SystemConfig,
    profiles: Vec<ThreadProfile<ErrorCurve>>,
    theta: f64,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    let thread = (
        0.2f64..0.8,          // delay band low
        0.05f64..0.3,         // band width
        1_000.0f64..50_000.0, // N
        1.0f64..2.5,          // CPI
    );
    (
        prop::collection::vec(thread, 2..4),
        2usize..4,     // voltage levels
        2usize..4,     // TSR levels
        0.0f64..100.0, // theta scale
    )
        .prop_map(|(threads, q, s, theta_raw)| {
            let volts: Vec<f64> = (0..q).map(|j| 1.0 - 0.08 * j as f64).collect();
            let mut cfg = SystemConfig::paper_default(25.0);
            cfg.voltages = VoltageTable::from_volts(volts).expect("in range");
            cfg.tsr_levels = (0..s)
                .map(|k| 0.6 + 0.4 * k as f64 / (s - 1) as f64)
                .collect();
            let profiles = threads
                .into_iter()
                .map(|(lo, w, n, cpi)| {
                    let delays: Vec<f64> = (0..64)
                        .map(|i| (lo + w * i as f64 / 64.0).min(1.0))
                        .collect();
                    ThreadProfile::new(
                        n,
                        cpi,
                        ErrorCurve::from_normalized_delays(delays).expect("non-empty"),
                    )
                })
                .collect();
            Instance {
                cfg,
                profiles,
                theta: theta_raw,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn leakage_poly_matches_exhaustive(
        inst in instance_strategy(),
        frac in 0.0f64..0.8,
        idle in 0.0f64..1.0,
    ) {
        let mut leak = LeakageModel::fraction_of_dynamic(&inst.cfg, frac).expect("valid");
        leak.idle_scale = idle;
        let poly = synts_poly_leakage(&inst.cfg, &inst.profiles, inst.theta, &leak)
            .expect("poly");
        let ex = synts_exhaustive_leakage(&inst.cfg, &inst.profiles, inst.theta, &leak)
            .expect("exhaustive");
        let cp = weighted_cost_with_leakage(&inst.cfg, &inst.profiles, &poly, &leak, inst.theta);
        let ce = weighted_cost_with_leakage(&inst.cfg, &inst.profiles, &ex, &leak, inst.theta);
        prop_assert!(
            (cp - ce).abs() <= 1e-9 * ce.abs().max(1.0),
            "leakage poly {cp} vs exhaustive {ce}"
        );
    }

    #[test]
    fn leakage_energy_dominates_dynamic_only(
        inst in instance_strategy(),
        frac in 0.01f64..0.8,
    ) {
        // Adding leakage can only add energy, never time, at fixed points.
        let leak = LeakageModel::fraction_of_dynamic(&inst.cfg, frac).expect("valid");
        let a = synts_poly(&inst.cfg, &inst.profiles, inst.theta).expect("poly");
        let base = evaluate(&inst.cfg, &inst.profiles, &a);
        let ext = evaluate_with_leakage(&inst.cfg, &inst.profiles, &a, &leak);
        prop_assert!(ext.energy > base.energy);
        prop_assert!((ext.time - base.time).abs() <= 1e-12 * base.time.max(1.0));
    }

    #[test]
    fn power_cap_poly_matches_exhaustive(
        inst in instance_strategy(),
        cap_scale in 0.4f64..4.0,
    ) {
        // Cap relative to the nominal assignment's average power.
        let nom = nominal(&inst.cfg, &inst.profiles).expect("nominal");
        let ed = evaluate(&inst.cfg, &inst.profiles, &nom);
        let cap = cap_scale * ed.energy / ed.time;
        let poly = synts_poly_power_capped(&inst.cfg, &inst.profiles, cap);
        let ex = synts_exhaustive_power_capped(&inst.cfg, &inst.profiles, cap);
        match (poly, ex) {
            (Ok(p), Ok(e)) => {
                prop_assert!(
                    (p.time - e.time).abs() <= 1e-9 * e.time.max(1.0),
                    "cap {cap}: poly {} vs exhaustive {}", p.time, e.time
                );
                prop_assert!(p.avg_power <= cap * (1.0 + 1e-9));
            }
            (Err(OptError::Infeasible), Err(OptError::Infeasible)) => {}
            (p, e) => prop_assert!(false, "solvers disagree: {p:?} vs {e:?}"),
        }
    }

    #[test]
    fn power_cap_monotone_in_cap(
        inst in instance_strategy(),
    ) {
        let nom = nominal(&inst.cfg, &inst.profiles).expect("nominal");
        let ed = evaluate(&inst.cfg, &inst.profiles, &nom);
        let p_nom = ed.energy / ed.time;
        let mut prev = f64::INFINITY;
        for scale in [0.5, 1.0, 2.0, 4.0] {
            if let Ok(sol) = synts_poly_power_capped(&inst.cfg, &inst.profiles, p_nom * scale) {
                prop_assert!(sol.time <= prev * (1.0 + 1e-12));
                prev = sol.time;
            }
        }
    }

    #[test]
    fn thrifty_saves_versus_sleepless_whenever_threads_idle(
        inst in instance_strategy(),
        frac in 0.05f64..0.6,
        retention in 0.0f64..0.9,
    ) {
        let leak = LeakageModel::fraction_of_dynamic(&inst.cfg, frac).expect("valid");
        let thrifty = ThriftyConfig { sleep_retention: retention, wake_cycles: 0.0 };
        let out = thrifty_barrier(&inst.cfg, &inst.profiles, &leak, &thrifty).expect("ok");
        let sleepless = evaluate_with_leakage(&inst.cfg, &inst.profiles, &out.assignment, &leak);
        if out.sleep_time > 0.0 {
            prop_assert!(out.total.energy <= sleepless.energy * (1.0 + 1e-12));
        } else {
            prop_assert!((out.total.energy - sleepless.energy).abs()
                <= 1e-9 * sleepless.energy.max(1.0));
        }
        prop_assert!((out.total.time - sleepless.time).abs() <= 1e-12 * sleepless.time.max(1.0));
    }

    #[test]
    fn predictors_stay_inside_observation_envelope(
        observations in prop::collection::vec(10.0f64..1_000_000.0, 1..30),
        alpha in 0.05f64..1.0,
        window in 1usize..8,
    ) {
        // Every predictor is a convex combination of past observations.
        let kinds = [
            PredictorKind::LastValue,
            PredictorKind::Ewma(alpha),
            PredictorKind::WindowMean(window),
        ];
        for kind in kinds {
            let mut p = NiPredictor::new(1, kind).expect("valid");
            for &n in &observations {
                p.observe(&[n]).expect("valid obs");
            }
            let est = p.predict().expect("observed")[0];
            let lo = observations.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = observations.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(
                est >= lo * (1.0 - 1e-12) && est <= hi * (1.0 + 1e-12),
                "{kind:?} escaped envelope: {est} not in [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn leakage_objective_never_beaten_by_random_assignments(
        inst in instance_strategy(),
        frac in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        let leak = LeakageModel::fraction_of_dynamic(&inst.cfg, frac).expect("valid");
        let opt = synts_poly_leakage(&inst.cfg, &inst.profiles, inst.theta, &leak)
            .expect("poly");
        let c_opt =
            weighted_cost_with_leakage(&inst.cfg, &inst.profiles, &opt, &leak, inst.theta);
        let mut state = seed | 1;
        for _ in 0..20 {
            let points = (0..inst.profiles.len())
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    OperatingPoint {
                        voltage_idx: (state >> 33) as usize % inst.cfg.q(),
                        tsr_idx: (state >> 49) as usize % inst.cfg.s(),
                    }
                })
                .collect();
            let a = Assignment { points };
            let c = weighted_cost_with_leakage(&inst.cfg, &inst.profiles, &a, &leak, inst.theta);
            prop_assert!(c >= c_opt - 1e-9 * c_opt.abs().max(1.0));
        }
    }
}

/// Deterministic end-to-end check: a die aged by the gatelib aging model
/// pushes every thread's error curve up, and SynTS responds by choosing
/// equal-or-more-conservative TSR levels.
#[test]
fn aging_makes_synts_more_conservative() {
    use synts::circuits::{AluEvent, AluOp, PipeStage, SimpleAlu};
    use synts::gatelib::variation::AgingModel;
    use synts::gatelib::{StaticTiming, TimingSim, Voltage};

    let alu = SimpleAlu::new(8).expect("build");
    // A modest operand stream with mixed carry lengths.
    let mut events = Vec::new();
    let mut state = 0x1357_9bdfu64;
    for _ in 0..400 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        events.push(AluEvent::new(AluOp::Add, state & 0xFF, (state >> 8) & 0xFF));
    }
    let run = |factors: Option<&synts::gatelib::variation::DelayFactors>| -> Vec<f64> {
        let tnom = match factors {
            Some(f) => StaticTiming::analyze_with_factors(alu.netlist(), Voltage::NOMINAL, f)
                .expect("sta")
                .nominal_period(),
            None => StaticTiming::analyze(alu.netlist(), Voltage::NOMINAL)
                .expect("sta")
                .nominal_period(),
        };
        let mut sim = match factors {
            Some(f) => TimingSim::with_factors(alu.netlist(), Voltage::NOMINAL, f).expect("sim"),
            None => TimingSim::new(alu.netlist(), Voltage::NOMINAL).expect("sim"),
        };
        events
            .iter()
            .map(|ev| sim.apply(&alu.encode(ev)).expect("ok").delay / tnom)
            .collect()
    };
    let fresh: Vec<f64> = run(None);
    // Age the die 10 years but keep the clock budget of the fresh die:
    // normalize aged delays by the FRESH nominal period, which is exactly
    // the "aging eats the guard band" scenario.
    let aging = AgingModel::nbti_ptm22();
    let factors = aging
        .factors(alu.netlist().cell_count(), 10.0, None)
        .expect("ok");
    let fresh_tnom = StaticTiming::analyze(alu.netlist(), Voltage::NOMINAL)
        .expect("sta")
        .nominal_period();
    let mut sim = TimingSim::with_factors(alu.netlist(), Voltage::NOMINAL, &factors).expect("sim");
    let aged: Vec<f64> = events
        .iter()
        .map(|ev| (sim.apply(&alu.encode(ev)).expect("ok").delay / fresh_tnom).min(1.0))
        .collect();

    let cfg = SystemConfig::paper_default(fresh_tnom);
    let curve = |d: &[f64]| ErrorCurve::from_normalized_delays(d.to_vec()).expect("ok");
    let fresh_profiles = vec![ThreadProfile::new(10_000.0, 1.0, curve(&fresh))];
    let aged_profiles = vec![ThreadProfile::new(10_000.0, 1.0, curve(&aged))];
    let theta = 1.0;
    let a_fresh = synts_poly(&cfg, &fresh_profiles, theta).expect("ok");
    let a_aged = synts_poly(&cfg, &aged_profiles, theta).expect("ok");
    // The aged die errs more at every r, so the chosen TSR must not be
    // more aggressive (lower) than the fresh die's at the same voltage
    // trade-off.
    assert!(
        a_aged.points[0].tsr_idx >= a_fresh.points[0].tsr_idx,
        "aged die must not speculate harder: {:?} vs {:?}",
        a_aged.points[0],
        a_fresh.points[0]
    );
}

/// Failure injection: the solvers refuse malformed inputs loudly rather
/// than returning garbage.
#[test]
fn extension_apis_reject_malformed_inputs() {
    let cfg = SystemConfig::paper_default(10.0);
    let curve = ErrorCurve::from_normalized_delays(vec![0.5; 8]).expect("ok");
    let profiles = vec![ThreadProfile::new(100.0, 1.0, curve)];

    // Leakage: broken model.
    let mut bad_leak = LeakageModel::none();
    bad_leak.idle_scale = f64::NAN;
    assert!(synts_poly_leakage(&cfg, &profiles, 1.0, &bad_leak).is_err());

    // Power cap: zero/NaN caps.
    assert!(synts_poly_power_capped(&cfg, &profiles, 0.0).is_err());
    assert!(synts_poly_power_capped(&cfg, &profiles, f64::INFINITY).is_err());

    // Thrifty: malformed retention.
    let bad_thrifty = ThriftyConfig {
        sleep_retention: 2.0,
        wake_cycles: 0.0,
    };
    assert!(thrifty_barrier(&cfg, &profiles, &LeakageModel::none(), &bad_thrifty).is_err());

    // Predictor: bad shapes propagate.
    let mut p = NiPredictor::new(2, PredictorKind::LastValue).expect("ok");
    assert!(p.observe(&[1.0, 2.0, 3.0]).is_err());
}
