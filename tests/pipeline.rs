//! End-to-end integration: workload kernels → gate-level characterization →
//! optimization → evaluation, plus the model-vs-simulator agreement that
//! justifies optimizing the closed form.

use synts::archsim::{simulate_barrier, CoreSetting, RazorCore};
use synts::prelude::*;

#[test]
fn full_pipeline_synts_wins_the_weighted_objective() {
    let harness = HarnessConfig::quick();
    let data =
        characterize(Benchmark::Cholesky, StageKind::SimpleAlu, &harness).expect("characterizes");
    let cfg = data.system_config();
    for iv in &data.intervals {
        let profiles = iv.profiles();
        let theta = theta_equal_weight(&cfg, &profiles).expect("theta");
        let synts = synts_poly(&cfg, &profiles, theta).expect("solves");
        let c_synts = weighted_cost(&cfg, &profiles, &synts, theta);
        for a in [
            nominal(&cfg, &profiles).expect("nominal"),
            no_ts(&cfg, &profiles, theta).expect("no-ts"),
            per_core_ts(&cfg, &profiles, theta).expect("per-core"),
        ] {
            let c = weighted_cost(&cfg, &profiles, &a, theta);
            assert!(
                c_synts <= c * (1.0 + 1e-9),
                "SynTS must win Eq 4.4: {c_synts} vs {c}"
            );
        }
    }
}

#[test]
fn analytic_model_matches_cycle_level_simulation() {
    // Eq 4.1-4.3 and the instruction-by-instruction Razor simulator must
    // agree exactly when the error curve comes from the same trace.
    let harness = HarnessConfig::quick();
    let data = characterize(Benchmark::Fmm, StageKind::SimpleAlu, &harness).expect("characterizes");
    let cfg = data.system_config();
    let iv = &data.intervals[0];

    // Build profiles over the trace population (so N matches the sim).
    let traces: Vec<&[f64]> = iv
        .threads
        .iter()
        .map(|t| t.normalized_delays.as_slice())
        .collect();
    let profiles: Vec<ThreadProfile<ErrorCurve>> = iv
        .threads
        .iter()
        .map(|t| {
            ThreadProfile::new(
                t.normalized_delays.len() as f64,
                t.cpi_base,
                ErrorCurve::from_normalized_delays(t.normalized_delays.clone()).expect("non-empty"),
            )
        })
        .collect();
    let assignment = synts_poly(&cfg, &profiles, 1.0).expect("solves");

    let predicted = evaluate(&cfg, &profiles, &assignment);
    let settings: Vec<CoreSetting> = assignment
        .points
        .iter()
        .map(|p| CoreSetting {
            voltage: cfg.voltages.levels()[p.voltage_idx],
            tsr: cfg.tsr_levels[p.tsr_idx],
        })
        .collect();
    let cpi: Vec<f64> = iv.threads.iter().map(|t| t.cpi_base).collect();
    let sim = simulate_barrier(
        data.tnom_v1,
        &settings,
        &traces,
        &cpi,
        cfg.alpha,
        RazorCore {
            c_penalty: cfg.c_penalty as u64,
        },
    );
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
    assert!(
        rel(sim.texec, predicted.time) < 1e-9,
        "time: sim {} vs model {}",
        sim.texec,
        predicted.time
    );
    assert!(
        rel(sim.energy, predicted.energy) < 1e-9,
        "energy: sim {} vs model {}",
        sim.energy,
        predicted.energy
    );
}

#[test]
fn online_controller_close_to_oracle_on_stationary_workload() {
    // Ocean's stencil intervals are stationary, so the sampling prefix is
    // representative and the online controller should land near the oracle.
    let harness = HarnessConfig::quick();
    let data =
        characterize(Benchmark::Ocean, StageKind::SimpleAlu, &harness).expect("characterizes");
    let cfg = data.system_config();
    let iv = &data.intervals[0];
    let traces = iv.thread_traces();
    let longest = traces
        .iter()
        .map(|t| t.normalized_delays.len())
        .max()
        .unwrap_or(0);
    let plan = SamplingPlan::paper_default(longest, cfg.s());
    let online = run_interval(&cfg, &traces, 1.0, plan).expect("online");
    let (_, offline) = run_interval_offline(&cfg, &traces, 1.0).expect("offline");
    let ratio = online.total.edp() / offline.edp();
    assert!(
        (0.9..1.8).contains(&ratio),
        "online/offline EDP ratio {ratio}"
    );
}

#[test]
fn homogeneous_benchmark_gives_synts_no_edge_over_per_core() {
    // Ocean is the paper's homogeneous control: SynTS and per-core TS
    // should land within a whisker of each other.
    let harness = HarnessConfig::quick();
    let data =
        characterize(Benchmark::Ocean, StageKind::SimpleAlu, &harness).expect("characterizes");
    let cfg = data.system_config();
    let iv = &data.intervals[0];
    let profiles = iv.profiles();
    let theta = theta_equal_weight(&cfg, &profiles).expect("theta");
    let synts = weighted_cost(
        &cfg,
        &profiles,
        &synts_poly(&cfg, &profiles, theta).expect("solves"),
        theta,
    );
    let percore = weighted_cost(
        &cfg,
        &profiles,
        &per_core_ts(&cfg, &profiles, theta).expect("solves"),
        theta,
    );
    let gap = (percore - synts) / synts;
    assert!(
        gap < 0.08,
        "homogeneous workload should leave little joint headroom, gap {gap}"
    );
}

#[test]
fn heterogeneous_benchmark_gives_synts_a_real_edge() {
    let harness = HarnessConfig::quick();
    let data =
        characterize(Benchmark::LuContig, StageKind::SimpleAlu, &harness).expect("characterizes");
    let cfg = data.system_config();
    let mut best_gap = 0.0f64;
    for iv in &data.intervals {
        let profiles = iv.profiles();
        let theta = theta_equal_weight(&cfg, &profiles).expect("theta");
        let synts = weighted_cost(
            &cfg,
            &profiles,
            &synts_poly(&cfg, &profiles, theta).expect("solves"),
            theta,
        );
        let percore = weighted_cost(
            &cfg,
            &profiles,
            &per_core_ts(&cfg, &profiles, theta).expect("solves"),
            theta,
        );
        best_gap = best_gap.max((percore - synts) / synts);
    }
    assert!(
        best_gap > 0.01,
        "heterogeneous workload should reward joint optimization, gap {best_gap}"
    );
}

#[test]
fn leakage_model_matches_cycle_level_simulation() {
    // The leakage-extended closed form (synts_core::leakage) and the
    // cycle-level simulator with static power must agree exactly when the
    // error curve comes from the same trace — the same certification
    // analytic_model_matches_cycle_level_simulation gives Eq 4.1–4.3.
    use synts::archsim::{simulate_barrier_with_leakage, SleepPolicy};

    let harness = HarnessConfig::quick();
    let data = characterize(Benchmark::Fmm, StageKind::SimpleAlu, &harness).expect("characterizes");
    let cfg = data.system_config();
    let iv = &data.intervals[0];
    let traces: Vec<&[f64]> = iv
        .threads
        .iter()
        .map(|t| t.normalized_delays.as_slice())
        .collect();
    let profiles: Vec<ThreadProfile<ErrorCurve>> = iv
        .threads
        .iter()
        .map(|t| {
            ThreadProfile::new(
                t.normalized_delays.len() as f64,
                t.cpi_base,
                ErrorCurve::from_normalized_delays(t.normalized_delays.clone()).expect("non-empty"),
            )
        })
        .collect();
    let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3).expect("valid");
    let assignment = synts_poly_leakage(&cfg, &profiles, 1.0, &leak).expect("solves");
    let predicted = evaluate_with_leakage(&cfg, &profiles, &assignment, &leak);
    let settings: Vec<CoreSetting> = assignment
        .points
        .iter()
        .map(|p| CoreSetting {
            voltage: cfg.voltages.levels()[p.voltage_idx],
            tsr: cfg.tsr_levels[p.tsr_idx],
        })
        .collect();
    let cpi: Vec<f64> = iv.threads.iter().map(|t| t.cpi_base).collect();
    let sim = simulate_barrier_with_leakage(
        data.tnom_v1,
        &settings,
        &traces,
        &cpi,
        cfg.alpha,
        RazorCore {
            c_penalty: cfg.c_penalty as u64,
        },
        leak.p_leak_nominal,
        leak.voltage_exponent,
        SleepPolicy {
            idle_retention: leak.idle_scale,
            wake_cycles: 0.0,
        },
    );
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
    assert!(
        rel(sim.texec, predicted.time) < 1e-9,
        "time: sim {} vs model {}",
        sim.texec,
        predicted.time
    );
    assert!(
        rel(sim.energy, predicted.energy) < 1e-9,
        "energy: sim {} vs model {}",
        sim.energy,
        predicted.energy
    );
}

#[test]
fn thrifty_model_matches_cycle_level_simulation() {
    // core::thrifty's closed form against the cycle-level sleep policy.
    use synts::archsim::{simulate_barrier_with_leakage, SleepPolicy};

    let harness = HarnessConfig::quick();
    let data =
        characterize(Benchmark::Radix, StageKind::SimpleAlu, &harness).expect("characterizes");
    let cfg = data.system_config();
    let iv = &data.intervals[0];
    let traces: Vec<&[f64]> = iv
        .threads
        .iter()
        .map(|t| t.normalized_delays.as_slice())
        .collect();
    let profiles: Vec<ThreadProfile<ErrorCurve>> = iv
        .threads
        .iter()
        .map(|t| {
            ThreadProfile::new(
                t.normalized_delays.len() as f64,
                t.cpi_base,
                ErrorCurve::from_normalized_delays(t.normalized_delays.clone()).expect("non-empty"),
            )
        })
        .collect();
    let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3).expect("valid");
    let thrifty = ThriftyConfig::classic();
    let model = thrifty_barrier(&cfg, &profiles, &leak, &thrifty).expect("evaluates");
    let settings: Vec<CoreSetting> = model
        .assignment
        .points
        .iter()
        .map(|p| CoreSetting {
            voltage: cfg.voltages.levels()[p.voltage_idx],
            tsr: cfg.tsr_levels[p.tsr_idx],
        })
        .collect();
    let cpi: Vec<f64> = iv.threads.iter().map(|t| t.cpi_base).collect();
    let sim = simulate_barrier_with_leakage(
        data.tnom_v1,
        &settings,
        &traces,
        &cpi,
        cfg.alpha,
        RazorCore {
            c_penalty: cfg.c_penalty as u64,
        },
        leak.p_leak_nominal,
        leak.voltage_exponent,
        SleepPolicy {
            idle_retention: thrifty.sleep_retention,
            wake_cycles: thrifty.wake_cycles,
        },
    );
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
    assert!(
        rel(sim.texec, model.total.time) < 1e-9,
        "time: sim {} vs model {}",
        sim.texec,
        model.total.time
    );
    assert!(
        rel(sim.energy, model.total.energy) < 1e-9,
        "energy: sim {} vs model {}",
        sim.energy,
        model.total.energy
    );
}
