//! Power-capped SynTS: the paper's suggested generalization (Sec 4.1)
//! "the proposed approach can be generalized to address power consumption
//! as well".
//!
//! Characterizes an FMM barrier interval, then asks the power-capped
//! solver for the fastest barrier completion under a sweep of average-
//! power budgets — the operating curve a power-limited chip would follow.
//!
//! Run with: `cargo run --release --example power_capped`

use synts::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let harness = HarnessConfig::quick();
    let data = characterize(Benchmark::Fmm, StageKind::SimpleAlu, &harness)?;
    let cfg = data.system_config();
    let iv = &data.intervals[0];
    let profiles = iv.profiles();

    // Reference point: the nominal assignment's average power.
    let nom = nominal(&cfg, &profiles)?;
    let ed_nom = evaluate(&cfg, &profiles, &nom);
    let p_nom = ed_nom.energy / ed_nom.time;
    println!(
        "nominal: time {:.1}, energy {:.1}, avg power {:.4}",
        ed_nom.time, ed_nom.energy, p_nom
    );

    // Sweep the cap from well below to well above the nominal power.
    println!("\n  cap/Pnom   time/Tnom   power/Pnom   per-thread (V, r)");
    for scale in [0.5, 0.7, 0.9, 1.0, 1.2, 1.5, 2.0] {
        match synts_poly_power_capped(&cfg, &profiles, p_nom * scale) {
            Ok(sol) => {
                let points: Vec<String> = sol
                    .assignment
                    .points
                    .iter()
                    .map(|p| {
                        format!(
                            "({}, {:.2})",
                            cfg.voltages.levels()[p.voltage_idx],
                            cfg.tsr_levels[p.tsr_idx]
                        )
                    })
                    .collect();
                println!(
                    "  {scale:>8.2}   {:>9.4}   {:>10.4}   {}",
                    sol.time / ed_nom.time,
                    sol.avg_power / p_nom,
                    points.join(" ")
                );
            }
            Err(OptError::Infeasible) => {
                println!("  {scale:>8.2}   infeasible — cap below the most frugal point");
            }
            Err(e) => return Err(e.into()),
        }
    }

    // The same interval under the leakage-extended model: a chip whose
    // static power is 30% of dynamic at nominal re-balances its choices.
    let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3)?;
    let theta = ed_nom.energy / ed_nom.time;
    let aware = synts_poly_leakage(&cfg, &profiles, theta, &leak)?;
    let ed = evaluate_with_leakage(&cfg, &profiles, &aware, &leak);
    println!(
        "\nleakage-aware SynTS (30% leakage share): time x{:.3}, energy x{:.3} vs nominal",
        ed.time / ed_nom.time,
        ed.energy / evaluate_with_leakage(&cfg, &profiles, &nom, &leak).energy
    );
    Ok(())
}
