//! Process variation, aging, and the guard band timing speculation eats.
//!
//! The paper's introduction motivates timing speculation from worst-case
//! design: guard bands exist because of "process variation and aging
//! etc.", yet critical-path delays are rarely sensitized. This example
//! makes that argument quantitative on the gate-level substrate:
//!
//! 1. sizes the worst-case guard band for a population of varied dies;
//! 2. ages one die for ten years and watches its error curve rise;
//! 3. shows SynTS adapting its speculation to the aged die.
//!
//! Run with: `cargo run --release --example aging_guardband`

use synts::circuits::{build_stage, AluEvent, AluOp};
use synts::gatelib::variation::{guard_band, AgingModel, VariationModel};
use synts::gatelib::Voltage;
use synts::prelude::*;
use synts::timing::{DieTiming, StageCharacterizer};

fn operand_stream(seed: u64, n: usize) -> Vec<AluEvent> {
    let ops = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And, AluOp::Shl];
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let op = ops[(state >> 61) as usize % ops.len()];
            AluEvent::new(op, state & 0xFFFF, (state >> 13) & 0xFFFF)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Guard-band sizing over a Monte Carlo die population.
    let stage = build_stage(StageKind::SimpleAlu, 16)?;
    let netlist = stage.netlist().clone();
    println!("worst-case guard band over 50 sampled dies:");
    for (label, model) in [
        ("typical 22nm", VariationModel::ptm22_typical()),
        ("pessimistic", VariationModel::new(0.10, 0.08)?),
    ] {
        let gb = guard_band(&netlist, Voltage::NOMINAL, &model, 50, 7)?;
        println!("  {label:>12}: x{gb:.4} on the nominal period");
    }

    // 2. Age a die and characterize it against the FRESH clock budget.
    let events = operand_stream(0xfeed, 800);
    let fresh = StageCharacterizer::from_stage(build_stage(StageKind::SimpleAlu, 16)?)?;
    let fresh_curve = fresh.error_curve(&events)?;
    let aging = AgingModel::nbti_ptm22();
    println!("\nerr(r) as the die ages (design-nominal clock):");
    println!(
        "  {:>6} {:>10} {:>10} {:>10}",
        "years", "err(0.8)", "err(0.9)", "err(1.0)"
    );
    println!(
        "  {:>6} {:>10.4} {:>10.4} {:>10.4}",
        0.0,
        fresh_curve.err(0.8),
        fresh_curve.err(0.9),
        fresh_curve.err(1.0)
    );
    let mut aged_curve = fresh_curve.clone();
    for years in [3.0, 7.0, 10.0] {
        let stage = build_stage(StageKind::SimpleAlu, 16)?;
        let factors = aging.factors(stage.netlist().cell_count(), years, None)?;
        let charac =
            StageCharacterizer::from_stage_on_die(stage, factors, DieTiming::DesignNominal)?;
        aged_curve = charac.error_curve(&events)?;
        println!(
            "  {years:>6} {:>10.4} {:>10.4} {:>10.4}",
            aged_curve.err(0.8),
            aged_curve.err(0.9),
            aged_curve.err(1.0)
        );
    }

    // 3. SynTS on fresh vs aged curves: the optimizer backs off exactly
    //    as much speculation as the silicon lost.
    let cfg = SystemConfig::paper_default(fresh.tnom_v1());
    let theta = 1.0;
    for (label, curve) in [("fresh", fresh_curve), ("aged 10y", aged_curve)] {
        let profiles = vec![
            ThreadProfile::new(10_000.0, 1.2, curve.clone()),
            ThreadProfile::new(8_000.0, 1.0, curve.clone()),
        ];
        let a = synts_poly(&cfg, &profiles, theta)?;
        let ed = evaluate(&cfg, &profiles, &a);
        let rs: Vec<String> = a
            .points
            .iter()
            .map(|p| format!("{:.2}", cfg.tsr_levels[p.tsr_idx]))
            .collect();
        println!(
            "\n{label:>9}: SynTS picks r = [{}], EDP {:.3e}",
            rs.join(", "),
            ed.edp()
        );
    }
    Ok(())
}
