//! The online SynTS controller in action (paper Sec 4.3).
//!
//! Runs the sampling phase on real delay traces, shows the estimated vs
//! actual error curves, and quantifies the energy/time the online scheme
//! gives up relative to the offline oracle — first for one interval in
//! detail, then for the whole benchmark via the batched multi-interval
//! path (`run_intervals_batched`), which fans intervals out across the
//! `SYNTS_THREADS` pool.
//!
//! Run with: `cargo run --release --example online_controller`

use synts::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let harness = HarnessConfig::quick();
    let data = characterize(Benchmark::Fmm, StageKind::SimpleAlu, &harness)?;
    let cfg = data.system_config();
    let iv = &data.intervals[0];
    let traces = iv.thread_traces();
    let longest = traces
        .iter()
        .map(|t| t.normalized_delays.len())
        .max()
        .unwrap_or(0);
    let plan = SamplingPlan::paper_default(longest, cfg.s());
    println!(
        "sampling plan: {} instructions per thread at {} ({} per TSR level)\n",
        plan.n_samp,
        plan.v_samp,
        plan.n_samp / cfg.s()
    );

    // Estimated vs actual error curves per thread.
    println!("estimated ~err(r) vs actual err(r):");
    for (t, tr) in traces.iter().enumerate() {
        let est = estimate_curve(&cfg, &tr.normalized_delays, plan)?;
        let actual = tr.exact_curve()?;
        print!("  T{t}:");
        for &r in &cfg.tsr_levels {
            print!(" r={r:.2}: {:.3}/{:.3}", est.err(r), actual.err(r));
        }
        println!();
    }

    // Run the interval online and compare with the offline oracle.
    let theta = 1.0;
    let online = run_interval(&cfg, &traces, theta, plan)?;
    let (oracle_assignment, offline) = run_interval_offline(&cfg, &traces, theta)?;
    println!("\nchosen operating points (online | oracle):");
    for t in 0..traces.len() {
        let op = online.assignment.points[t];
        let or = oracle_assignment.points[t];
        println!(
            "  T{t}: {:.2}V/r{:.2}  |  {:.2}V/r{:.2}",
            cfg.voltages.levels()[op.voltage_idx].volts(),
            cfg.tsr_levels[op.tsr_idx],
            cfg.voltages.levels()[or.voltage_idx].volts(),
            cfg.tsr_levels[or.tsr_idx],
        );
    }
    println!(
        "\nsampling overhead: {:.1}% of interval time, {:.1}% of energy",
        100.0 * online.sampling.time / online.total.time,
        100.0 * online.sampling.energy / online.total.energy
    );
    println!(
        "online EDP / offline EDP = {:.3} (the cost of not knowing the future)",
        online.total.edp() / offline.edp()
    );

    // The whole benchmark at once: every barrier interval re-optimized
    // through the batched path, fanned out across the pool. Outcomes are
    // index-ordered and identical to a sequential per-interval loop.
    let pool = ThreadPool::from_env();
    let intervals: Vec<Vec<ThreadTrace>> = data
        .intervals
        .iter()
        .map(IntervalData::thread_traces)
        .collect();
    let registry = SolverRegistry::<SampledCurve>::with_defaults();
    let solver = registry.get("synts_poly").expect("registered");
    let outcomes = run_intervals_batched(&cfg, &intervals, theta, plan, &*solver, pool)?;
    let mut total = EnergyDelay::new(0.0, 0.0);
    let mut sampling = EnergyDelay::new(0.0, 0.0);
    for out in &outcomes {
        total.energy += out.total.energy;
        total.time += out.total.time;
        sampling.energy += out.sampling.energy;
        sampling.time += out.sampling.time;
    }
    println!(
        "\nbatched run: {} interval(s) on {} worker(s) -> total energy {:.1}, time {:.1} \
         (sampling overhead {:.1}% of energy)",
        outcomes.len(),
        pool.workers(),
        total.energy,
        total.time,
        100.0 * sampling.energy / total.energy
    );
    Ok(())
}
