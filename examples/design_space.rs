//! Design-space exploration: how datapath micro-architecture shapes the
//! timing-speculation headroom.
//!
//! Sweeps the SimpleALU's adder topology and the multiplier topology,
//! characterizes each against the same workload trace, and prints the
//! resulting error-probability curves — the knob a designer would turn to
//! trade nominal frequency against speculation headroom. Each topology is
//! then pushed through a parallel Pareto θ sweep
//! (`Synts::builder().workers(..)`, or `SYNTS_THREADS`) to see how the
//! curve shape translates into the energy/time trade-off. Also dumps one
//! stage as structural Verilog to show the netlist interchange surface.
//!
//! Run with: `cargo run --release --example design_space`

use synts::circuits::{array_multiplier, wallace_multiplier, AdderKind, PipeStage, SimpleAlu};
use synts::gatelib::{export, NetlistBuilder, StaticTiming, Voltage};
use synts::prelude::*;
use synts::timing::StageCharacterizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = WorkloadConfig::small(4);
    let trace = Benchmark::Cholesky.run(&cfg);
    let events = &trace.intervals[0].thread(0).events;
    // SYNTS_THREADS (or the machine) sizes the sweep pool by default.
    let synts = Synts::builder().build()?;
    let workers = synts.pool().workers();

    println!("== SimpleALU adder topology vs err(r) (Cholesky thread 0) ==");
    for (name, kind) in [
        ("ripple-carry", AdderKind::Ripple),
        ("carry-lookahead", AdderKind::CarryLookahead),
        ("kogge-stone", AdderKind::KoggeStone),
    ] {
        let alu = SimpleAlu::with_adder(cfg.width, kind)?;
        println!("  {}", export::summary_line(alu.netlist()));
        let charac = StageCharacterizer::from_stage(Box::new(alu))?;
        let curve = charac.error_curve_sampled(events, 400)?;
        print!("  {name:>16}: tnom {:6.1}", charac.tnom_v1());
        for r in [0.7, 0.8, 0.9] {
            print!("  err({r:.1}) = {:.4}", curve.err(r));
        }
        println!("\n");

        // How the topology's curve translates into the energy/time
        // trade-off: a θ sweep over all four Cholesky threads, fanned out
        // across the SYNTS_THREADS pool (bit-identical at any width).
        let sys = SystemConfig::paper_default(charac.tnom_v1());
        let profiles: Vec<ThreadProfile<ErrorCurve>> = (0..trace.intervals[0].threads())
            .map(|t| {
                let ev = &trace.intervals[0].thread(t).events;
                Ok(ThreadProfile::new(
                    ev.len().max(1) as f64,
                    1.0,
                    charac.error_curve_sampled(ev, 400)?,
                ))
            })
            .collect::<Result<_, OptError>>()?;
        let thetas = default_theta_sweep(&sys, &profiles, 16, 2.0)?;
        let points = synts.sweep(&sys, &profiles, &thetas)?;
        let eds: Vec<EnergyDelay> = points.iter().map(|p| p.ed).collect();
        let front = synts::timing::pareto_front(&eds);
        let fastest = points
            .iter()
            .map(|p| p.ed.time)
            .fold(f64::INFINITY, f64::min);
        let frugal = points
            .iter()
            .map(|p| p.ed.energy)
            .fold(f64::INFINITY, f64::min);
        println!(
            "  {name:>16}: {}-point sweep on {workers} worker(s) -> {} Pareto points, \
             min time {fastest:.1}, min energy {frugal:.1}\n",
            points.len(),
            front.len()
        );
    }

    println!("== multiplier topology (8x8) ==");
    for (name, wallace) in [("array", false), ("wallace+kogge-stone", true)] {
        let mut b = NetlistBuilder::new(format!("mult_{name}"));
        let a = b.input_bus("a", 8);
        let x = b.input_bus("b", 8);
        let p = if wallace {
            wallace_multiplier(&mut b, &a, &x)?
        } else {
            array_multiplier(&mut b, &a, &x)?
        };
        b.output_bus(&p, "p");
        let n = b.finish()?;
        let sta = StaticTiming::analyze(&n, Voltage::NOMINAL)?;
        println!(
            "  {name:>20}: {}  critical path {:.1}",
            export::summary_line(&n),
            sta.nominal_period()
        );
    }

    println!("\n== structural Verilog of a half adder (netlist interchange) ==");
    let mut b = NetlistBuilder::new("half_adder");
    let a = b.input("a");
    let c = b.input("b");
    let s = b.cell(synts::gatelib::CellKind::Xor2, &[a, c])?;
    let carry = b.cell(synts::gatelib::CellKind::And2, &[a, c])?;
    b.output(s, "sum");
    b.output(carry, "carry");
    print!("{}", export::to_verilog(&b.finish()?));
    Ok(())
}
