//! Design-space exploration: how datapath micro-architecture shapes the
//! timing-speculation headroom.
//!
//! Sweeps the SimpleALU's adder topology, characterizes each variant
//! against the same Cholesky trace, and pushes every variant through the
//! declarative scenario API: the custom characterization is packaged as
//! a [`BenchmarkData`] and handed to [`Experiment::run_on`], so the θ
//! sweep, Pareto front and report come from the same single runner the
//! paper figures use — no hand-rolled sweep loops. Also dumps one stage
//! as structural Verilog to show the netlist interchange surface.
//!
//! Run with: `cargo run --release --example design_space`

use synts::circuits::{array_multiplier, wallace_multiplier, AdderKind, PipeStage, SimpleAlu};
use synts::core_api::experiments::{IntervalData, ThreadData};
use synts::gatelib::{export, NetlistBuilder, StaticTiming, Voltage};
use synts::prelude::*;
use synts::timing::StageCharacterizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = WorkloadConfig::small(4);
    let trace = Benchmark::Cholesky.run(&cfg);
    let interval = &trace.intervals[0];
    let events = &interval.thread(0).events;

    println!("== SimpleALU adder topology vs err(r) (Cholesky thread 0) ==");
    for (name, kind) in [
        ("ripple-carry", AdderKind::Ripple),
        ("carry-lookahead", AdderKind::CarryLookahead),
        ("kogge-stone", AdderKind::KoggeStone),
    ] {
        let alu = SimpleAlu::with_adder(cfg.width, kind)?;
        println!("  {}", export::summary_line(alu.netlist()));
        let charac = StageCharacterizer::from_stage(Box::new(alu))?;
        let curve = charac.error_curve_sampled(events, 400)?;
        print!("  {name:>16}: tnom {:6.1}", charac.tnom_v1());
        for r in [0.7, 0.8, 0.9] {
            print!("  err({r:.1}) = {:.4}", curve.err(r));
        }
        println!("\n");

        // Package the custom characterization as BenchmarkData and run
        // the *same* declarative scenario over each topology: the spec
        // is fixed, only the data changes.
        let threads: Vec<ThreadData> = (0..interval.threads())
            .map(|t| {
                let ev = &interval.thread(t).events;
                let delays = charac.delay_trace_sampled(ev, 400)?;
                Ok(ThreadData {
                    curve: ErrorCurve::from_trace(&delays),
                    normalized_delays: delays.normalized(),
                    instructions: ev.len().max(1) as f64,
                    cpi_base: 1.0,
                })
            })
            .collect::<Result<_, OptError>>()?;
        let data = BenchmarkData {
            benchmark: Benchmark::Cholesky,
            stage: StageKind::SimpleAlu,
            tnom_v1: charac.tnom_v1(),
            intervals: vec![IntervalData { threads }],
        };
        let spec = ScenarioSpec::new(
            format!("design-space-{name}"),
            Benchmark::Cholesky,
            StageKind::SimpleAlu,
        )
        .thetas(ThetaSpec::LogAroundEqualWeight {
            points: 16,
            decades: 2.0,
        });
        // SYNTS_THREADS (or the machine) sizes the sweep pool; the
        // report is bit-identical at any width.
        let report = Experiment::new(spec).run_on(&data)?;
        let ds = &report.datasets[0];
        let fastest = ds
            .records
            .iter()
            .map(|r| r.ed.time)
            .fold(f64::INFINITY, f64::min);
        let frugal = ds
            .records
            .iter()
            .map(|r| r.ed.energy)
            .fold(f64::INFINITY, f64::min);
        println!(
            "  {name:>16}: {}-point sweep -> {} Pareto points, \
             min time {fastest:.1}, min energy {frugal:.1}\n",
            ds.records.len(),
            ds.pareto.len()
        );
    }

    println!("== multiplier topology (8x8) ==");
    for (name, wallace) in [("array", false), ("wallace+kogge-stone", true)] {
        let mut b = NetlistBuilder::new(format!("mult_{name}"));
        let a = b.input_bus("a", 8);
        let x = b.input_bus("b", 8);
        let p = if wallace {
            wallace_multiplier(&mut b, &a, &x)?
        } else {
            array_multiplier(&mut b, &a, &x)?
        };
        b.output_bus(&p, "p");
        let n = b.finish()?;
        let sta = StaticTiming::analyze(&n, Voltage::NOMINAL)?;
        println!(
            "  {name:>20}: {}  critical path {:.1}",
            export::summary_line(&n),
            sta.nominal_period()
        );
    }

    println!("\n== structural Verilog of a half adder (netlist interchange) ==");
    let mut b = NetlistBuilder::new("half_adder");
    let a = b.input("a");
    let c = b.input("b");
    let s = b.cell(synts::gatelib::CellKind::Xor2, &[a, c])?;
    let carry = b.cell(synts::gatelib::CellKind::And2, &[a, c])?;
    b.output(s, "sum");
    b.output(carry, "carry");
    print!("{}", export::to_verilog(&b.finish()?));
    Ok(())
}
