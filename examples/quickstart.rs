//! Quickstart: the whole SynTS pipeline on one barrier interval, through
//! the `synts` facade.
//!
//! Characterizes a Radix barrier interval on the Decode stage, then asks
//! the builder-configured SynTS solver for the jointly optimal per-thread
//! voltage/frequency/speculation assignment and compares it with the
//! baselines via the solver registry.
//!
//! Run with: `cargo run --release --example quickstart`

use synts::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Cross-layer characterization: run the instrumented kernel and
    //    replay each thread's operand trace through the gate-level stage.
    let harness = HarnessConfig::quick();
    let data = characterize(Benchmark::Radix, StageKind::Decode, &harness)?;
    let cfg = data.system_config();
    println!(
        "characterized {} on {}: tnom = {:.1} units, {} barrier intervals",
        data.benchmark,
        data.stage,
        data.tnom_v1,
        data.intervals.len()
    );

    // 2. Pick the rank interval (strongest thread heterogeneity for Radix).
    let iv = &data.intervals[1];
    let profiles = iv.profiles();
    for (t, p) in profiles.iter().enumerate() {
        println!(
            "  thread {t}: N = {:>8.0}, CPI = {:.2}",
            p.instructions, p.cpi_base
        );
    }

    // 3. Optimize with equal energy/time weighting (Eq 4.4), through the
    //    fluent facade entry point.
    let theta = theta_equal_weight(&cfg, &profiles)?;
    let synts = Synts::builder().scheme("synts_poly").theta(theta).build()?;
    let assignment = synts.solve(&cfg, &profiles)?;
    println!("\n{} assignment:", synts.solver().label());
    for (t, pt) in assignment.points.iter().enumerate() {
        println!(
            "  thread {t}: V = {}, r = {:.2}",
            cfg.voltages.levels()[pt.voltage_idx],
            cfg.tsr_levels[pt.tsr_idx]
        );
    }

    // 4. Compare with the baselines — every scheme behind the same
    //    `Solver` trait, looked up by name.
    let registry = SolverRegistry::with_defaults();
    let base = evaluate(
        &cfg,
        &profiles,
        &registry
            .get("nominal")
            .expect("registered")
            .solve(&cfg, &profiles, theta)?,
    );
    for name in ["nominal", "per_core_ts", "synts_poly"] {
        let solver = registry.get(name).expect("registered");
        let (assignment, ed) = solver.solve_evaluated(&cfg, &profiles, theta)?;
        let n = ed.normalized_to(base);
        let cost = weighted_cost(&cfg, &profiles, &assignment, theta);
        println!(
            "{:>12}: time x{:.3}, energy x{:.3}, Eq-4.4 cost {cost:.3e}",
            solver.label(),
            n.time,
            n.energy
        );
    }
    Ok(())
}
