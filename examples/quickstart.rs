//! Quickstart: the whole SynTS pipeline on one barrier interval.
//!
//! Characterizes a Radix barrier interval on the Decode stage, then asks
//! SynTS-Poly for the jointly optimal per-thread voltage/frequency/
//! speculation assignment and compares it with the baselines.
//!
//! Run with: `cargo run --release --example quickstart`

use circuits::StageKind;
use synts_core::experiments::{characterize, HarnessConfig};
use synts_core::{evaluate, nominal, per_core_ts, synts_poly, theta_equal_weight, weighted_cost};
use workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Cross-layer characterization: run the instrumented kernel and
    //    replay each thread's operand trace through the gate-level stage.
    let harness = HarnessConfig::quick();
    let data = characterize(Benchmark::Radix, StageKind::Decode, &harness)?;
    let cfg = data.system_config();
    println!(
        "characterized {} on {}: tnom = {:.1} units, {} barrier intervals",
        data.benchmark,
        data.stage,
        data.tnom_v1,
        data.intervals.len()
    );

    // 2. Pick the rank interval (strongest thread heterogeneity for Radix).
    let iv = &data.intervals[1];
    let profiles = iv.profiles();
    for (t, p) in profiles.iter().enumerate() {
        println!(
            "  thread {t}: N = {:>8.0}, CPI = {:.2}",
            p.instructions, p.cpi_base
        );
    }

    // 3. Optimize with equal energy/time weighting (Eq 4.4).
    let theta = theta_equal_weight(&cfg, &profiles)?;
    let synts = synts_poly(&cfg, &profiles, theta)?;
    println!("\nSynTS assignment:");
    for (t, pt) in synts.points.iter().enumerate() {
        println!(
            "  thread {t}: V = {}, r = {:.2}",
            cfg.voltages.levels()[pt.voltage_idx],
            cfg.tsr_levels[pt.tsr_idx]
        );
    }

    // 4. Compare with the baselines.
    let base = evaluate(&cfg, &profiles, &nominal(&cfg, &profiles)?);
    for (name, assignment) in [
        ("Nominal", nominal(&cfg, &profiles)?),
        ("Per-core TS", per_core_ts(&cfg, &profiles, theta)?),
        ("SynTS", synts),
    ] {
        let ed = evaluate(&cfg, &profiles, &assignment).normalized_to(base);
        let cost = weighted_cost(&cfg, &profiles, &assignment, theta);
        println!(
            "{name:>12}: time x{:.3}, energy x{:.3}, Eq-4.4 cost {cost:.3e}",
            ed.time, ed.energy
        );
    }
    Ok(())
}
