//! Quickstart: the whole SynTS pipeline on one barrier interval, driven
//! by the declarative scenario API.
//!
//! The run is *data*: a [`ScenarioSpec`] names the benchmark, the pipe
//! stage, the schemes to compare and the θ rule, and the single
//! [`Experiment`] entry point characterizes, solves and evaluates —
//! returning a typed [`Report`] instead of preformatted text. The same
//! spec serialized to JSON (see `crates/bench/specs/quickstart.json`)
//! runs identically from disk via `synts-cli run`.
//!
//! Run with: `cargo run --release --example quickstart`

use synts::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the run as data: Radix on the Decode stage, the rank
    //    interval (strongest thread heterogeneity), three schemes at the
    //    equal-weight θ, normalized to Nominal.
    let spec = ScenarioSpec::new("quickstart", Benchmark::Radix, StageKind::Decode)
        .schemes(["nominal", "per_core_ts", "synts_poly"])
        .thetas(ThetaSpec::EqualWeight)
        .intervals(IntervalSelection::Index(1))
        .quality(Quality::Quick)
        .normalize_to("nominal")
        .record_assignments(true)
        .verify_model(true);

    // 2. One entry point does the whole pipeline: instrumented kernel →
    //    gate-level characterization → registry-dispatched solvers.
    let report = Experiment::new(spec).run()?;
    println!(
        "characterized {} on {}: tnom = {:.1} units, interval {:?}, theta_eq = {:.3e}",
        report.spec.benchmark,
        report.spec.stage,
        report.tnom_v1,
        report.intervals_used,
        report.theta_center,
    );

    // 3. The jointly optimal per-thread assignment, straight from the
    //    structured report.
    let cfg = SystemConfig::paper_default(report.tnom_v1);
    let synts = report.dataset("synts_poly").expect("in spec");
    let assignment = &synts.records[0].assignments.as_ref().expect("recorded")[0];
    println!("\n{} assignment:", synts.label);
    for (t, pt) in assignment.points.iter().enumerate() {
        println!(
            "  thread {t}: V = {}, r = {:.2}",
            cfg.voltages.levels()[pt.voltage_idx],
            cfg.tsr_levels[pt.tsr_idx]
        );
    }

    // 4. Compare the schemes — every record carries absolute and
    //    normalized energy/time, so rendering is a formatting exercise.
    println!();
    for ds in &report.datasets {
        let r = &ds.records[0];
        let n = r.normalized.expect("normalized report");
        println!(
            "{:>12}: time x{:.3}, energy x{:.3}, Eq-4.4 cost {:.3e}",
            ds.label,
            n.time,
            n.energy,
            r.ed.energy + r.theta * r.ed.time
        );
    }

    // 5. The engine's own invariants (exact-solver dominance, analytic
    //    model vs cycle-level Razor simulation) ride along in the report.
    println!();
    for check in &report.checks {
        println!(
            "[{}] {}",
            if check.pass { "PASS" } else { "FAIL" },
            check.claim
        );
    }

    // The whole report also serializes to canonical JSON:
    // `println!("{}", report.to_json_string());`
    Ok(())
}
