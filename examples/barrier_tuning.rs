//! Barrier-interval tuning across a whole benchmark: per-interval SynTS
//! assignments, validated against the cycle-level Razor simulator.
//!
//! Shows that the closed-form model (Eq 4.1–4.3) the optimizer works on
//! agrees with instruction-by-instruction execution with Razor replay —
//! the reason optimizing the model optimizes the machine.
//!
//! Run with: `cargo run --release --example barrier_tuning`

use synts::archsim::{simulate_barrier, CoreSetting, RazorCore};
use synts::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let harness = HarnessConfig::quick();
    let data = characterize(Benchmark::Cholesky, StageKind::SimpleAlu, &harness)?;
    let cfg = data.system_config();
    println!(
        "{} on {}: {} barrier intervals\n",
        data.benchmark,
        data.stage,
        data.intervals.len()
    );

    for (k, iv) in data.intervals.iter().enumerate() {
        let profiles = iv.profiles();
        let theta = theta_equal_weight(&cfg, &profiles)?;
        let assignment = synts_poly(&cfg, &profiles, theta)?;

        // Analytic prediction from Eq 4.1-4.3.
        let predicted = evaluate(&cfg, &profiles, &assignment);

        // Cycle-level execution: replay the actual delay traces through the
        // Razor cores at the chosen operating points.
        let settings: Vec<CoreSetting> = assignment
            .points
            .iter()
            .map(|p| CoreSetting {
                voltage: cfg.voltages.levels()[p.voltage_idx],
                tsr: cfg.tsr_levels[p.tsr_idx],
            })
            .collect();
        let traces: Vec<&[f64]> = iv
            .threads
            .iter()
            .map(|t| t.normalized_delays.as_slice())
            .collect();
        let cpi: Vec<f64> = iv.threads.iter().map(|t| t.cpi_base).collect();
        let sim = simulate_barrier(
            data.tnom_v1,
            &settings,
            &traces,
            &cpi,
            cfg.alpha,
            RazorCore {
                c_penalty: cfg.c_penalty as u64,
            },
        );

        // The simulator runs over the subsampled trace (N = trace length),
        // so compare per-instruction quantities.
        let n_model: f64 = profiles.iter().map(|p| p.instructions).sum();
        let n_sim: f64 = traces.iter().map(|t| t.len() as f64).sum();
        println!("interval {k}:");
        println!(
            "  assignment: {:?}",
            assignment
                .points
                .iter()
                .map(|p| format!(
                    "{:.2}V/r{:.2}",
                    cfg.voltages.levels()[p.voltage_idx].volts(),
                    cfg.tsr_levels[p.tsr_idx]
                ))
                .collect::<Vec<_>>()
        );
        println!(
            "  model:     time/instr = {:.3}, energy/instr = {:.4}",
            predicted.time / n_model * profiles.len() as f64,
            predicted.energy / n_model
        );
        println!(
            "  simulator: time/instr = {:.3}, energy/instr = {:.4}  (errors: {:?})",
            sim.texec / n_sim * traces.len() as f64,
            sim.energy / n_sim,
            sim.errors
        );
    }
    Ok(())
}
