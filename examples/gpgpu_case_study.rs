//! The GPGPU case study (paper Sec 3.2, 5.5): is per-lane timing
//! speculation tuning needed on a Radeon HD 7970-class SIMD unit?
//!
//! Runs the GPGPU kernels on the 16-lane SIMD model, prints each lane's
//! hamming-distance profile and the per-lane error curves, and reaches the
//! paper's conclusion: lanes are homogeneous, per-core TS suffices.
//!
//! Run with: `cargo run --release --example gpgpu_case_study`

use synts::gpgpu::{GpuKernel, SimdConfig, SimdUnit};
use synts::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let unit = SimdUnit::new(SimdConfig::hd7970());
    println!(
        "SIMD unit: {} VALU lanes, wavefront {}\n",
        unit.config().lanes,
        unit.config().wavefront
    );

    for kernel in GpuKernel::ALL {
        let run = unit.run(kernel, 8_192, 0xCA5E);
        let report = run.hamming_report();
        println!(
            "{kernel:>13}: min lane similarity {:.3}, mean hamming distance per lane: {:?}",
            report.min_similarity,
            report
                .mean_distances
                .iter()
                .take(6)
                .map(|d| format!("{d:.2}"))
                .collect::<Vec<_>>()
        );
    }

    // The stronger statement for one kernel: per-lane gate-level error
    // curves on the VALU datapath agree too.
    let run = unit.run(GpuKernel::MatrixMult, 2_048, 0xCA5E);
    let report = run.lane_error_report(300)?;
    println!(
        "\nmatrixmult per-lane error curves: max pairwise gap {:.3}",
        report.max_gap
    );
    for r in [0.7, 0.8, 0.9] {
        let errs: Vec<String> = report
            .curves
            .iter()
            .take(6)
            .map(|c| format!("{:.3}", c.err(r)))
            .collect();
        println!("  err({r:.1}) across lanes 0-5: {errs:?}");
    }
    println!(
        "\nconclusion: per-lane error probabilities are homogeneous — \
         per-core timing speculation suffices for this GPGPU (paper Sec 5.5)."
    );
    Ok(())
}
