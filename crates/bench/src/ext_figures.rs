//! Extension experiments beyond the paper's own tables and figures: the
//! ablations DESIGN.md calls out for the generalizations this repository
//! adds (process variation / aging, leakage-aware optimization, the
//! power-capped variant, thrifty-barrier comparison, and online `N_i`
//! prediction). Same [`Figure`] contract as [`crate::figures`]: a data
//! table, a CSV, and shape checks.

use circuits::{build_stage, AluEvent, AluOp, StageKind};
use gatelib::variation::{guard_band, AgingModel, VariationModel};
use gatelib::Voltage;
use synts_core::criticality::{run_sequence, NiPredictor, PredictorKind};
use synts_core::leakage::{evaluate_with_leakage, synts_poly_leakage, LeakageModel};
use synts_core::power_cap::synts_poly_power_capped;
use synts_core::thrifty::{thrifty_barrier, ThriftyConfig};
use synts_core::{
    evaluate, nominal, run_interval, synts_poly, OptError, SamplingPlan, SystemConfig,
    ThreadProfile,
};
use timing::{DieTiming, ErrorCurve, ErrorModel, StageCharacterizer};
use workloads::Benchmark;

use crate::corpus::Corpus;
use crate::figures::{Check, Figure};
use crate::render::{f, table};

/// The display label a registered solver declares for itself
/// ([`synts_core::Solver::label`]) — the single source figure rows quote.
fn solver_label(key: &str) -> &'static str {
    synts_core::solver::default_solver::<ErrorCurve>(key)
        .expect("default registry key")
        .label()
}

/// A deterministic mixed-op operand stream for the corpus-free ablations.
fn synthetic_events(seed: u64, n: usize) -> Vec<AluEvent> {
    let ops = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And, AluOp::Shl];
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let op = ops[(state >> 61) as usize % ops.len()];
            AluEvent::new(op, state & 0xFFFF, (state >> 13) & 0xFFFF)
        })
        .collect()
}

/// Ablation: worst-case guard band vs process-variation strength.
///
/// Sweeps the within-die/die-to-die sigmas and reports the guard band a
/// worst-case designer must add (Sec 1.1), plus the spread of the binned
/// dies' error probability at an aggressive ratio — the variation-robust
/// restatement of "critical-path delays are rarely manifested".
///
/// # Errors
///
/// Propagates netlist construction failures.
pub fn ablation_variation() -> Result<Figure, OptError> {
    let stage = build_stage(StageKind::SimpleAlu, 16).map_err(timing::TimingError::from)?;
    let netlist = stage.netlist().clone();
    let events = synthetic_events(0x5eed, 600);
    let sigmas = [0.00, 0.02, 0.05, 0.10, 0.15];
    let dies = 25u32;
    let mut rows = Vec::new();
    let mut bands = Vec::new();
    for &sigma in &sigmas {
        let model = VariationModel::new(sigma, sigma * 0.75).map_err(timing::TimingError::from)?;
        let gb = guard_band(&netlist, Voltage::NOMINAL, &model, dies, 0xD1E)
            .map_err(timing::TimingError::from)?;
        bands.push(gb);
        // Binned-die error at r = 0.8 across a few sampled dies.
        let mut err_lo = f64::INFINITY;
        let mut err_hi = 0.0f64;
        for k in 0..8u64 {
            let die = model.sample(netlist.cell_count(), 0xD1E + k);
            let stage_k =
                build_stage(StageKind::SimpleAlu, 16).map_err(timing::TimingError::from)?;
            let charac = StageCharacterizer::from_stage_on_die(stage_k, die, DieTiming::Binned)?;
            let curve = charac.error_curve(&events)?;
            let e = curve.err(0.8);
            err_lo = err_lo.min(e);
            err_hi = err_hi.max(e);
        }
        rows.push(vec![f(sigma, 2), f(gb, 4), f(err_lo, 4), f(err_hi, 4)]);
    }
    let header = ["sigma", "guard_band", "err08_min", "err08_max"];
    let monotone = bands.windows(2).all(|w| w[1] >= w[0] - 1e-12);
    let checks = vec![
        Check::new("guard band grows with variation strength", monotone),
        Check::new(
            "zero variation needs no guard band",
            (bands[0] - 1.0).abs() < 1e-9,
        ),
        Check::new(
            "strong variation demands >5% guard band",
            *bands.last().expect("non-empty") > 1.05,
        ),
    ];
    Ok(Figure {
        id: "ablation-variation",
        title: "Ablation: process variation vs worst-case guard band (SimpleALU)".into(),
        text: table(&header, &rows),
        csv: Some((header.to_vec(), rows)),
        checks,
    })
}

/// Ablation: NBTI aging vs error probability and the SynTS response.
///
/// Ages a SimpleALU die while keeping the fresh design's clock (the
/// "aging consumed the guard band" regime) and reports how the error
/// curve rises and how SynTS backs off its timing speculation.
///
/// # Errors
///
/// Propagates characterization/optimization failures.
pub fn ablation_aging() -> Result<Figure, OptError> {
    let aging = AgingModel::nbti_ptm22();
    let years_grid = [0.0, 3.0, 7.0, 10.0];
    let events: Vec<Vec<AluEvent>> = (0..4).map(|t| synthetic_events(0xA6E + t, 500)).collect();
    let fresh_stage = build_stage(StageKind::SimpleAlu, 16).map_err(timing::TimingError::from)?;
    let fresh_tnom = StageCharacterizer::from_stage(fresh_stage)?.tnom_v1();
    let cfg = SystemConfig::paper_default(fresh_tnom);
    let mut rows = Vec::new();
    let mut err09 = Vec::new();
    let mut min_tsr = Vec::new();
    for &years in &years_grid {
        let stage = build_stage(StageKind::SimpleAlu, 16).map_err(timing::TimingError::from)?;
        let factors = aging
            .factors(stage.netlist().cell_count(), years, None)
            .map_err(timing::TimingError::from)?;
        let charac =
            StageCharacterizer::from_stage_on_die(stage, factors, DieTiming::DesignNominal)?;
        let profiles: Vec<ThreadProfile<ErrorCurve>> = events
            .iter()
            .map(|ev| Ok(ThreadProfile::new(10_000.0, 1.0, charac.error_curve(ev)?)))
            .collect::<Result<_, OptError>>()?;
        let worst_err = profiles
            .iter()
            .map(|p| p.err.err(0.9))
            .fold(0.0f64, f64::max);
        err09.push(worst_err);
        let a = synts_poly(&cfg, &profiles, 1.0)?;
        let tsr = a.points.iter().map(|p| p.tsr_idx).min().expect("non-empty");
        min_tsr.push(tsr);
        let ed = evaluate(&cfg, &profiles, &a);
        rows.push(vec![
            f(years, 1),
            f(1.0 + aging.degradation(years), 4),
            f(worst_err, 4),
            tsr.to_string(),
            f(ed.edp(), 3),
        ]);
    }
    let header = [
        "years",
        "delay_factor",
        "worst_err_r09",
        "min_tsr_idx",
        "edp",
    ];
    let checks = vec![
        Check::new(
            "error probability at r = 0.9 never falls as the die ages",
            err09.windows(2).all(|w| w[1] >= w[0] - 1e-12),
        ),
        Check::new(
            "SynTS backs off speculation on aged dies (min TSR index non-decreasing)",
            min_tsr.windows(2).all(|w| w[1] >= w[0]),
        ),
    ];
    Ok(Figure {
        id: "ablation-aging",
        title: "Ablation: NBTI aging vs err(r) and the SynTS operating point".into(),
        text: table(&header, &rows),
        csv: Some((header.to_vec(), rows)),
        checks,
    })
}

/// Ablation: leakage-aware SynTS vs leakage-blind SynTS vs the thrifty
/// barrier vs Nominal, all charged under the leakage-extended energy model
/// (30% leakage share, V³ scaling).
///
/// # Errors
///
/// Propagates optimization failures; requires FMM/SimpleALU in the corpus.
pub fn ablation_leakage(corpus: &Corpus) -> Result<Figure, OptError> {
    let data = corpus
        .get(Benchmark::Fmm, StageKind::SimpleAlu)
        .ok_or(OptError::BadConfig("corpus lacks FMM/SimpleALU"))?;
    let cfg = data.system_config();
    let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3)?;
    let mut totals = [0.0f64; 8]; // (energy, time) × 4 schemes
                                  // Weighted-cost sums for aware vs blind — the quantity the aware
                                  // solver provably optimizes (EDP, a product of sums, is reported but
                                  // not guaranteed per interval).
    let mut cost_aware = 0.0f64;
    let mut cost_blind = 0.0f64;
    for iv in &data.intervals {
        let profiles = iv.profiles();
        let theta = synts_core::theta_equal_weight(&cfg, &profiles)?;
        // Leakage-aware SynTS.
        let aware = synts_poly_leakage(&cfg, &profiles, theta, &leak)?;
        let ed = evaluate_with_leakage(&cfg, &profiles, &aware, &leak);
        totals[0] += ed.energy;
        totals[1] += ed.time;
        cost_aware += ed.energy + theta * ed.time;
        // Leakage-blind SynTS (optimizes Eq 4.4, charged with leakage).
        let blind = synts_poly(&cfg, &profiles, theta)?;
        let ed = evaluate_with_leakage(&cfg, &profiles, &blind, &leak);
        totals[2] += ed.energy;
        totals[3] += ed.time;
        cost_blind += ed.energy + theta * ed.time;
        // Thrifty barrier.
        let thrifty = thrifty_barrier(&cfg, &profiles, &leak, &ThriftyConfig::classic())?;
        totals[4] += thrifty.total.energy;
        totals[5] += thrifty.total.time;
        // Nominal, idling at full leakage.
        let nom = nominal(&cfg, &profiles)?;
        let ed = evaluate_with_leakage(&cfg, &profiles, &nom, &leak);
        totals[6] += ed.energy;
        totals[7] += ed.time;
    }
    let edp = |i: usize| totals[2 * i] * totals[2 * i + 1];
    let nominal_edp = edp(3);
    // Row labels come from the registered solvers' `label()`, so this
    // figure can't drift from the names `figures.rs` prints; only the
    // leakage-blind variant (deliberately the plain Eq-4.4 solver charged
    // under the leakage model) derives its label.
    let names = [
        solver_label("synts_leakage").to_string(),
        format!("{} (leakage-blind)", solver_label("synts_poly")),
        solver_label("thrifty").to_string(),
        solver_label("nominal").to_string(),
    ];
    let rows: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                name.clone(),
                f(totals[2 * i], 1),
                f(totals[2 * i + 1], 1),
                f(edp(i) / nominal_edp, 4),
            ]
        })
        .collect();
    let header = ["scheme", "energy", "time", "edp_vs_nominal"];
    let checks = vec![
        Check::new(
            "leakage-aware SynTS never costs more than leakage-blind SynTS",
            cost_aware <= cost_blind * (1.0 + 1e-9),
        ),
        Check::new(
            "leakage-aware SynTS beats the thrifty barrier",
            edp(0) < edp(2),
        ),
        Check::new("the thrifty barrier beats Nominal", edp(2) < edp(3)),
    ];
    Ok(Figure {
        id: "ablation-leakage",
        title: "Ablation: leakage-extended model — SynTS vs thrifty barrier (FMM, SimpleALU)"
            .into(),
        text: table(&header, &rows),
        csv: Some((header.to_vec(), rows)),
        checks,
    })
}

/// Ablation: the power-capped variant — barrier time vs average-power cap.
///
/// # Errors
///
/// Propagates optimization failures; requires FMM/SimpleALU in the corpus.
pub fn ablation_power_cap(corpus: &Corpus) -> Result<Figure, OptError> {
    let data = corpus
        .get(Benchmark::Fmm, StageKind::SimpleAlu)
        .ok_or(OptError::BadConfig("corpus lacks FMM/SimpleALU"))?;
    let cfg = data.system_config();
    let iv = &data.intervals[0];
    let profiles = iv.profiles();
    let nom = nominal(&cfg, &profiles)?;
    let ed_nom = evaluate(&cfg, &profiles, &nom);
    let p_nom = ed_nom.energy / ed_nom.time;
    let scales = [0.6, 0.8, 1.0, 1.3, 1.7, 2.5];
    let mut rows = Vec::new();
    let mut times = Vec::new();
    for &s in &scales {
        match synts_poly_power_capped(&cfg, &profiles, p_nom * s) {
            Ok(sol) => {
                times.push(sol.time);
                rows.push(vec![
                    f(s, 2),
                    f(sol.time / ed_nom.time, 4),
                    f(sol.avg_power / p_nom, 4),
                ]);
            }
            Err(OptError::Infeasible) => {
                rows.push(vec![f(s, 2), "infeasible".into(), "-".into()]);
            }
            Err(e) => return Err(e),
        }
    }
    let header = [
        "cap_vs_nominal_power",
        "time_vs_nominal",
        "power_vs_nominal",
    ];
    let checks = vec![
        Check::new(
            "loosening the cap never slows the barrier",
            times.windows(2).all(|w| w[1] <= w[0] * (1.0 + 1e-12)),
        ),
        Check::new(
            "a generous cap lets timing speculation beat the nominal time",
            times.last().is_some_and(|&t| t < ed_nom.time),
        ),
    ];
    Ok(Figure {
        id: "ablation-power-cap",
        title: "Ablation: power-capped SynTS — time vs average-power budget (FMM, SimpleALU)"
            .into(),
        text: table(&header, &rows),
        csv: Some((header.to_vec(), rows)),
        checks,
    })
}

/// Ablation: online `N_i` prediction vs the oracle assumption of Sec 6.2.
///
/// Drives the full online controller over every barrier interval of Radix
/// with history-based `N_i` predictors and compares the end-to-end EDP
/// against the oracle-`N_i` controller.
///
/// # Errors
///
/// Propagates controller failures; requires Radix/SimpleALU with at least
/// two intervals in the corpus.
pub fn ablation_predictor(corpus: &Corpus) -> Result<Figure, OptError> {
    let data = corpus
        .get(Benchmark::Radix, StageKind::SimpleAlu)
        .ok_or(OptError::BadConfig("corpus lacks Radix/SimpleALU"))?;
    let cfg = data.system_config();
    if data.intervals.len() < 2 {
        return Err(OptError::BadConfig(
            "predictor ablation needs >= 2 intervals",
        ));
    }
    let intervals: Vec<Vec<synts_core::ThreadTrace>> = data
        .intervals
        .iter()
        .map(synts_core::experiments::IntervalData::thread_traces)
        .collect();
    let threads = intervals[0].len();
    let mean_len = intervals[0]
        .iter()
        .map(|t| t.normalized_delays.len())
        .sum::<usize>()
        / threads.max(1);
    let plan = SamplingPlan::paper_default(mean_len.max(cfg.s() * 10), cfg.s());
    let theta = {
        let profiles = data.intervals[0].profiles();
        synts_core::theta_equal_weight(&cfg, &profiles)?
    };
    // Oracle: per-interval controller with trace-derived Ni.
    let mut oracle_energy = 0.0;
    let mut oracle_time = 0.0;
    for traces in &intervals {
        let out = run_interval(&cfg, traces, theta, plan)?;
        oracle_energy += out.total.energy;
        oracle_time += out.total.time;
    }
    let oracle_edp = oracle_energy * oracle_time;
    let kinds = [
        ("last-value", PredictorKind::LastValue),
        ("ewma-0.5", PredictorKind::Ewma(0.5)),
        ("window-2", PredictorKind::WindowMean(2)),
    ];
    let mut rows = vec![vec!["oracle".to_string(), f(1.0, 4), "-".to_string()]];
    let mut ratios = Vec::new();
    for (name, kind) in kinds {
        let mut predictor = NiPredictor::new(threads, kind)?;
        let seq = run_sequence(&cfg, &intervals, theta, plan, &mut predictor)?;
        let ratio = seq.total.edp() / oracle_edp;
        ratios.push(ratio);
        rows.push(vec![
            name.to_string(),
            f(ratio, 4),
            f(seq.prediction.mean_mape(), 4),
        ]);
    }
    let header = ["ni_source", "edp_vs_oracle", "mean_mape"];
    let worst = ratios.iter().copied().fold(0.0f64, f64::max);
    let checks = vec![Check::new(
        "history-predicted Ni stays within 25% EDP of the oracle",
        worst < 1.25,
    )];
    Ok(Figure {
        id: "ablation-predictor",
        title: "Ablation: online Ni prediction vs the Sec 6.2 oracle (Radix, SimpleALU)".into(),
        text: table(&header, &rows),
        csv: Some((header.to_vec(), rows)),
        checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Effort;

    #[test]
    fn variation_ablation_passes_checks() {
        let fig = ablation_variation().expect("generates");
        assert!(fig.checks.iter().all(|c| c.pass), "{:?}", fig.checks);
        assert!(fig.csv.is_some());
    }

    #[test]
    fn aging_ablation_passes_checks() {
        let fig = ablation_aging().expect("generates");
        assert!(fig.checks.iter().all(|c| c.pass), "{:?}", fig.checks);
    }

    #[test]
    fn corpus_backed_ablations_pass_checks() {
        let corpus = Corpus::build_subset(
            Effort::Quick,
            &[Benchmark::Fmm, Benchmark::Radix],
            &[StageKind::SimpleAlu],
        )
        .expect("builds");
        for fig in [
            ablation_leakage(&corpus).expect("leakage"),
            ablation_power_cap(&corpus).expect("power cap"),
            ablation_predictor(&corpus).expect("predictor"),
        ] {
            assert!(
                fig.checks.iter().all(|c| c.pass),
                "{}: {:?}",
                fig.id,
                fig.checks
            );
        }
    }
}
