//! One generator per paper artifact. Each returns a [`Figure`]: rendered
//! text, optional CSV rows, and the *shape checks* — the qualitative claims
//! of the paper that the reproduction is expected to reproduce (who wins,
//! by roughly what factor, where the structure lies).

use std::sync::{Arc, OnceLock};

use circuits::{AdderKind, SimpleAlu, StageKind};
use gpgpu::{GpuKernel, SimdConfig, SimdUnit};
use synts_core::experiments::BenchmarkData;
use synts_core::{
    estimate_overhead_defaults, run_interval, run_interval_offline, Experiment, OptError,
    SamplingPlan, ScenarioSpec, Solver, SolverRegistry, ThreadPool, ThreadProfile,
};
use timing::{EnergyDelay, ErrorCurve, ErrorModel, StageCharacterizer, VOLTAGE_TABLE_POINTS};
use workloads::Benchmark;

use crate::corpus::Corpus;
use crate::render::{f, report_rows, table};

/// The shared solver registry every figure dispatches through.
fn registry() -> &'static SolverRegistry {
    static REGISTRY: OnceLock<SolverRegistry> = OnceLock::new();
    REGISTRY.get_or_init(SolverRegistry::with_defaults)
}

/// Resolves a registry key to its solver; figure labels come from
/// [`Solver::label`], so tables and CSVs can never drift from the names
/// the solvers declare.
fn solver_for(key: &str) -> Arc<dyn Solver<ErrorCurve>> {
    registry().get(key).expect("default registry key")
}

/// One qualitative claim and whether the reproduction satisfies it.
#[derive(Debug, Clone)]
pub struct Check {
    /// The claim, phrased as in the paper.
    pub claim: String,
    /// Whether the measured data satisfies it.
    pub pass: bool,
}

impl Check {
    /// Creates a check from a claim and its measured outcome.
    pub fn new(claim: impl Into<String>, pass: bool) -> Check {
        Check {
            claim: claim.into(),
            pass,
        }
    }
}

/// A regenerated table or figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Stable identifier (e.g. `fig-6-11`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Rendered text body.
    pub text: String,
    /// CSV payload (header, rows) for `results/<id>.csv`.
    pub csv: Option<(Vec<&'static str>, Vec<Vec<String>>)>,
    /// Shape checks against the paper's claims.
    pub checks: Vec<Check>,
}

fn missing(bench: Benchmark, stage: StageKind) -> OptError {
    // Corpus misses manifest as empty trace errors upstream; use BadConfig
    // to make the message actionable.
    let _ = (bench, stage);
    OptError::BadConfig("corpus does not contain the requested benchmark/stage")
}

fn corpus_data(
    corpus: &Corpus,
    bench: Benchmark,
    stage: StageKind,
) -> Result<&BenchmarkData, OptError> {
    corpus
        .get(bench, stage)
        .ok_or_else(|| missing(bench, stage))
}

/// Profiles over the subsampled trace population (N = trace length), the
/// common basis for every Fig 6.18 bar.
fn trace_profiles(
    iv: &synts_core::experiments::IntervalData,
) -> Result<Vec<ThreadProfile<ErrorCurve>>, OptError> {
    iv.thread_traces()
        .iter()
        .map(|tr| {
            Ok(ThreadProfile::new(
                tr.normalized_delays.len() as f64,
                tr.cpi_base,
                tr.exact_curve()?,
            ))
        })
        .collect()
}

/// Table 5.1: voltage vs nominal clock period, via a ring oscillator built
/// from the cell library.
///
/// # Errors
///
/// Propagates netlist construction failures.
pub fn table_5_1() -> Result<Figure, OptError> {
    use gatelib::{CellKind, NetlistBuilder, StaticTiming, Voltage};
    // A 31-stage inverter chain stands in for the ring oscillator (the
    // period ratio is what matters and is length-invariant).
    let mut b = NetlistBuilder::new("ring31");
    let start = b.input("in");
    let mut n = start;
    for _ in 0..31 {
        n = b
            .cell(CellKind::Inv, &[n])
            .map_err(timing::TimingError::from)?;
    }
    b.output(n, "out");
    let ring = b.finish().map_err(timing::TimingError::from)?;
    let base = StaticTiming::analyze(&ring, Voltage::NOMINAL)
        .map_err(timing::TimingError::from)?
        .nominal_period();

    let mut rows = Vec::new();
    let mut checks = Vec::new();
    for &(v, published) in &VOLTAGE_TABLE_POINTS {
        let volt = Voltage::new(v).map_err(timing::TimingError::from)?;
        let period = StaticTiming::analyze(&ring, volt)
            .map_err(timing::TimingError::from)?
            .nominal_period();
        let measured = period / base;
        rows.push(vec![f(v, 2), f(published, 2), f(measured, 4)]);
        checks.push(Check::new(
            format!("ring oscillator at {v:.2} V reproduces multiplier {published}"),
            (measured - published).abs() < 1e-9,
        ));
    }
    let text = table(&["Vdd (V)", "paper tnom (x)", "measured tnom (x)"], &rows);
    Ok(Figure {
        id: "table-5-1",
        title: "Table 5.1: Voltage versus nominal clock period".into(),
        text,
        csv: Some((vec!["vdd", "paper", "measured"], rows)),
        checks,
    })
}

/// Fig 1.2: performance vs speculative clock for one thread — the interior
/// optimum f_s.
///
/// # Errors
///
/// Propagates [`OptError`] from the corpus.
pub fn fig_1_2(corpus: &Corpus) -> Result<Figure, OptError> {
    let data = corpus_data(corpus, Benchmark::Fmm, StageKind::SimpleAlu)?;
    let td = &data.intervals[0].threads[0];
    let c_pen = 5.0;
    let mut rows = Vec::new();
    let mut best = (1.0f64, 0.0f64); // (r, perf)
    let nominal_spi = 1.0 * (td.cpi_base);
    for i in 0..=60 {
        let r = 0.40 + 0.01 * i as f64;
        let p = td.curve.err(r);
        let spi = r * (p * c_pen + td.cpi_base);
        let perf = nominal_spi / spi;
        if perf > best.1 {
            best = (r, perf);
        }
        rows.push(vec![f(r, 2), f(p, 4), f(perf, 4)]);
    }
    let perf_at_min = {
        let r = 0.40;
        let p = td.curve.err(r);
        nominal_spi / (r * (p * c_pen + td.cpi_base))
    };
    let checks = vec![
        Check::new(
            "an optimal speculative clock f_s exists below f_0",
            best.0 < 1.0,
        ),
        Check::new(
            "clocking past f_s degrades performance (recovery dominates)",
            best.1 > perf_at_min,
        ),
        Check::new("speculation at f_s beats nominal", best.1 > 1.0),
    ];
    let mut text = table(&["r", "err(r)", "perf (x nominal)"], &rows);
    text.push_str(&format!(
        "\noptimum: r = {:.2}, perf = {:.3}x\n",
        best.0, best.1
    ));
    Ok(Figure {
        id: "fig-1-2",
        title: "Fig 1.2: Timing speculation vs error probability trade-off".into(),
        text,
        csv: Some((vec!["r", "err", "perf"], rows)),
        checks,
    })
}

/// Fig 3.5: per-thread error probability vs normalized clock period for one
/// Radix barrier interval.
///
/// # Errors
///
/// Propagates [`OptError`] from the corpus.
pub fn fig_3_5(corpus: &Corpus) -> Result<Figure, OptError> {
    let data = corpus_data(corpus, Benchmark::Radix, StageKind::Decode)?;
    let iv = &data.intervals[data.most_heterogeneous_interval()];
    let grid: Vec<f64> = (0..=9).map(|i| 0.60 + 0.045 * i as f64).collect();
    let mut rows = Vec::new();
    for &r in &grid {
        let mut row = vec![f(r, 3)];
        for t in &iv.threads {
            row.push(f(t.curve.err(r), 4));
        }
        rows.push(row);
    }
    // Heterogeneity factor at the most aggressive grid point with activity.
    let mut factor: f64 = 1.0;
    for &r in &grid {
        let errs: Vec<f64> = iv.threads.iter().map(|t| t.curve.err(r)).collect();
        let max = errs.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = errs.iter().copied().fold(f64::INFINITY, f64::min);
        if min > 1e-6 {
            factor = factor.max(max / min);
        }
    }
    let t0_critical = {
        let r = 0.64;
        iv.threads
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.curve
                    .err(r)
                    .partial_cmp(&b.1.curve.err(r))
                    .expect("finite")
            })
            .map(|(i, _)| i)
            == Some(0)
    };
    let checks = vec![
        Check::new(
            format!("thread error curves are heterogeneous (worst/best = {factor:.1}x, paper ~4x)"),
            factor > 2.0,
        ),
        Check::new(
            "thread 0 consistently has the highest error probability",
            t0_critical,
        ),
        Check::new(
            "error probability decreases with the clock period",
            iv.threads
                .iter()
                .all(|t| t.curve.err(0.64) >= t.curve.err(0.9)),
        ),
    ];
    let header = ["r", "T0", "T1", "T2", "T3"];
    let text = table(&header, &rows);
    Ok(Figure {
        id: "fig-3-5",
        title: "Fig 3.5: Timing error probability per thread, Radix (Decode)".into(),
        text,
        csv: Some((vec!["r", "t0", "t1", "t2", "t3"], rows)),
        checks,
    })
}

/// Fig 3.6: the two-step motivational example on the Fig 3.5 curves.
///
/// # Errors
///
/// Propagates [`OptError`] from the corpus.
pub fn fig_3_6(corpus: &Corpus) -> Result<Figure, OptError> {
    let data = corpus_data(corpus, Benchmark::Radix, StageKind::Decode)?;
    let cfg = data.system_config();
    let iv = &data.intervals[data.most_heterogeneous_interval()];
    let profiles = iv.profiles();
    let m = profiles.len();

    let time_at = |p: &ThreadProfile<ErrorCurve>, vj: usize, rk: usize| {
        synts_core::thread_time(
            &cfg,
            p,
            synts_core::OperatingPoint {
                voltage_idx: vj,
                tsr_idx: rk,
            },
        )
    };
    let energy_at = |p: &ThreadProfile<ErrorCurve>, vj: usize, rk: usize| {
        synts_core::thread_energy(
            &cfg,
            p,
            synts_core::OperatingPoint {
                voltage_idx: vj,
                tsr_idx: rk,
            },
        )
    };

    // (a) Nominal: V = 1.0, r = 1 for everyone.
    let r1 = cfg.s() - 1;
    let nominal_times: Vec<f64> = profiles.iter().map(|p| time_at(p, 0, r1)).collect();
    let nominal_energy: f64 = profiles.iter().map(|p| energy_at(p, 0, r1)).sum();
    let nominal_texec = nominal_times.iter().copied().fold(0.0f64, f64::max);

    // (b) Step 1: one common speculative clock for all threads at V = 1 —
    // the r that minimizes the barrier time.
    let mut best_k = r1;
    let mut best_texec = nominal_texec;
    for k in 0..cfg.s() {
        let texec = profiles
            .iter()
            .map(|p| time_at(p, 0, k))
            .fold(0.0f64, f64::max);
        if texec < best_texec {
            best_texec = texec;
            best_k = k;
        }
    }
    let step1_times: Vec<f64> = profiles.iter().map(|p| time_at(p, 0, best_k)).collect();
    let step1_texec = best_texec;
    let critical = step1_times
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty")
        .0;

    // (c) Step 2: non-critical threads drop to their cheapest (V, r) that
    // still meets the step-1 barrier time.
    let mut step2_energy = 0.0;
    let mut step2_points: Vec<(usize, usize)> = Vec::new();
    for (i, p) in profiles.iter().enumerate() {
        if i == critical {
            step2_energy += energy_at(p, 0, best_k);
            step2_points.push((0, best_k));
            continue;
        }
        let mut best_e = energy_at(p, 0, best_k);
        let mut best_pt = (0usize, best_k);
        for vj in 0..cfg.q() {
            for rk in 0..cfg.s() {
                if time_at(p, vj, rk) <= step1_texec * (1.0 + 1e-12) {
                    let e = energy_at(p, vj, rk);
                    if e < best_e {
                        best_e = e;
                        best_pt = (vj, rk);
                    }
                }
            }
        }
        step2_energy += best_e;
        step2_points.push(best_pt);
    }

    let dt = 100.0 * (1.0 - step1_texec / nominal_texec);
    let de = 100.0 * (1.0 - step2_energy / nominal_energy);
    let mut rows = Vec::new();
    for i in 0..m {
        let (vj, rk) = step2_points[i];
        rows.push(vec![
            format!("T{i}"),
            f(nominal_times[i] / nominal_texec, 3),
            f(step1_times[i] / nominal_texec, 3),
            format!(
                "{:.2}V/r={:.2}",
                cfg.voltages.levels()[vj].volts(),
                cfg.tsr_levels[rk]
            ),
        ]);
    }
    let mut text = table(&["thread", "t nominal", "t step-1", "step-2 point"], &rows);
    text.push_str(&format!(
        "\nstep 1 (common r = {:.2}): execution time -{dt:.1}% vs nominal\n\
         step 2 (per-thread V): energy -{de:.1}% vs nominal\n",
        cfg.tsr_levels[best_k]
    ));
    let checks = vec![
        Check::new("step 1 speculation shortens the barrier interval", dt > 0.0),
        Check::new(
            "step 2 voltage scaling cuts energy without hurting time",
            de > 0.0,
        ),
        Check::new(
            "slack exists: some non-critical thread runs below nominal voltage",
            step2_points
                .iter()
                .enumerate()
                .any(|(i, &(vj, _))| i != critical && vj > 0),
        ),
    ];
    Ok(Figure {
        id: "fig-3-6",
        title:
            "Fig 3.6: SynTS motivational example (frequency up-scaling, then voltage down-scaling)"
                .into(),
        text,
        csv: None,
        checks,
    })
}

/// Fig 5.10: hamming-distance bar graphs for the vector ALUs of one SIMD
/// unit.
///
/// # Errors
///
/// Propagates [`timing::TimingError`] if lane characterization fails.
pub fn fig_5_10() -> Result<Figure, OptError> {
    let unit = SimdUnit::new(SimdConfig::hd7970());
    let mut rows = Vec::new();
    let mut checks = Vec::new();
    let mut worst = 1.0f64;
    for kernel in GpuKernel::ALL {
        let run = unit.run(kernel, 16_384, 0x5710);
        let report = run.hamming_report();
        worst = worst.min(report.min_similarity);
        let mut row = vec![kernel.to_string(), f(report.min_similarity, 3)];
        for lane in 0..6 {
            row.push(f(report.mean_distances[lane], 2));
        }
        rows.push(row);
        checks.push(Check::new(
            format!("{kernel}: 16 VALUs have qualitatively similar hamming histograms"),
            report.min_similarity > 0.85,
        ));
    }
    checks.push(Check::new(
        "homogeneity holds for every kernel (per-core TS suffices on this GPGPU)",
        worst > 0.85,
    ));
    let text = table(
        &[
            "kernel", "min-sim", "VALU0", "VALU1", "VALU2", "VALU3", "VALU4", "VALU5",
        ],
        &rows,
    );
    Ok(Figure {
        id: "fig-5-10",
        title: "Fig 5.10: Hamming-distance profiles of the vector ALUs (HD 7970 SIMD unit)".into(),
        text,
        csv: Some((
            vec![
                "kernel",
                "min_similarity",
                "v0",
                "v1",
                "v2",
                "v3",
                "v4",
                "v5",
            ],
            rows,
        )),
        checks,
    })
}

/// The committed scenario specs behind the Pareto figures
/// (Figs 6.11–6.16) — each figure *is* its spec file; `synts-cli run
/// crates/bench/specs/<id>.json` executes the identical scenario from
/// disk.
pub const PARETO_SPECS: &[(&str, &str)] = &[
    ("fig-6-11", include_str!("../specs/fig-6-11.json")),
    ("fig-6-12", include_str!("../specs/fig-6-12.json")),
    ("fig-6-13", include_str!("../specs/fig-6-13.json")),
    ("fig-6-14", include_str!("../specs/fig-6-14.json")),
    ("fig-6-15", include_str!("../specs/fig-6-15.json")),
    ("fig-6-16", include_str!("../specs/fig-6-16.json")),
];

/// Parses the committed spec of one Pareto figure.
///
/// # Errors
///
/// [`OptError::Spec`] for unknown ids or malformed committed specs.
pub fn pareto_spec(id: &str) -> Result<ScenarioSpec, OptError> {
    let (_, src) = PARETO_SPECS
        .iter()
        .find(|(k, _)| *k == id)
        .ok_or_else(|| OptError::Spec(format!("no committed spec for figure '{id}'")))?;
    ScenarioSpec::from_json_str(src)
}

/// One Pareto figure (Figs 6.11–6.16): energy vs execution time for SynTS,
/// Per-core TS and No-TS, normalized to Nominal. The data comes entirely
/// from the committed [`ScenarioSpec`] run through [`Experiment::run_on`];
/// this function is only the renderer over the structured
/// [`synts_core::Report`].
///
/// # Errors
///
/// Propagates [`OptError`] from the scenario runner.
pub fn fig_pareto(
    corpus: &Corpus,
    id: &'static str,
    figure_no: &str,
    bench: Benchmark,
    stage: StageKind,
) -> Result<Figure, OptError> {
    let spec = pareto_spec(id)?;
    if spec.benchmark != bench || spec.stage != stage {
        return Err(OptError::BadConfig(
            "committed figure spec disagrees with the repro target's benchmark/stage",
        ));
    }
    let data = corpus_data(corpus, bench, stage)?;
    let report = Experiment::new(spec).run_on(data)?;

    // Render the report: rows are (label, theta/eq, normalized axes).
    // The committed spec is hand-editable data, so a spec that dropped
    // the normalization or a scheme surfaces as an error, not a panic.
    let (_, rows) = report_rows(&report);
    let nominal = report.baseline.ok_or(OptError::BadConfig(
        "a Pareto figure spec must set normalize_to",
    ))?;

    // Shape checks over the report data. SynTS optimizes Eq 4.4 exactly,
    // so at every theta its weighted cost lower-bounds each baseline's
    // (the pointwise-dominance picture of the paper's figures, stated in
    // its provable form).
    let normalized = |key: &str| -> Result<Vec<EnergyDelay>, OptError> {
        report
            .dataset(key)
            .ok_or(OptError::BadConfig(
                "a Pareto figure spec must keep the synts_poly/per_core_ts/no_ts schemes",
            ))?
            .records
            .iter()
            .map(|r| {
                r.normalized.ok_or(OptError::BadConfig(
                    "a Pareto figure spec must normalize its records",
                ))
            })
            .collect()
    };
    let synts = normalized("synts_poly")?;
    let percore = normalized("per_core_ts")?;
    let nots = normalized("no_ts")?;
    let theta_dominant = report.theta_grid.iter().enumerate().all(|(i, &theta)| {
        // De-normalize to absolute units before applying Eq 4.4.
        let cost = |p: &EnergyDelay| p.energy * nominal.energy + theta * p.time * nominal.time;
        cost(&synts[i]) <= cost(&percore[i]) * (1.0 + 1e-9)
            && cost(&synts[i]) <= cost(&nots[i]) * (1.0 + 1e-9)
    });
    let fastest_synts = synts.iter().map(|p| p.time).fold(f64::INFINITY, f64::min);
    let fastest_nots = nots.iter().map(|p| p.time).fold(f64::INFINITY, f64::min);
    let min_energy_synts = synts.iter().map(|p| p.energy).fold(f64::INFINITY, f64::min);
    let checks = vec![
        Check::new(
            "SynTS's weighted cost lower-bounds Per-core TS and No-TS at every theta",
            theta_dominant,
        ),
        Check::new(
            "timing speculation reaches shorter execution times than No-TS",
            fastest_synts < fastest_nots - 1e-9,
        ),
        Check::new(
            "voltage scaling reaches well below nominal energy",
            min_energy_synts < 0.9,
        ),
    ];
    let text = table(
        &["scheme", "theta/eq", "time (norm)", "energy (norm)"],
        &rows,
    );
    Ok(Figure {
        id,
        title: format!("Fig {figure_no}: Energy vs execution time, {bench} ({stage})"),
        text,
        csv: Some((vec!["scheme", "theta", "time", "energy"], rows)),
        checks,
    })
}

/// Fig 6.17: actual vs online-estimated error probability, Radix and FMM.
///
/// # Errors
///
/// Propagates [`OptError`] from estimation.
pub fn fig_6_17(corpus: &Corpus) -> Result<Figure, OptError> {
    let mut rows = Vec::new();
    let mut checks = Vec::new();
    for bench in [Benchmark::Radix, Benchmark::Fmm] {
        let data = corpus_data(corpus, bench, StageKind::SimpleAlu)?;
        let cfg = data.system_config();
        let iv = &data.intervals[data.most_heterogeneous_interval()];
        let traces = iv.thread_traces();
        let longest = traces
            .iter()
            .map(|t| t.normalized_delays.len())
            .max()
            .unwrap_or(0);
        let plan = SamplingPlan::paper_default(longest, cfg.s());
        // Binomial sampling noise per level: sigma <= sqrt(0.25 / n).
        let n_per_level = (plan.n_samp / cfg.s()).max(1) as f64;
        let sigma = (0.25 / n_per_level).sqrt();
        let gap_budget = (3.0 * sigma).max(0.05);
        let mut max_gap = 0.0f64;
        let mut critical_match = true;
        for &r in &cfg.tsr_levels {
            let mut ranked: Vec<(usize, f64, f64)> = Vec::new(); // (tid, actual, est)
            for (t, tr) in traces.iter().enumerate() {
                let est = synts_core::online::estimate_curve(&cfg, &tr.normalized_delays, plan)?;
                let actual = tr.exact_curve()?;
                let (ea, ee) = (actual.err(r), est.err(r));
                max_gap = max_gap.max((ea - ee).abs());
                ranked.push((t, ea, ee));
                rows.push(vec![
                    bench.to_string(),
                    format!("T{t}"),
                    f(r, 3),
                    f(ea, 4),
                    f(ee, 4),
                ]);
            }
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            let (crit_tid, crit_err, _) = ranked[0];
            let runner_up = ranked.get(1).map(|x| x.1).unwrap_or(0.0);
            // Only demand identification when the criticality signal rises
            // above sampling noise (the paper's intervals are 25x longer).
            if crit_err - runner_up > 2.0 * sigma {
                let est_top = ranked
                    .iter()
                    .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
                    .expect("non-empty")
                    .0;
                if est_top != crit_tid {
                    critical_match = false;
                }
            }
        }
        checks.push(Check::new(
            format!(
                "{bench}: estimates track the actual error probabilities                  (max gap {max_gap:.3}, noise budget {gap_budget:.3})"
            ),
            max_gap < gap_budget,
        ));
        checks.push(Check::new(
            format!(
                "{bench}: the speculation-critical thread is identified whenever distinguishable"
            ),
            critical_match,
        ));
    }
    let text = table(&["benchmark", "thread", "r", "actual", "estimated"], &rows);
    Ok(Figure {
        id: "fig-6-17",
        title: "Fig 6.17: Actual vs online-estimated error probability (Radix, FMM)".into(),
        text,
        csv: Some((
            vec!["benchmark", "thread", "r", "actual", "estimated"],
            rows,
        )),
        checks,
    })
}

/// Fig 6.18: EDP of SynTS(online), No-TS and Nominal across the seven
/// benchmarks and three stages, normalized to SynTS(offline).
///
/// # Errors
///
/// Propagates [`OptError`] from the pipeline.
pub fn fig_6_18(corpus: &Corpus) -> Result<Figure, OptError> {
    let mut rows = Vec::new();
    let mut checks = Vec::new();
    let mut overheads = Vec::new();
    let mut wins_count = 0usize;
    let mut total_count = 0usize;
    let mut sums = (0.0f64, 0.0f64, 0.0f64); // online, no-ts, nominal
    for stage in StageKind::ALL {
        for bench in Benchmark::REPORTED {
            let Some(data) = corpus.get(bench, stage) else {
                continue;
            };
            // Every scheme is evaluated over the same (subsampled)
            // instruction population so the normalization is consistent.
            let cfg = data.system_config();
            let mut nominal_ed = EnergyDelay::new(0.0, 0.0);
            let mut nots_ed = EnergyDelay::new(0.0, 0.0);
            let mut offline_ed = EnergyDelay::new(0.0, 0.0);
            let mut online_ed = EnergyDelay::new(0.0, 0.0);
            // Re-characterize each interval exactly once (profiles and
            // traces come off the batched characterization products) and
            // share the result between the equal-weight θ derivation and
            // all four schemes — intervals fan out across the pool.
            let prepared = ThreadPool::from_env().try_map(&data.intervals, |_, iv| {
                let profiles = trace_profiles(iv)?;
                let (_, ed) = solver_for("nominal").solve_evaluated(&cfg, &profiles, 1.0)?;
                Ok::<_, OptError>((profiles, iv.thread_traces(), ed))
            })?;
            // Equal-weight theta over the trace population.
            let mut theta_en = 0.0;
            let mut theta_t = 0.0;
            for (_, _, ed) in &prepared {
                theta_en += ed.energy;
                theta_t += ed.time;
            }
            if theta_t <= 0.0 {
                // The stage saw no activity for this benchmark (e.g. the
                // multiply-free Radix on the operand-isolated ComplexALU).
                rows.push(vec![
                    stage.to_string(),
                    bench.to_string(),
                    "idle".into(),
                    "idle".into(),
                    "idle".into(),
                ]);
                continue;
            }
            let theta = theta_en / theta_t;
            // One task per barrier interval: the four schemes of one
            // interval reuse the profiles/traces prepared above, and
            // intervals are independent, so they fan out across the pool.
            let per_interval = ThreadPool::from_env().try_map(&prepared, |_, item| {
                let (profiles, traces, _) = item;
                let (_, nom) = solver_for("nominal").solve_evaluated(&cfg, profiles, theta)?;
                let (_, nots) = solver_for("no_ts").solve_evaluated(&cfg, profiles, theta)?;
                let (_, off) = run_interval_offline(&cfg, traces, theta)?;
                let longest = traces
                    .iter()
                    .map(|t| t.normalized_delays.len())
                    .max()
                    .unwrap_or(0);
                let plan = SamplingPlan::paper_default(longest, cfg.s());
                let out = run_interval(&cfg, traces, theta, plan)?;
                Ok::<_, OptError>((nom, nots, off, out.total))
            })?;
            for (nom, nots, off, online) in per_interval {
                nominal_ed.energy += nom.energy;
                nominal_ed.time += nom.time;
                nots_ed.energy += nots.energy;
                nots_ed.time += nots.time;
                offline_ed.energy += off.energy;
                offline_ed.time += off.time;
                online_ed.energy += online.energy;
                online_ed.time += online.time;
            }
            let base = offline_ed.edp();
            let online_n = online_ed.edp() / base;
            let nots_n = nots_ed.edp() / base;
            let nominal_n = nominal_ed.edp() / base;
            overheads.push(online_n - 1.0);
            let wins = online_n <= nots_n * 1.02 && online_n <= nominal_n * 1.02;
            if wins {
                wins_count += 1;
            }
            total_count += 1;
            sums.0 += online_n;
            sums.1 += nots_n;
            sums.2 += nominal_n;
            rows.push(vec![
                stage.to_string(),
                format!("{bench}{}", if wins { "" } else { " *" }),
                f(online_n, 3),
                f(nots_n, 3),
                f(nominal_n, 3),
            ]);
        }
    }
    let avg_overhead = overheads.iter().sum::<f64>() / overheads.len().max(1) as f64;
    // Sampling fidelity scales with trace depth: at Quick effort the
    // sampling phase gets only a handful of instructions per TSR level, so
    // the estimate-driven results carry the corresponding noise.
    let paper_fidelity = corpus.effort() == crate::corpus::Effort::Paper;
    let overhead_bound = if paper_fidelity { 0.35 } else { 0.90 };
    checks.push(Check::new(
        format!(
            "online-vs-offline EDP overhead is modest (avg {:.1}%, paper ~10.3%)",
            100.0 * avg_overhead
        ),
        avg_overhead > -0.05 && avg_overhead < overhead_bound,
    ));
    if paper_fidelity {
        let n = total_count.max(1) as f64;
        checks.push(Check::new(
            format!(
                "SynTS(online) beats No-TS and Nominal in aggregate \
                 (mean EDP {:.2} vs {:.2} vs {:.2})",
                sums.0 / n,
                sums.1 / n,
                sums.2 / n
            ),
            sums.0 < sums.1 && sums.0 < sums.2,
        ));
        checks.push(Check::new(
            format!(
                "SynTS(online) wins on most benchmark/stage pairs \
                 ({wins_count}/{total_count}; rows marked * lose to a baseline — \
                 interval-prefix bias at reproduction scale, see EXPERIMENTS.md)"
            ),
            wins_count * 2 > total_count,
        ));
    } else {
        checks.push(Check::new(
            "(quick effort: cross-scheme comparison skipped — sampling phase too short)",
            true,
        ));
    }
    let online_label = format!("{}(online)", solver_for("synts_poly").label());
    let text = table(
        &[
            "stage",
            "benchmark",
            &online_label,
            solver_for("no_ts").label(),
            solver_for("nominal").label(),
        ],
        &rows,
    );
    Ok(Figure {
        id: "fig-6-18",
        title: "Fig 6.18: Normalized EDP (baseline = SynTS offline)".into(),
        text,
        csv: Some((
            vec!["stage", "benchmark", "online", "nots", "nominal"],
            rows,
        )),
        checks,
    })
}

/// Sec 6.3: hardware power/area overhead of SynTS-online.
///
/// # Errors
///
/// Propagates netlist construction failures.
pub fn sec_6_3() -> Result<Figure, OptError> {
    let report = estimate_overhead_defaults(16)?;
    let rows = vec![
        vec![
            "power overhead (%)".to_string(),
            f(report.power_pct(), 2),
            "3.41".into(),
        ],
        vec![
            "area overhead (%)".to_string(),
            f(report.area_pct(), 2),
            "2.70".into(),
        ],
    ];
    let checks = vec![
        Check::new(
            format!(
                "power overhead is a few percent ({:.2}%, paper 3.41%)",
                report.power_pct()
            ),
            report.power_pct() > 0.5 && report.power_pct() < 8.0,
        ),
        Check::new(
            format!(
                "area overhead is a few percent ({:.2}%, paper 2.7%)",
                report.area_pct()
            ),
            report.area_pct() > 0.5 && report.area_pct() < 8.0,
        ),
        Check::new(
            "power overhead exceeds area overhead (shadow latches clock every cycle)",
            report.power_fraction > report.area_fraction,
        ),
    ];
    let text = table(&["metric", "measured", "paper"], &rows);
    Ok(Figure {
        id: "sec-6-3",
        title: "Sec 6.3: SynTS-online hardware overhead".into(),
        text,
        csv: Some((vec!["metric", "measured", "paper"], rows)),
        checks,
    })
}

/// The headline claim: best-case EDP reduction of SynTS vs Per-core TS per
/// stage (paper: 26% Decode, 25% SimpleALU, 7.5% ComplexALU).
///
/// # Errors
///
/// Propagates [`OptError`] from the pipeline.
pub fn headline(corpus: &Corpus) -> Result<Figure, OptError> {
    let mut rows = Vec::new();
    let mut checks = Vec::new();
    let mut best_by_stage = Vec::new();
    for stage in StageKind::ALL {
        let mut best = 0.0f64;
        let mut best_bench = None;
        for bench in Benchmark::REPORTED {
            let Some(data) = corpus.get(bench, stage) else {
                continue;
            };
            // One data-driven scenario per cell: both schemes at the
            // equal-weight θ over all intervals.
            let spec = ScenarioSpec::new(format!("headline-{bench}-{stage}"), bench, stage)
                .schemes(["synts_poly", "per_core_ts"]);
            let report = Experiment::new(spec).run_on(data)?;
            let synts = report.datasets[0].records[0].ed;
            let percore = report.datasets[1].records[0].ed;
            let gain = 100.0 * (1.0 - synts.edp() / percore.edp());
            rows.push(vec![stage.to_string(), bench.to_string(), f(gain, 1)]);
            if gain > best {
                best = gain;
                best_bench = Some(bench);
            }
        }
        best_by_stage.push((stage, best, best_bench));
    }
    for &(stage, best, bench) in &best_by_stage {
        let paper = match stage {
            StageKind::Decode => 26.0,
            StageKind::SimpleAlu => 25.0,
            StageKind::ComplexAlu => 7.5,
        };
        rows.push(vec![
            stage.to_string(),
            format!(
                "BEST ({})",
                bench.map(|b| b.to_string()).unwrap_or_default()
            ),
            f(best, 1),
        ]);
        checks.push(Check::new(
            format!("{stage}: SynTS beats per-core TS (best {best:.1}%, paper up to {paper}%)"),
            best > 1.0,
        ));
    }
    // The ordering claim: ComplexALU benefits least.
    let complex_best = best_by_stage
        .iter()
        .find(|(s, _, _)| *s == StageKind::ComplexAlu)
        .map(|&(_, b, _)| b)
        .unwrap_or(0.0);
    let others_best = best_by_stage
        .iter()
        .filter(|(s, _, _)| *s != StageKind::ComplexAlu)
        .map(|&(_, b, _)| b)
        .fold(0.0f64, f64::max);
    checks.push(Check::new(
        "the ComplexALU shows the smallest best-case gain (paper: 7.5% vs 25-26%)",
        complex_best < others_best,
    ));
    let text = table(
        &["stage", "benchmark", "EDP gain vs per-core TS (%)"],
        &rows,
    );
    Ok(Figure {
        id: "headline",
        title: "Headline: EDP reduction vs per-core timing speculation".into(),
        text,
        csv: Some((vec!["stage", "benchmark", "gain_pct"], rows)),
        checks,
    })
}

/// Design-choice ablation: how the SimpleALU adder topology reshapes the
/// error-probability curve (and therefore the speculation headroom).
///
/// # Errors
///
/// Propagates [`OptError`] from characterization.
pub fn ablation_adders(corpus: &Corpus) -> Result<Figure, OptError> {
    let data = corpus_data(corpus, Benchmark::Radix, StageKind::SimpleAlu)?;
    let _ = data; // corpus presence check; events come from a fresh run
    let cfg = corpus.effort().harness();
    let trace = Benchmark::Radix.run(&cfg.workload);
    let events = &trace.intervals[trace.intervals.len() - 1].thread(0).events;

    let mut rows = Vec::new();
    let mut tnoms = Vec::new();
    let mut means = Vec::new();
    for kind in AdderKind::ALL {
        let name = kind.name();
        let alu =
            SimpleAlu::with_adder(cfg.workload.width, kind).map_err(timing::TimingError::from)?;
        let charac = StageCharacterizer::from_stage(Box::new(alu))?;
        let trace = charac.delay_trace_sampled(events, cfg.max_samples)?;
        let curve = ErrorCurve::from_trace(&trace);
        tnoms.push((name, charac.tnom_v1()));
        means.push(trace.mean_normalized());
        rows.push(vec![
            name.to_string(),
            f(charac.tnom_v1(), 1),
            f(trace.mean_normalized(), 3),
            f(curve.err(0.7), 4),
            f(curve.err(0.8), 4),
            f(curve.err(0.9), 4),
        ]);
    }
    let ripple_tnom = tnoms[0].1;
    let ks_tnom = tnoms[2].1; // AdderKind::ALL order: ripple, cla, ks, ...
    let checks = vec![
        Check::new(
            format!(
                "the log-depth adder shortens the stage's nominal period                  ({ks_tnom:.1} vs {ripple_tnom:.1})"
            ),
            ks_tnom < 0.9 * ripple_tnom,
        ),
        Check::new(
            format!(
                "topology reshapes the delay distribution (mean {:.3} vs {:.3} of tnom)",
                means[0], means[2]
            ),
            (means[0] - means[2]).abs() > 0.02,
        ),
    ];
    let text = table(
        &[
            "adder",
            "tnom (1.0V)",
            "mean d/tnom",
            "err(0.7)",
            "err(0.8)",
            "err(0.9)",
        ],
        &rows,
    );
    Ok(Figure {
        id: "ablation-adders",
        title: "Ablation: SimpleALU adder topology vs error-probability curve".into(),
        text,
        csv: Some((
            vec!["adder", "tnom", "mean", "err07", "err08", "err09"],
            rows,
        )),
        checks,
    })
}

/// Sec 5.4: benchmark classification by thread heterogeneity.
///
/// The paper characterizes ten SPLASH-2 benchmarks and reports results
/// for seven: "FFT, Ocean and Water-sp have homogeneous error
/// probabilities for all threads", and "the FFT error probabilities are
/// high and do not permit any timing speculation". This target measures
/// the per-thread error spread of every benchmark on the SimpleALU and
/// checks that classification.
///
/// # Errors
///
/// Propagates characterization failures.
pub fn sec_5_4(corpus: &Corpus) -> Result<Figure, OptError> {
    use crate::corpus::Effort;
    let effort = corpus.effort();
    // The shared corpus holds the seven reported benchmarks; characterize
    // the three homogeneous ones on demand.
    let extra = Corpus::build_subset(
        effort,
        &[Benchmark::Fft, Benchmark::Ocean, Benchmark::WaterSp],
        &[StageKind::SimpleAlu],
    )?;
    let _ = Effort::Quick; // effort is threaded through build_subset
    let spread_of = |data: &BenchmarkData| -> f64 {
        let grid = [0.64, 0.7, 0.78, 0.86];
        let mut spread = 0.0f64;
        for iv in &data.intervals {
            for &r in &grid {
                let errs: Vec<f64> = iv.threads.iter().map(|t| t.curve.err(r)).collect();
                let max = errs.iter().copied().fold(0.0f64, f64::max);
                let min = errs.iter().copied().fold(f64::INFINITY, f64::min);
                spread = spread.max(max - min);
            }
        }
        spread
    };
    let mut rows = Vec::new();
    let mut homog = Vec::new();
    let mut het = Vec::new();
    let mut fft_gentle_err = 0.0f64;
    for bench in workloads::Benchmark::ALL {
        let data = if bench.paper_homogeneous() {
            extra.get(bench, StageKind::SimpleAlu)
        } else {
            corpus.get(bench, StageKind::SimpleAlu)
        }
        .ok_or(OptError::BadConfig("benchmark missing from corpus"))?;
        let s = spread_of(data);
        if bench.paper_homogeneous() {
            homog.push(s);
        } else {
            het.push(s);
        }
        // Worst-thread error at the gentlest non-unity TSR (r = 0.928).
        let gentle = data
            .intervals
            .iter()
            .flat_map(|iv| iv.threads.iter())
            .map(|t| t.curve.err(0.928))
            .fold(0.0f64, f64::max);
        if bench == Benchmark::Fft {
            fft_gentle_err = gentle;
        }
        rows.push(vec![
            bench.name().to_string(),
            if bench.paper_homogeneous() {
                "homogeneous"
            } else {
                "reported"
            }
            .to_string(),
            f(s, 4),
            f(gentle, 4),
        ]);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let checks = vec![
        Check::new(
            format!(
                "homogeneous benchmarks show less thread spread than reported ones (mean {:.3} vs {:.3})",
                mean(&homog),
                mean(&het)
            ),
            mean(&homog) < mean(&het),
        ),
        Check::new(
            format!(
                "the widest thread spread sits in the reported group ({:.3} vs {:.3})",
                het.iter().copied().fold(0.0f64, f64::max),
                homog.iter().copied().fold(0.0f64, f64::max),
            ),
            het.iter().copied().fold(0.0f64, f64::max)
                > homog.iter().copied().fold(0.0f64, f64::max),
        ),
    ];
    // Note: the paper additionally reports that FFT's error probabilities
    // are too high to permit any speculation; our substrate's FFT
    // butterflies do not sensitize near-critical SimpleALU paths at gentle
    // ratios (worst err(0.928) = {fft_gentle_err:.4}), so that particular
    // magnitude claim does not transfer — recorded in EXPERIMENTS.md.
    let _ = fft_gentle_err;
    Ok(Figure {
        id: "sec-5-4",
        title: "Sec 5.4: benchmark classification by thread heterogeneity (SimpleALU)".into(),
        text: table(
            &[
                "benchmark",
                "paper class",
                "max err spread",
                "worst err(0.928)",
            ],
            &rows,
        ),
        csv: Some((
            vec![
                "benchmark",
                "paper_class",
                "max_err_spread",
                "worst_err_0928",
            ],
            rows,
        )),
        checks,
    })
}
