//! Plain-text table rendering and CSV emission for the repro targets.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Renders a simple aligned text table.
#[must_use]
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Writes rows as CSV under `results/` (created on demand).
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn save_csv(
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Formats an f64 with fixed precision (helper for table cells).
#[must_use]
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "v"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["long-name".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("long-name"));
        // Right alignment: the short name is padded.
        assert!(lines[2].starts_with("        a"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
