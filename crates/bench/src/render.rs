//! Plain-text table rendering and CSV emission for the repro targets,
//! plus the shared text sink for scenario [`Report`]s.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use synts_core::{CacheStats, Report};

/// Renders a simple aligned text table.
#[must_use]
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Writes rows as CSV to an explicit path, creating parent directories
/// on demand — the single definition of the CSV wire format.
///
/// # Errors
///
/// Propagates I/O errors from directory/file creation and writing.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut f = fs::File::create(path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Writes rows as CSV under `results/` (created on demand).
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn save_csv(
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    let path = Path::new("results").join(format!("{name}.csv"));
    write_csv(&path, header, rows)?;
    Ok(path)
}

/// Formats an f64 with fixed precision (helper for table cells).
#[must_use]
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Tabulates a scenario report, one row per (scheme, θ) record in
/// dataset order. With a baseline the axes are normalized (the
/// Pareto-figure form: `theta/eq`, `time (norm)`, `energy (norm)`);
/// without, rows carry absolute energy/time/EDP.
#[must_use]
pub fn report_rows(report: &Report) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let mut rows = Vec::new();
    if report.baseline.is_some() {
        for ds in &report.datasets {
            for r in &ds.records {
                let n = r.normalized.expect("baseline implies normalized records");
                rows.push(vec![
                    ds.label.clone(),
                    f(r.theta / report.theta_center, 3),
                    f(n.time, 4),
                    f(n.energy, 4),
                ]);
            }
        }
        (
            vec!["scheme", "theta/eq", "time (norm)", "energy (norm)"],
            rows,
        )
    } else {
        for ds in &report.datasets {
            for r in &ds.records {
                rows.push(vec![
                    ds.label.clone(),
                    f(r.theta / report.theta_center, 3),
                    f(r.ed.time, 3),
                    f(r.ed.energy, 3),
                    f(r.ed.edp(), 3),
                ]);
            }
        }
        (vec!["scheme", "theta/eq", "time", "energy", "edp"], rows)
    }
}

/// [`report_text`] plus a characterization-cache summary line when the
/// run consulted the cache — the `synts-cli` sink. Kept out of
/// [`report_text`] itself so golden figure fixtures stay byte-stable
/// whether the cache was warm, cold or disabled.
#[must_use]
pub fn report_text_with_cache(report: &Report, cache: Option<CacheStats>) -> String {
    let mut out = report_text(report);
    if let Some(stats) = cache.filter(|s| s.lookups() > 0) {
        out.push_str(&format!(
            "characterization cache: {} hit(s), {} miss(es), {} write error(s)\n",
            stats.hits, stats.misses, stats.write_errors
        ));
    }
    out
}

/// The full text sink for a scenario report: data table, Pareto-front
/// sizes, and the engine's invariant checks.
#[must_use]
pub fn report_text(report: &Report) -> String {
    let (header, rows) = report_rows(report);
    let mut out = format!(
        "scenario '{}': {} on {}, {} scheme(s), {} theta point(s), intervals {:?}\n\n",
        report.spec.name,
        report.spec.benchmark,
        report.spec.stage,
        report.datasets.len(),
        report.theta_grid.len(),
        report.intervals_used,
    );
    out.push_str(&table(&header, &rows));
    for ds in &report.datasets {
        out.push_str(&format!(
            "{}: {} Pareto-optimal point(s) of {}\n",
            ds.label,
            ds.pareto.len(),
            ds.records.len()
        ));
    }
    for check in &report.checks {
        out.push_str(&format!(
            "[{}] {}\n",
            if check.pass { "PASS" } else { "FAIL" },
            check.claim
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "v"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["long-name".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("long-name"));
        // Right alignment: the short name is padded.
        assert!(lines[2].starts_with("        a"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
