//! # synts-bench — reproduction harness for every table and figure
//!
//! One module per concern:
//!
//! * [`corpus`] — characterizes the full benchmark × stage matrix once and
//!   caches it for all downstream experiments;
//! * [`figures`] — one generator per paper artifact (Table 5.1, Figs 1.2,
//!   3.5, 3.6, 5.10, 6.11–6.16, 6.17, 6.18, Sec 6.3, the headline claims,
//!   plus the adder-topology ablation);
//! * [`ext_figures`] — the extension ablations (variation/aging, leakage,
//!   power cap, thrifty barrier, `N_i` prediction);
//! * [`render`] — plain-text tables and CSV emission.
//!
//! The `repro` binary dispatches to these; Criterion benches (solver
//! scaling, gate-sim throughput, characterization cost, online-controller
//! cost, adder ablation) live under `benches/`.
#![forbid(unsafe_code)]

pub mod corpus;
pub mod ext_figures;
pub mod figures;
pub mod render;
