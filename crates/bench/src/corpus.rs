//! The characterized benchmark × stage corpus, built once per process.

use std::collections::BTreeMap;

use circuits::StageKind;
use synts_core::experiments::{characterize_workload, BenchmarkData, HarnessConfig};
use synts_core::OptError;
use workloads::Benchmark;

/// How much work the reproduction run does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Test-sized workloads, few hundred timed instructions per thread.
    Quick,
    /// Paper-shaped workloads (Sec 6.2 scale).
    Paper,
}

impl Effort {
    /// The harness configuration for this effort level.
    #[must_use]
    pub fn harness(self) -> HarnessConfig {
        match self {
            Effort::Quick => HarnessConfig::quick(),
            Effort::Paper => HarnessConfig::paper_default(),
        }
    }
}

/// Characterization results for every (benchmark, stage) pair needed by the
/// result figures.
pub struct Corpus {
    effort: Effort,
    data: BTreeMap<(Benchmark, StageKind), BenchmarkData>,
}

impl Corpus {
    /// Characterizes the seven reported benchmarks on all three stages.
    ///
    /// # Errors
    ///
    /// Propagates [`OptError`] from the harness.
    pub fn build(effort: Effort) -> Result<Corpus, OptError> {
        Corpus::build_subset(effort, &Benchmark::REPORTED, &StageKind::ALL)
    }

    /// Characterizes an arbitrary subset (each workload runs once and is
    /// re-characterized per stage).
    ///
    /// # Errors
    ///
    /// Propagates [`OptError`] from the harness.
    pub fn build_subset(
        effort: Effort,
        benchmarks: &[Benchmark],
        stages: &[StageKind],
    ) -> Result<Corpus, OptError> {
        let cfg = effort.harness();
        let mut data = BTreeMap::new();
        for &bench in benchmarks {
            let trace = bench.run(&cfg.workload);
            for &stage in stages {
                let d = characterize_workload(&trace, stage, &cfg)?;
                data.insert((bench, stage), d);
            }
        }
        Ok(Corpus { effort, data })
    }

    /// The effort level this corpus was built at.
    #[must_use]
    pub fn effort(&self) -> Effort {
        self.effort
    }

    /// Characterization for one (benchmark, stage) pair, if present.
    #[must_use]
    pub fn get(&self, bench: Benchmark, stage: StageKind) -> Option<&BenchmarkData> {
        self.data.get(&(bench, stage))
    }

    /// All pairs in the corpus.
    pub fn iter(&self) -> impl Iterator<Item = (&(Benchmark, StageKind), &BenchmarkData)> {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_build_and_lookup() {
        let corpus =
            Corpus::build_subset(Effort::Quick, &[Benchmark::Radix], &[StageKind::SimpleAlu])
                .expect("builds");
        assert!(corpus.get(Benchmark::Radix, StageKind::SimpleAlu).is_some());
        assert!(corpus.get(Benchmark::Fmm, StageKind::SimpleAlu).is_none());
        assert_eq!(corpus.iter().count(), 1);
        assert_eq!(corpus.effort(), Effort::Quick);
    }
}
