//! The characterized benchmark × stage corpus, built once per process —
//! and, through the persistent characterization cache, once per machine.
//!
//! ## Why the task graph is fine-grained
//!
//! The PR 4 build fanned out at (benchmark × stage) granularity behind a
//! barrier: all workload traces first, then 9 coarse characterization
//! tasks. `BENCH_PR5.json` recorded the consequence — ~1× parallel
//! speedup. Two structural causes (confirmed with the [`PhaseStats`]
//! breakdown, not guessed):
//!
//! 1. **quantization**: 9 multi-second tasks on 4 workers run as
//!    ⌈9/4⌉ = 3 sequential rounds, capping speedup at 2.6× before any
//!    other loss, and the barrier serializes all trace building in front;
//! 2. **repeated setup**: each coarse task rebuilt its stage netlist and
//!    re-ran STA (9 builds for 3 distinct stages).
//!
//! [`Corpus::build_subset_with`] therefore schedules the *unit* task —
//! one (benchmark, stage, interval, thread) gate simulation, 108 units
//! for the quick 3-benchmark corpus — on one flat pool pass. Shared
//! preludes hang off `OnceLock`s initialized by whichever worker needs
//! them first: workload traces (so trace building overlaps
//! characterization of already-traced benchmarks instead of gating
//! everything), and one cache probe per pair. Stage characterizers are
//! built once per *stage*, up front, on the pool. Results are collected
//! in deterministic unit order, so the corpus stays bit-identical to a
//! sequential build at any worker count, cache warm or cold.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use circuits::StageKind;
use synts_core::experiments::{characterize_thread, BenchmarkData, HarnessConfig, IntervalData};
use synts_core::phase::{time_phase, Phase};
use synts_core::{CharCache, OptError, ThreadPool};
use timing::StageCharacterizer;
use workloads::{Benchmark, WorkloadTrace};

/// How much work the reproduction run does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Test-sized workloads, few hundred timed instructions per thread.
    Quick,
    /// Paper-shaped workloads (Sec 6.2 scale).
    Paper,
}

impl Effort {
    /// The harness configuration for this effort level.
    #[must_use]
    pub fn harness(self) -> HarnessConfig {
        match self {
            Effort::Quick => HarnessConfig::quick(),
            Effort::Paper => HarnessConfig::paper_default(),
        }
    }
}

/// Characterization results for every (benchmark, stage) pair needed by the
/// result figures.
pub struct Corpus {
    effort: Effort,
    data: BTreeMap<(Benchmark, StageKind), BenchmarkData>,
}

impl Corpus {
    /// Characterizes the seven reported benchmarks on all three stages,
    /// fanned across `SYNTS_THREADS` workers and served from the on-disk
    /// characterization cache where warm (`SYNTS_CACHE_DIR`).
    ///
    /// # Errors
    ///
    /// Propagates [`OptError`] from the harness.
    pub fn build(effort: Effort) -> Result<Corpus, OptError> {
        Corpus::build_subset(effort, &Benchmark::REPORTED, &StageKind::ALL)
    }

    /// Characterizes an arbitrary subset (each workload runs once and is
    /// re-characterized per stage) with the environment defaults:
    /// `SYNTS_THREADS` workers, cache at `SYNTS_CACHE_DIR`.
    ///
    /// # Errors
    ///
    /// Propagates [`OptError`] from the harness.
    pub fn build_subset(
        effort: Effort,
        benchmarks: &[Benchmark],
        stages: &[StageKind],
    ) -> Result<Corpus, OptError> {
        Corpus::build_subset_with(
            effort,
            benchmarks,
            stages,
            &CharCache::from_env(),
            ThreadPool::from_env(),
        )
    }

    /// [`Corpus::build_subset`] with an explicit cache and worker pool
    /// (`Synts::builder().workers(n)` callers pass `synts.pool()`).
    ///
    /// Work fans out at (benchmark × stage × interval × thread)
    /// granularity — see the [module docs](self) for why — and per-phase
    /// wall-clock lands in [`PhaseStats`]. Results are collected in unit
    /// order, so the corpus is bit-identical to a sequential build at any
    /// worker count, cache warm or cold.
    ///
    /// # Errors
    ///
    /// Propagates [`OptError`] from the harness, surfacing the
    /// lowest-unit-index failure deterministically at any worker count.
    pub fn build_subset_with(
        effort: Effort,
        benchmarks: &[Benchmark],
        stages: &[StageKind],
        cache: &CharCache,
        pool: ThreadPool,
    ) -> Result<Corpus, OptError> {
        let cfg = effort.harness();
        if benchmarks.is_empty() || stages.is_empty() {
            return Ok(Corpus {
                effort,
                data: BTreeMap::new(),
            });
        }

        // One characterizer per distinct *stage* (netlist build + STA),
        // shared by every benchmark — the old per-pair builds did this
        // |benchmarks| times over.
        let characterizers: Vec<StageCharacterizer> = pool.try_map(stages, |_, &stage| {
            time_phase(Phase::StageBuild, || {
                StageCharacterizer::new(stage, cfg.workload.width)
            })
        })?;

        // Pairs ordered benchmark-fastest so consecutive units touch
        // different benchmarks: the first claims fan out across distinct
        // traces instead of piling onto one trace's OnceLock.
        let pairs: Vec<(usize, usize)> = (0..stages.len())
            .flat_map(|s| (0..benchmarks.len()).map(move |b| (b, s)))
            .collect();

        // Lazily-built shared state, initialized by whichever worker
        // needs it first (`OnceLock::get_or_init` blocks only the
        // co-claimants of the same slot, so trace building overlaps
        // characterization of other benchmarks).
        let traces: Vec<OnceLock<WorkloadTrace>> =
            benchmarks.iter().map(|_| OnceLock::new()).collect();
        let trace_of = |b: usize| -> &WorkloadTrace {
            traces[b]
                .get_or_init(|| time_phase(Phase::TraceBuild, || benchmarks[b].run(&cfg.workload)))
        };
        // One cache probe per pair: `Some(data)` is a verified hit whose
        // units all short-circuit; `None` is a miss to be computed.
        let probes: Vec<OnceLock<Option<BenchmarkData>>> =
            pairs.iter().map(|_| OnceLock::new()).collect();
        let probe_of = |p: usize| -> &Option<BenchmarkData> {
            probes[p].get_or_init(|| {
                let (b, s) = pairs[p];
                cache
                    .entry(
                        trace_of(b),
                        stages[s],
                        &cfg,
                        characterizers[s].stage().netlist(),
                    )
                    .load()
            })
        };

        // The unit list: interval-major, thread-middle, pair-minor, so
        // the first |pairs| claims cover every pair. Shape comes from the
        // config; traces of a different shape (none today) fall back to
        // inline characterization during assembly.
        let (n_iv, n_th) = (cfg.workload.intervals, cfg.workload.threads);
        let units: Vec<(usize, usize, usize)> = (0..n_iv)
            .flat_map(|i| {
                let pairs_len = pairs.len();
                (0..n_th).flat_map(move |t| (0..pairs_len).map(move |p| (p, i, t)))
            })
            .collect();
        let mut results: Vec<Option<synts_core::experiments::ThreadData>> =
            pool.try_map(&units, |_, &(p, i, t)| {
                if probe_of(p).is_some() {
                    return Ok(None);
                }
                let (b, s) = pairs[p];
                let trace = trace_of(b);
                let Some(interval) = trace.intervals.get(i) else {
                    return Ok(None);
                };
                if t >= interval.threads() {
                    return Ok(None);
                }
                time_phase(Phase::GateSim, || {
                    characterize_thread(&characterizers[s], interval.thread(t), &cfg).map(Some)
                })
            })?;

        // Deterministic assembly in pair order; computed units are moved
        // (not cloned) out of the flat result vector.
        let unit_index = |p: usize, i: usize, t: usize| (i * n_th + t) * pairs.len() + p;
        let mut data = BTreeMap::new();
        for (p, &(b, s)) in pairs.iter().enumerate() {
            let (benchmark, stage) = (benchmarks[b], stages[s]);
            if let Some(cached) = probe_of(p) {
                data.insert((benchmark, stage), cached.clone());
                continue;
            }
            let charac = &characterizers[s];
            let trace = trace_of(b);
            let assembled = time_phase(Phase::Collect, || -> Result<BenchmarkData, OptError> {
                let mut intervals = Vec::with_capacity(trace.intervals.len());
                for (i, interval) in trace.intervals.iter().enumerate() {
                    let mut threads = Vec::with_capacity(interval.threads());
                    for t in 0..interval.threads() {
                        let precomputed = (i < n_iv && t < n_th)
                            .then(|| results[unit_index(p, i, t)].take())
                            .flatten();
                        threads.push(match precomputed {
                            Some(td) => td,
                            None => characterize_thread(charac, interval.thread(t), &cfg)?,
                        });
                    }
                    intervals.push(IntervalData { threads });
                }
                Ok(BenchmarkData {
                    benchmark,
                    stage,
                    tnom_v1: charac.tnom_v1(),
                    intervals,
                })
            })?;
            cache
                .entry(trace, stage, &cfg, charac.stage().netlist())
                .store(&assembled);
            data.insert((benchmark, stage), assembled);
        }
        Ok(Corpus { effort, data })
    }

    /// The effort level this corpus was built at.
    #[must_use]
    pub fn effort(&self) -> Effort {
        self.effort
    }

    /// Characterization for one (benchmark, stage) pair, if present.
    #[must_use]
    pub fn get(&self, bench: Benchmark, stage: StageKind) -> Option<&BenchmarkData> {
        self.data.get(&(bench, stage))
    }

    /// All pairs in the corpus.
    pub fn iter(&self) -> impl Iterator<Item = (&(Benchmark, StageKind), &BenchmarkData)> {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synts_core::{characterize_workload_cached, CacheStats, PhaseStats};

    #[test]
    fn subset_build_and_lookup() {
        let corpus =
            Corpus::build_subset(Effort::Quick, &[Benchmark::Radix], &[StageKind::SimpleAlu])
                .expect("builds");
        assert!(corpus.get(Benchmark::Radix, StageKind::SimpleAlu).is_some());
        assert!(corpus.get(Benchmark::Fmm, StageKind::SimpleAlu).is_none());
        assert_eq!(corpus.iter().count(), 1);
        assert_eq!(corpus.effort(), Effort::Quick);
    }

    fn assert_same(a: &BenchmarkData, b: &BenchmarkData) {
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.stage, b.stage);
        assert_eq!(a.tnom_v1.to_bits(), b.tnom_v1.to_bits());
        assert_eq!(a.intervals.len(), b.intervals.len());
        for (ia, ib) in a.intervals.iter().zip(&b.intervals) {
            assert_eq!(ia.threads.len(), ib.threads.len());
            for (ta, tb) in ia.threads.iter().zip(&ib.threads) {
                let da: Vec<u64> = ta.normalized_delays.iter().map(|d| d.to_bits()).collect();
                let db: Vec<u64> = tb.normalized_delays.iter().map(|d| d.to_bits()).collect();
                assert_eq!(da, db);
                assert_eq!(ta.instructions.to_bits(), tb.instructions.to_bits());
                assert_eq!(ta.cpi_base.to_bits(), tb.cpi_base.to_bits());
            }
        }
    }

    /// The restructured unit-task build must be bit-identical to the
    /// coarse per-pair path at every worker count, cold and warm.
    #[test]
    fn unit_task_build_matches_coarse_path_at_any_worker_count() {
        let benchmarks = [Benchmark::Radix, Benchmark::Fmm];
        let stages = [StageKind::SimpleAlu, StageKind::Decode];
        let cfg = Effort::Quick.harness();
        let mut reference: Vec<BenchmarkData> = Vec::new();
        for &s in &stages {
            for &bench in &benchmarks {
                let trace = bench.run(&cfg.workload);
                reference.push(
                    characterize_workload_cached(
                        &trace,
                        s,
                        &cfg,
                        &CharCache::disabled(),
                        ThreadPool::sequential(),
                    )
                    .expect("reference"),
                );
            }
        }
        for workers in [1, 2, 4, 8] {
            let corpus = Corpus::build_subset_with(
                Effort::Quick,
                &benchmarks,
                &stages,
                &CharCache::disabled(),
                ThreadPool::new(workers),
            )
            .expect("builds");
            for reference in &reference {
                let got = corpus
                    .get(reference.benchmark, reference.stage)
                    .expect("pair present");
                assert_same(got, reference);
            }
        }
    }

    /// A cold unit-task build misses once per pair, stores, and the next
    /// build hits once per pair with bit-identical data.
    #[test]
    fn unit_task_build_uses_the_cache_per_pair() {
        let dir =
            std::env::temp_dir().join(format!("synts-corpus-test-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CharCache::at_dir(&dir);
        let benchmarks = [Benchmark::Radix];
        let stages = [StageKind::SimpleAlu, StageKind::Decode];
        let before = CacheStats::snapshot();
        let cold = Corpus::build_subset_with(
            Effort::Quick,
            &benchmarks,
            &stages,
            &cache,
            ThreadPool::new(2),
        )
        .expect("cold");
        let mid = CacheStats::snapshot().since(before);
        assert_eq!(mid.misses, 2, "one miss per pair");
        assert_eq!(mid.hits, 0);
        let warm = Corpus::build_subset_with(
            Effort::Quick,
            &benchmarks,
            &stages,
            &cache,
            ThreadPool::new(2),
        )
        .expect("warm");
        let after = CacheStats::snapshot().since(before);
        assert_eq!(after.hits, 2, "one hit per pair");
        for (key, cold_data) in cold.iter() {
            assert_same(cold_data, warm.get(key.0, key.1).expect("pair"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The build charges its work to the phase breakdown — the
    /// diagnosing-parallel-scaling instrument must see a cold build.
    #[test]
    fn build_populates_phase_breakdown() {
        let before = PhaseStats::snapshot();
        let _ = Corpus::build_subset_with(
            Effort::Quick,
            &[Benchmark::Fft],
            &[StageKind::SimpleAlu],
            &CharCache::disabled(),
            ThreadPool::sequential(),
        )
        .expect("builds");
        let delta = PhaseStats::snapshot().since(before);
        assert!(delta.trace_build_ns > 0, "trace build was timed");
        assert!(delta.stage_build_ns > 0, "stage build was timed");
        assert!(delta.gate_sim_ns > 0, "gate sim was timed");
    }
}
