//! The characterized benchmark × stage corpus, built once per process —
//! and, through the persistent characterization cache, once per machine.

use std::collections::BTreeMap;

use circuits::StageKind;
use synts_core::experiments::{BenchmarkData, HarnessConfig};
use synts_core::{characterize_workload_cached, CharCache, OptError, ThreadPool};
use workloads::Benchmark;

/// How much work the reproduction run does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Test-sized workloads, few hundred timed instructions per thread.
    Quick,
    /// Paper-shaped workloads (Sec 6.2 scale).
    Paper,
}

impl Effort {
    /// The harness configuration for this effort level.
    #[must_use]
    pub fn harness(self) -> HarnessConfig {
        match self {
            Effort::Quick => HarnessConfig::quick(),
            Effort::Paper => HarnessConfig::paper_default(),
        }
    }
}

/// Characterization results for every (benchmark, stage) pair needed by the
/// result figures.
pub struct Corpus {
    effort: Effort,
    data: BTreeMap<(Benchmark, StageKind), BenchmarkData>,
}

impl Corpus {
    /// Characterizes the seven reported benchmarks on all three stages,
    /// fanned across `SYNTS_THREADS` workers and served from the on-disk
    /// characterization cache where warm (`SYNTS_CACHE_DIR`).
    ///
    /// # Errors
    ///
    /// Propagates [`OptError`] from the harness.
    pub fn build(effort: Effort) -> Result<Corpus, OptError> {
        Corpus::build_subset(effort, &Benchmark::REPORTED, &StageKind::ALL)
    }

    /// Characterizes an arbitrary subset (each workload runs once and is
    /// re-characterized per stage) with the environment defaults:
    /// `SYNTS_THREADS` workers, cache at `SYNTS_CACHE_DIR`.
    ///
    /// # Errors
    ///
    /// Propagates [`OptError`] from the harness.
    pub fn build_subset(
        effort: Effort,
        benchmarks: &[Benchmark],
        stages: &[StageKind],
    ) -> Result<Corpus, OptError> {
        Corpus::build_subset_with(
            effort,
            benchmarks,
            stages,
            &CharCache::from_env(),
            ThreadPool::from_env(),
        )
    }

    /// [`Corpus::build_subset`] with an explicit cache and worker pool
    /// (`Synts::builder().workers(n)` callers pass `synts.pool()`).
    ///
    /// The (benchmark × stage) characterizations fan out across `pool`
    /// and are collected in index order, so the corpus is bit-identical
    /// to a sequential build at any worker count, cache warm or cold.
    ///
    /// # Errors
    ///
    /// Propagates [`OptError`] from the harness, surfacing the
    /// lowest-index failure like the sequential loop would.
    pub fn build_subset_with(
        effort: Effort,
        benchmarks: &[Benchmark],
        stages: &[StageKind],
        cache: &CharCache,
        pool: ThreadPool,
    ) -> Result<Corpus, OptError> {
        let cfg = effort.harness();
        // Workloads run once per benchmark, in parallel; each trace is
        // then shared by that benchmark's per-stage characterizations.
        let traces = pool.map(benchmarks, |_, bench| bench.run(&cfg.workload));
        let pairs: Vec<(usize, StageKind)> = (0..benchmarks.len())
            .flat_map(|b| stages.iter().map(move |&s| (b, s)))
            .collect();
        // One pool level only: each pair characterizes sequentially
        // inside, the fan-out is across pairs.
        let characterized = pool.try_map(&pairs, |_, &(b, stage)| {
            characterize_workload_cached(&traces[b], stage, &cfg, cache, ThreadPool::sequential())
        })?;
        let mut data = BTreeMap::new();
        for (&(b, stage), d) in pairs.iter().zip(characterized) {
            data.insert((benchmarks[b], stage), d);
        }
        Ok(Corpus { effort, data })
    }

    /// The effort level this corpus was built at.
    #[must_use]
    pub fn effort(&self) -> Effort {
        self.effort
    }

    /// Characterization for one (benchmark, stage) pair, if present.
    #[must_use]
    pub fn get(&self, bench: Benchmark, stage: StageKind) -> Option<&BenchmarkData> {
        self.data.get(&(bench, stage))
    }

    /// All pairs in the corpus.
    pub fn iter(&self) -> impl Iterator<Item = (&(Benchmark, StageKind), &BenchmarkData)> {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_build_and_lookup() {
        let corpus =
            Corpus::build_subset(Effort::Quick, &[Benchmark::Radix], &[StageKind::SimpleAlu])
                .expect("builds");
        assert!(corpus.get(Benchmark::Radix, StageKind::SimpleAlu).is_some());
        assert!(corpus.get(Benchmark::Fmm, StageKind::SimpleAlu).is_none());
        assert_eq!(corpus.iter().count(), 1);
        assert_eq!(corpus.effort(), Effort::Quick);
    }
}
