//! `synts-cli` — run declarative scenario specs from disk.
//!
//! ```text
//! synts-cli run <spec.json> [--quick|--paper] [--workers N]
//!                           [--json <out.json>] [--csv <out.csv>]
//!                           [--no-cache] [--cache-dir <dir>] [--quiet]
//! synts-cli bench [<spec.json>] [--quick|--paper] [--workers N]
//!                 [--out <bench.json>]
//! synts-cli check <spec.json> [--max-shards N] [--quick|--paper] [--workers N]
//! synts-cli submit <spec.json> [--addr HOST:PORT] [--key TOKEN] [--quick|--paper] [--workers N]
//! synts-cli status <job-id> [--addr HOST:PORT]
//! synts-cli fetch <job-id> [--addr HOST:PORT] [--csv] [--wait SECS] [--out FILE]
//! synts-cli schemes
//! synts-cli template
//! ```
//!
//! `run` loads a [`ScenarioSpec`] JSON file (e.g. the committed paper
//! figures under `crates/bench/specs/`), executes it through the single
//! [`Experiment`] entry point, prints the structured report as a text
//! table and optionally writes JSON/CSV sinks. Characterization goes
//! through the persistent on-disk cache (`SYNTS_CACHE_DIR`, default
//! `target/synts-cache/`) unless `--no-cache` is given; the exit status
//! is non-zero if any report check fails, so a spec file doubles as a CI
//! assertion. `bench` measures the characterization fast path —
//! cold-cache build, warm-cache build, solve/sweep wall-clock, a
//! worker-count corpus series (every row on its own throwaway cache
//! directory, asserted cold), a scalar-vs-64-lane gate-sim comparison,
//! the per-phase time breakdown behind the scaling numbers, plus a
//! scenario-service leg (submit→report wall time through an in-process
//! `synts-serve`, warm cache) — and writes a machine-readable JSON
//! record (`BENCH_PR7.json` by default). On machines with at least 4
//! cores the corpus series doubles as a regression gate: a 4-worker
//! cold build must beat the 1-worker build by ≥1.5×. `submit`, `status` and `fetch` are the thin HTTP client
//! for a running `synts-serve` (`--addr`, default `127.0.0.1:7070`):
//! submit a spec file, poll a job, and fetch the merged report as JSON
//! or CSV — byte-identical to what `run` prints for the same spec.
//! `schemes` lists every registry key a spec may name, and `template`
//! prints a starter spec.
#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use synts_bench::corpus::{Corpus, Effort};
use synts_bench::render::{report_text_with_cache, save_csv, write_csv};
use synts_core::scenario::Json;
use synts_core::{
    characterize_cached, default_theta_sweep, reference, worker_count, CacheStats, CharCache,
    Experiment, FaultPlan, IntervalSelection, PhaseStats, Quality, ScenarioSpec, SolveRequest,
    Solver, SolverRegistry, ThetaSpec, ThreadPool,
};
use synts_serve::{Client, ReportOutcome, Server, Service, ServiceConfig, Shutdown};

fn usage() -> ExitCode {
    eprintln!(
        "usage: synts-cli run <spec.json> [--quick|--paper] [--workers N] \
         [--json <out.json>] [--csv <out.csv>] [--no-cache] [--cache-dir <dir>] [--quiet]\n\
         \x20      synts-cli bench [<spec.json>] [--quick|--paper] [--workers N] [--out <bench.json>]\n\
         \x20      synts-cli check <spec.json> [--max-shards N] [--quick|--paper] [--workers N]\n\
         \x20      synts-cli submit <spec.json> [--addr HOST:PORT] [--key TOKEN] [--quick|--paper] [--workers N]\n\
         \x20      synts-cli status <job-id> [--addr HOST:PORT]\n\
         \x20      synts-cli fetch <job-id> [--addr HOST:PORT] [--csv] [--wait SECS] [--out FILE]\n\
         \x20      synts-cli schemes\n\
         \x20      synts-cli template"
    );
    ExitCode::from(2)
}

fn schemes() -> ExitCode {
    let registry: SolverRegistry = SolverRegistry::with_defaults();
    println!("{:<18} {:<22} capabilities", "key", "label");
    println!("{}", "-".repeat(64));
    for (name, solver) in registry.iter() {
        let caps = solver.capabilities();
        let mut tags = Vec::new();
        if caps.exact {
            tags.push("exact");
        }
        if caps.polynomial {
            tags.push("polynomial");
        }
        if caps.uses_theta {
            tags.push("uses-theta");
        }
        if caps.speculates {
            tags.push("speculates");
        }
        println!("{:<18} {:<22} {}", name, solver.label(), tags.join(", "));
    }
    ExitCode::SUCCESS
}

fn template() -> ExitCode {
    let spec = ScenarioSpec::new(
        "my-scenario",
        workloads::Benchmark::Radix,
        circuits::StageKind::Decode,
    )
    .schemes(["synts_poly", "per_core_ts", "no_ts"])
    .thetas(ThetaSpec::LogAroundEqualWeight {
        points: 9,
        decades: 2.0,
    })
    .intervals(IntervalSelection::All)
    .normalize_to("nominal")
    .verify_model(true);
    print!("{}", spec.to_json_string());
    ExitCode::SUCCESS
}

struct RunArgs {
    spec_path: String,
    quality: Option<Quality>,
    workers: Option<usize>,
    json_out: Option<String>,
    csv_out: Option<String>,
    no_cache: bool,
    cache_dir: Option<String>,
    quiet: bool,
    bench_out: Option<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum CliMode {
    Run,
    Bench,
}

fn parse_run_args(args: &[String], mode: CliMode, default_spec: Option<&str>) -> Option<RunArgs> {
    let mut out = RunArgs {
        spec_path: String::new(),
        quality: None,
        workers: None,
        json_out: None,
        csv_out: None,
        no_cache: false,
        cache_dir: None,
        quiet: false,
        bench_out: None,
    };
    let run = mode == CliMode::Run;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => out.quality = Some(Quality::Quick),
            "--paper" => out.quality = Some(Quality::Paper),
            "--workers" => out.workers = Some(it.next()?.parse().ok()?),
            "--quiet" if run => out.quiet = true,
            "--no-cache" if run => out.no_cache = true,
            "--cache-dir" if run => out.cache_dir = Some(it.next()?.clone()),
            "--json" if run => out.json_out = Some(it.next()?.clone()),
            "--csv" if run => out.csv_out = Some(it.next()?.clone()),
            "--out" if !run => out.bench_out = Some(it.next()?.clone()),
            _ if arg.starts_with('-') || !out.spec_path.is_empty() => return None,
            _ => out.spec_path = arg.clone(),
        }
    }
    if out.spec_path.is_empty() {
        out.spec_path = default_spec?.to_string();
    }
    Some(out)
}

/// The configured characterization cache: `--no-cache` wins, then
/// `--cache-dir`, then the `SYNTS_CACHE_DIR`/default resolution.
fn cache_from(args: &RunArgs) -> CharCache {
    if args.no_cache {
        CharCache::disabled()
    } else if let Some(dir) = &args.cache_dir {
        CharCache::at_dir(dir)
    } else {
        CharCache::from_env()
    }
}

fn load_spec(args: &RunArgs) -> Result<ScenarioSpec, ExitCode> {
    let src = std::fs::read_to_string(&args.spec_path).map_err(|e| {
        eprintln!("cannot read spec '{}': {e}", args.spec_path);
        ExitCode::FAILURE
    })?;
    let mut spec = ScenarioSpec::from_json_str(&src).map_err(|e| {
        eprintln!("{}: {e}", args.spec_path);
        ExitCode::FAILURE
    })?;
    if let Some(quality) = args.quality {
        spec.quality = quality;
    }
    if let Some(workers) = args.workers {
        spec.workers = Some(workers);
    }
    Ok(spec)
}

/// Arguments of `synts-cli check`.
struct CheckArgs {
    spec_path: String,
    quality: Option<Quality>,
    workers: Option<usize>,
    /// Shard cap for the plan preview (the service's `max_shards`).
    max_shards: usize,
}

fn parse_check_args(args: &[String]) -> Option<CheckArgs> {
    let mut out = CheckArgs {
        spec_path: String::new(),
        quality: None,
        workers: None,
        max_shards: 4,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => out.quality = Some(Quality::Quick),
            "--paper" => out.quality = Some(Quality::Paper),
            "--workers" => out.workers = Some(it.next()?.parse().ok()?),
            "--max-shards" => out.max_shards = it.next()?.parse().ok()?,
            _ if arg.starts_with('-') || !out.spec_path.is_empty() => return None,
            _ => out.spec_path = arg.clone(),
        }
    }
    if out.spec_path.is_empty() {
        return None;
    }
    Some(out)
}

/// `synts-cli check`: static validation of a scenario spec — no
/// characterization, no solving. Catches what would otherwise fail
/// minutes into a run (or on a service worker): unknown scheme keys
/// (with "did you mean" from the registry), a degenerate θ grid, an
/// invalid worker count — and previews how the service would shard the
/// θ grid ([`ShardPlan`]'s partition, computed from the grid size alone).
fn check(args: &CheckArgs) -> ExitCode {
    let run_args = RunArgs {
        spec_path: args.spec_path.clone(),
        quality: args.quality,
        workers: args.workers,
        json_out: None,
        csv_out: None,
        no_cache: false,
        cache_dir: None,
        quiet: true,
        bench_out: None,
    };
    let spec = match load_spec(&run_args) {
        Ok(spec) => spec,
        Err(code) => return code,
    };
    println!("[check] spec '{}' ({})", spec.name, args.spec_path);
    println!(
        "[check] benchmark: {}  stage: {}  quality: {}",
        spec.benchmark.name(),
        spec.stage.name(),
        spec.quality.name()
    );
    let mut errors = 0usize;
    let fail = |msg: String| {
        eprintln!("error: {msg}");
    };

    // Scheme keys against the registry, with typo suggestions.
    let registry: SolverRegistry = SolverRegistry::with_defaults();
    if spec.schemes.is_empty() {
        errors += 1;
        fail("schemes: must name at least one registry key".to_string());
    }
    for (i, key) in spec.schemes.iter().enumerate() {
        if let Err(e) = registry.get(key) {
            errors += 1;
            fail(format!("schemes[{i}]: {e}"));
        }
    }
    if let Some(key) = &spec.normalize_to {
        if let Err(e) = registry.get(key) {
            errors += 1;
            fail(format!("normalize_to: {e}"));
        }
    }
    if errors == 0 {
        println!(
            "[check] schemes: {} — all registered",
            spec.schemes.join(", ")
        );
    }

    // θ-grid sanity. The grid size is statically known for every
    // ThetaSpec variant, so the shard preview below needs no
    // characterization.
    let grid_points = match &spec.thetas {
        ThetaSpec::EqualWeight => {
            println!("[check] θ grid: the single equal-weight θ");
            1
        }
        ThetaSpec::Grid(values) => {
            if values.is_empty() {
                errors += 1;
                fail("thetas: explicit grid is empty".to_string());
            }
            for (i, v) in values.iter().enumerate() {
                if !v.is_finite() || *v <= 0.0 {
                    errors += 1;
                    fail(format!("thetas[{i}]: θ must be finite and > 0, got {v}"));
                }
            }
            if values.windows(2).any(|w| w[1] <= w[0]) {
                eprintln!(
                    "warning: thetas: grid is not strictly increasing; \
                     reports sweep it in the given order"
                );
            }
            println!("[check] θ grid: {} explicit point(s)", values.len());
            values.len()
        }
        ThetaSpec::LogAroundEqualWeight { points, decades } => {
            if *points == 0 {
                errors += 1;
                fail("thetas: log sweep needs at least 1 point".to_string());
            }
            if !decades.is_finite() || *decades <= 0.0 {
                errors += 1;
                fail(format!(
                    "thetas: log sweep half-width must be finite and > 0, got {decades}"
                ));
            }
            println!(
                "[check] θ grid: {points} log-spaced point(s), ±{decades} decades \
                 around the equal-weight θ"
            );
            *points
        }
    };

    if spec.workers == Some(0) {
        errors += 1;
        fail("workers: must be >= 1 (or omitted to use SYNTS_THREADS / the machine)".to_string());
    }

    // Shard-plan preview: the same θ-index chunking ShardPlan::plan
    // produces, sans benchmark characterization.
    if grid_points > 0 {
        let chunks = ThreadPool::new(args.max_shards.max(1)).chunk_ranges(grid_points);
        println!(
            "[check] shard plan (max {} shard(s)): {} shard(s) over {} θ point(s)",
            args.max_shards.max(1),
            chunks.len(),
            grid_points
        );
        for (i, range) in chunks.iter().enumerate() {
            let verify = if i == 0 && spec.verify_model {
                "  (+ model verification)"
            } else {
                ""
            };
            println!(
                "[check]   {}@shard{i}: θ[{}..{}){verify}",
                spec.name, range.start, range.end
            );
        }
    }

    if errors == 0 {
        println!("[check] OK — spec is statically valid");
        ExitCode::SUCCESS
    } else {
        eprintln!("[check] {errors} error(s) in {}", args.spec_path);
        ExitCode::FAILURE
    }
}

/// Arguments of the `submit`/`status`/`fetch` service subcommands.
struct ServiceArgs {
    /// Spec path (submit) or job id (status/fetch).
    target: String,
    addr: String,
    quality: Option<Quality>,
    workers: Option<usize>,
    csv: bool,
    wait_s: Option<u64>,
    out: Option<String>,
    /// Idempotency key: `submit --key` retries safely (a replayed POST
    /// with the same key returns the same job).
    key: Option<String>,
}

fn parse_service_args(args: &[String]) -> Option<ServiceArgs> {
    let mut out = ServiceArgs {
        target: String::new(),
        addr: "127.0.0.1:7070".to_string(),
        quality: None,
        workers: None,
        csv: false,
        wait_s: None,
        out: None,
        key: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => out.addr = it.next()?.clone(),
            "--quick" => out.quality = Some(Quality::Quick),
            "--paper" => out.quality = Some(Quality::Paper),
            "--workers" => out.workers = Some(it.next()?.parse().ok()?),
            "--csv" => out.csv = true,
            "--wait" => out.wait_s = Some(it.next()?.parse().ok()?),
            "--out" => out.out = Some(it.next()?.clone()),
            "--key" => out.key = Some(it.next()?.clone()),
            _ if arg.starts_with('-') || !out.target.is_empty() => return None,
            _ => out.target = arg.clone(),
        }
    }
    if out.target.is_empty() {
        return None;
    }
    Some(out)
}

/// `synts-cli submit`: POST a spec file to a running `synts-serve` and
/// print the job id (the only stdout line, so scripts can capture it).
fn submit(args: &ServiceArgs) -> ExitCode {
    let run_args = RunArgs {
        spec_path: args.target.clone(),
        quality: args.quality,
        workers: args.workers,
        json_out: None,
        csv_out: None,
        no_cache: false,
        cache_dir: None,
        quiet: true,
        bench_out: None,
    };
    let spec = match load_spec(&run_args) {
        Ok(spec) => spec,
        Err(code) => return code,
    };
    let client = Client::new(&args.addr);
    let outcome = match &args.key {
        Some(key) => client.submit_idempotent(&spec.to_json_string(), key),
        None => client.submit(&spec.to_json_string()),
    };
    match outcome {
        Ok(id) => {
            eprintln!("[submit] '{}' accepted by {}", spec.name, args.addr);
            println!("{id}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("submit failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `synts-cli status`: print a job's status JSON.
fn job_status(args: &ServiceArgs) -> ExitCode {
    match Client::new(&args.addr).status(&args.target) {
        Ok(json) => {
            println!("{}", json.render_pretty().trim_end());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("status failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `synts-cli fetch`: fetch (optionally poll for) a job's merged report
/// and print it — or write it to `--out` — as JSON or `--csv`.
fn fetch(args: &ServiceArgs) -> ExitCode {
    let client = Client::new(&args.addr);
    let fetched = match args.wait_s {
        Some(secs) => client.wait_report(&args.target, args.csv, Duration::from_secs(secs)),
        None => client.fetch_report(&args.target, args.csv).and_then(|r| {
            if r.status == 200 {
                Ok(r.body)
            } else {
                Err(synts_core::OptError::Spec(format!(
                    "job {} has no report yet (HTTP {}); poll with --wait SECS",
                    args.target, r.status
                )))
            }
        }),
    };
    let body = match fetched {
        Ok(body) => body,
        Err(e) => {
            eprintln!("fetch failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &body) {
                eprintln!("[fetch] write failed: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("[fetch] {path}");
        }
        None => print!("{body}"),
    }
    ExitCode::SUCCESS
}

fn run(args: RunArgs) -> ExitCode {
    let spec = match load_spec(&args) {
        Ok(spec) => spec,
        Err(code) => return code,
    };
    let cache = cache_from(&args);
    eprintln!(
        "[synts-cli] running '{}': {} on {} ({} quality, cache {})...",
        spec.name,
        spec.benchmark,
        spec.stage,
        spec.quality.name(),
        if cache.is_enabled() { "on" } else { "off" },
    );
    let before = CacheStats::snapshot();
    let report = match Experiment::new(spec).with_cache(cache).run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("scenario failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cache_stats = CacheStats::snapshot().since(before);
    if !args.quiet {
        print!("{}", report_text_with_cache(&report, Some(cache_stats)));
    }
    if let Some(path) = &args.json_out {
        let path = std::path::Path::new(path);
        if let Err(e) = path
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .map_or(Ok(()), std::fs::create_dir_all)
            .and_then(|()| std::fs::write(path, report.to_json_string()))
        {
            eprintln!("[json] write failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[json] {}", path.display());
    }
    if let Some(path) = &args.csv_out {
        let (header, rows) = report.to_csv();
        if let Err(e) = write_csv(std::path::Path::new(path), &header, &rows) {
            eprintln!("[csv] write failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[csv] {path}");
    } else if args.json_out.is_none() && !args.quiet {
        // Default sink: a CSV under results/, like the repro binary.
        let (header, rows) = report.to_csv();
        match save_csv(&report.spec.name, &header, &rows) {
            Ok(path) => eprintln!("[csv] {}", path.display()),
            Err(e) => eprintln!("[csv] write failed: {e}"),
        }
    }
    if report.all_checks_pass() {
        ExitCode::SUCCESS
    } else {
        eprintln!("report check(s) FAILED");
        ExitCode::FAILURE
    }
}

/// Times `runs` repetitions of `f` and returns seconds per repetition
/// (minimum over repetitions, to shed scheduler noise).
fn time_best(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// The solve-phase leg behind `BENCH_PR7.json`: a θ sweep per solver
/// through the naive pre-engine path (tables hoisted, naive inner loops —
/// `synts::reference`) and through the sweep-scale engine, on the same
/// instance. Returns `(baseline_s, engine_s)` per solver key.
fn solve_phase_leg(
    cfg: &synts_core::SystemConfig,
    profiles: &[synts_core::ThreadProfile<timing::ErrorCurve>],
    thetas: &[f64],
) -> Result<Json, synts_core::OptError> {
    use synts_core::solver::{Milp, Poly};

    let requests: Vec<SolveRequest<'_, timing::ErrorCurve>> = thetas
        .iter()
        .map(|&theta| SolveRequest::new(cfg, profiles, theta))
        .collect();
    // Warm up every timed path once (and surface errors before timing —
    // the warm and cold MILP explore different trees, so each must prove
    // itself here rather than panic inside a timing closure).
    reference::poly_sweep_naive(cfg, profiles, thetas)?;
    reference::milp_sweep_naive(cfg, profiles, thetas)?;
    for r in Poly
        .solve_batch(&requests)
        .into_iter()
        .chain(Milp::default().solve_batch(&requests))
    {
        r?;
    }

    const RUNS: usize = 5;
    let poly_naive_s = time_best(RUNS, || {
        reference::poly_sweep_naive(cfg, profiles, thetas).expect("warmed up");
    });
    let poly_engine_s = time_best(RUNS, || {
        for r in Poly.solve_batch(&requests) {
            r.expect("warmed up");
        }
    });
    let milp_naive_s = time_best(RUNS, || {
        reference::milp_sweep_naive(cfg, profiles, thetas).expect("warmed up");
    });
    let milp_engine_s = time_best(RUNS, || {
        for r in Milp::default().solve_batch(&requests) {
            r.expect("warmed up");
        }
    });
    // Exhaustive: the raw (Q·S)^M odometer vs the dominance-pruned one,
    // on a single θ (the naive grid is 3.1 M combinations for 4
    // threads). The record always carries every key: when a leg cannot
    // run within EXHAUSTIVE_LIMIT its timing is null, never absent.
    let stats = synts_core::pruning_stats(cfg, profiles)?;
    let theta_mid = thetas[thetas.len() / 2];
    let engine_s = if stats.pruned_combinations <= synts_core::EXHAUSTIVE_LIMIT {
        synts_core::synts_exhaustive(cfg, profiles, theta_mid)?;
        Some(time_best(2, || {
            synts_core::synts_exhaustive(cfg, profiles, theta_mid).expect("warmed up");
        }))
    } else {
        None
    };
    let naive_s = if stats.raw_combinations <= synts_core::EXHAUSTIVE_LIMIT {
        reference::synts_exhaustive_naive(cfg, profiles, theta_mid)?;
        Some(time_best(2, || {
            reference::synts_exhaustive_naive(cfg, profiles, theta_mid).expect("warmed up");
        }))
    } else {
        None
    };
    let opt_num = |v: Option<f64>| v.map_or(Json::Null, Json::num);
    let exhaustive = Json::obj()
        .field("baseline_s", opt_num(naive_s))
        .field("engine_s", opt_num(engine_s))
        .field(
            "speedup",
            opt_num(match (naive_s, engine_s) {
                (Some(n), Some(e)) => Some(n / e.max(1e-12)),
                _ => None,
            }),
        )
        .field("raw_combinations", Json::num(stats.raw_combinations as f64))
        .field(
            "pruned_combinations",
            Json::num(stats.pruned_combinations as f64),
        );
    let solver_obj = |baseline: f64, engine: f64| {
        Json::obj()
            .field("baseline_s", Json::num(baseline))
            .field("engine_s", Json::num(engine))
            .field("speedup", Json::num(baseline / engine.max(1e-12)))
    };
    Ok(Json::obj()
        .field("threads", Json::num(profiles.len() as f64))
        .field("theta_points", Json::num(thetas.len() as f64))
        .field("points_total", Json::num(stats.total_points as f64))
        .field("points_pruned", Json::num(stats.pruned_points as f64))
        .field("poly", solver_obj(poly_naive_s, poly_engine_s))
        .field("milp", solver_obj(milp_naive_s, milp_engine_s))
        .field("exhaustive", exhaustive))
}

/// The scenario-service leg behind `BENCH_PR7.json`: stand up an
/// in-process `synts-serve` (HTTP and all), submit the spec twice, and
/// time submit→report round trips. The first pass populates the
/// service's characterization cache; the second — the row that matters —
/// is the warm-cache service overhead (sharding + queue + HTTP + merge)
/// over the same sweep. Also asserts the fetched report is
/// byte-identical to the monolithic run's canonical JSON.
fn service_leg(spec: &ScenarioSpec, monolithic_json: &str) -> Result<Json, String> {
    let cache_dir = std::env::temp_dir().join(format!("synts-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 2,
        max_shards: 4,
        max_attempts: 2,
        cache: CharCache::at_dir(&cache_dir),
        registry: SolverRegistry::with_defaults(),
        journal: None,
        faults: None,
        ..ServiceConfig::default()
    }));
    let mut server =
        Server::bind("127.0.0.1:0", Arc::clone(&service)).map_err(|e| format!("bind: {e}"))?;
    let client = Client::new(server.addr().to_string());
    let spec_json = spec.to_json_string();
    let timeout = Duration::from_secs(1800);
    let round_trip = || -> Result<(f64, String), String> {
        let t = Instant::now();
        let id = client.submit(&spec_json).map_err(|e| e.to_string())?;
        let body = client
            .wait_report(&id, false, timeout)
            .map_err(|e| e.to_string())?;
        Ok((t.elapsed().as_secs_f64(), body))
    };
    let result = round_trip().and_then(|(cold_s, _)| {
        let (warm_s, body) = round_trip()?;
        if body != monolithic_json {
            return Err("service report diverged from the monolithic run".to_string());
        }
        let shards = service.stats().done; // jobs, each sharded; shard count below
        Ok(Json::obj()
            .field("workers", Json::num(2.0))
            .field("max_shards", Json::num(4.0))
            .field("jobs_done", Json::num(shards as f64))
            .field("cold_submit_to_report_s", Json::num(cold_s))
            .field("warm_submit_to_report_s", Json::num(warm_s))
            .field("matches_monolithic", Json::Bool(true)))
    });
    server.shutdown(Shutdown::Now);
    let _ = std::fs::remove_dir_all(&cache_dir);
    result
}

/// The chaos leg: the same spec through a service with an **armed
/// fault plan** — a third of cache writes dropped, every shard's first
/// attempt panicked — which must still converge to the monolithic
/// bytes. Records the deterministic fired-site ledger so two bench runs
/// on one machine can be diffed for fault-schedule drift.
fn chaos_leg(spec: &ScenarioSpec, monolithic_json: &str) -> Result<Json, String> {
    const PLAN: &str = "seed=29;cache.write=1/3;exec.panic=~#a0";
    let plan = Arc::new(FaultPlan::parse(PLAN).map_err(|e| e.to_string())?);
    let cache_dir = std::env::temp_dir().join(format!("synts-bench-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache_before = CacheStats::snapshot();
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 2,
        max_shards: 4,
        max_attempts: 3,
        cache: CharCache::at_dir(&cache_dir),
        registry: SolverRegistry::with_defaults(),
        journal: None,
        faults: Some(Arc::clone(&plan)),
        ..ServiceConfig::default()
    }));
    let t = Instant::now();
    let id = service.submit(spec.clone()).map_err(|e| e.to_string())?.id;
    let deadline = Instant::now() + Duration::from_secs(1800);
    let result = loop {
        match service.report(&id) {
            ReportOutcome::Ready(report) => break Ok(report.to_json_string()),
            ReportOutcome::Pending(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            other => break Err(format!("chaos job did not finish: {other:?}")),
        }
    };
    let elapsed_s = t.elapsed().as_secs_f64();
    let retries = service.status(&id).map_or(0, |s| s.retries);
    let cache_stats = CacheStats::snapshot().since(cache_before);
    service.shutdown(Shutdown::Now);
    let _ = std::fs::remove_dir_all(&cache_dir);
    let body = result?;
    if body != monolithic_json {
        return Err("chaos-run report diverged from the monolithic run".to_string());
    }
    let mut fired = Json::obj();
    for (site, count) in plan.fired_counts() {
        fired = fired.field(&site, Json::num(count as f64));
    }
    Ok(Json::obj()
        .field("plan", Json::str(PLAN))
        .field("submit_to_report_s", Json::num(elapsed_s))
        .field("retries", Json::num(f64::from(retries)))
        .field(
            "cache_write_errors",
            Json::num(cache_stats.write_errors as f64),
        )
        .field("fired", fired)
        .field("matches_monolithic", Json::Bool(true)))
}

/// The gate-sim leg behind `BENCH_PR7.json`: the same sampled delay
/// trace for every thread of the spec's first barrier interval, once
/// through the retired scalar loop (`delay_trace_into_scalar`) and once
/// through the 64-lane bit-parallel batch (`delay_trace_into`). The two
/// paths are property-tested bit-identical (`tests/bitparallel_sim.rs`),
/// so this row is a pure wall-clock comparison.
fn gatesim_leg(
    stage: circuits::StageKind,
    trace: &workloads::WorkloadTrace,
    harness: &synts_core::experiments::HarnessConfig,
) -> Result<Json, String> {
    let charac = timing::StageCharacterizer::new(stage, harness.workload.width)
        .map_err(|e| e.to_string())?;
    let interval = trace
        .intervals
        .first()
        .ok_or_else(|| "trace has no intervals".to_string())?;
    let mut scratch = Vec::new();
    let mut pass = |scalar: bool| -> Result<f64, String> {
        let t = Instant::now();
        for work in interval.iter() {
            let r = if scalar {
                charac.delay_trace_into_scalar(&work.events, harness.max_samples, &mut scratch)
            } else {
                charac.delay_trace_into(&work.events, harness.max_samples, &mut scratch)
            };
            r.map_err(|e| e.to_string())?;
        }
        Ok(t.elapsed().as_secs_f64())
    };
    // One warm pass per path surfaces errors before the timed loops.
    pass(true)?;
    pass(false)?;
    const RUNS: usize = 3;
    let mut scalar_s = f64::INFINITY;
    let mut wide_s = f64::INFINITY;
    for _ in 0..RUNS {
        scalar_s = scalar_s.min(pass(true)?);
        wide_s = wide_s.min(pass(false)?);
    }
    Ok(Json::obj()
        .field("threads", Json::num(interval.threads() as f64))
        .field("max_samples", Json::num(harness.max_samples as f64))
        .field("scalar_s", Json::num(scalar_s))
        .field("bitparallel_s", Json::num(wide_s))
        .field("speedup", Json::num(scalar_s / wide_s.max(1e-12))))
}

/// The perf smoke behind `BENCH_PR7.json`: characterization fast path
/// (cold/warm cache), the spec's end-to-end sweep, the solve-phase
/// engine-vs-naive comparison per solver, a cold corpus worker-count
/// series with its per-phase time breakdown, the scalar-vs-64-lane
/// gate-sim row, and the scenario-service submit→report round trip — so
/// the repo carries a wall-clock trajectory.
fn bench(args: RunArgs) -> ExitCode {
    let spec = match load_spec(&args) {
        Ok(spec) => spec,
        Err(code) => return code,
    };
    let out_path = args
        .bench_out
        .clone()
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());
    let workers = worker_count(spec.workers);
    let pool = ThreadPool::new(workers);
    let harness = spec.quality.harness();

    // A throwaway cache directory guarantees a genuinely cold first pass.
    let cache_dir = std::env::temp_dir().join(format!("synts-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache = CharCache::at_dir(&cache_dir);

    eprintln!(
        "[synts-cli] bench '{}' ({} quality, {workers} worker(s))...",
        spec.name,
        spec.quality.name()
    );
    let t0 = Instant::now();
    let data = match characterize_cached(spec.benchmark, spec.stage, &harness, &cache, pool) {
        Ok(data) => data,
        Err(e) => {
            eprintln!("cold characterization failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cold_build_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let warm = match characterize_cached(spec.benchmark, spec.stage, &harness, &cache, pool) {
        Ok(data) => data,
        Err(e) => {
            eprintln!("warm characterization failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warm_build_s = t1.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&cache_dir);
    if warm.tnom_v1.to_bits() != data.tnom_v1.to_bits() {
        eprintln!("warm characterization diverged from cold");
        return ExitCode::FAILURE;
    }

    let t2 = Instant::now();
    let report = match Experiment::new(spec.clone()).run_on(&data) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sweep_s = t2.elapsed().as_secs_f64();

    // Solve-phase leg: naive vs engine on the spec's most heterogeneous
    // interval over a dense θ grid (PR 5's hot path).
    let cfg = data.system_config();
    let profiles = data.intervals[data.most_heterogeneous_interval()].profiles();
    let solvers = default_theta_sweep(&cfg, &profiles, 33, 2.0)
        .and_then(|thetas| solve_phase_leg(&cfg, &profiles, &thetas));
    let solvers = match solvers {
        Ok(json) => json,
        Err(e) => {
            eprintln!("solve-phase bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Corpus fan-out: the same 3×3 quick subset across a worker-count
    // series. Every row gets its own throwaway cache directory and
    // asserts zero cache hits afterwards — a stale or shared cache would
    // otherwise serve rows from disk and fake (or mask) a scaling
    // change, which is exactly how the old 0.9× "speedup" record
    // slipped through.
    let corpus_benchmarks = [
        workloads::Benchmark::Radix,
        workloads::Benchmark::Cholesky,
        workloads::Benchmark::Fmm,
    ];
    let corpus_stages = circuits::StageKind::ALL;
    let phases_before = PhaseStats::snapshot();
    let mut corpus_rows = Vec::new();
    let mut corpus_seq_s = f64::NAN;
    let mut corpus_4w_s = f64::NAN;
    for w in [1usize, 2, 4] {
        let row_dir =
            std::env::temp_dir().join(format!("synts-bench-corpus-{}-{w}w", std::process::id()));
        let _ = std::fs::remove_dir_all(&row_dir);
        let stats_before = CacheStats::snapshot();
        let t = Instant::now();
        let built = Corpus::build_subset_with(
            Effort::Quick,
            &corpus_benchmarks,
            &corpus_stages,
            &CharCache::at_dir(&row_dir),
            ThreadPool::new(w),
        );
        let secs = t.elapsed().as_secs_f64();
        let row_stats = CacheStats::snapshot().since(stats_before);
        let _ = std::fs::remove_dir_all(&row_dir);
        if let Err(e) = built {
            eprintln!("corpus build failed at {w} workers: {e}");
            return ExitCode::FAILURE;
        }
        if row_stats.hits != 0 {
            eprintln!(
                "corpus row at {w} workers was not cold: {} cache hit(s)",
                row_stats.hits
            );
            return ExitCode::FAILURE;
        }
        if w == 1 {
            corpus_seq_s = secs;
        }
        if w == 4 {
            corpus_4w_s = secs;
        }
        corpus_rows.push(
            Json::obj()
                .field("workers", Json::num(w as f64))
                .field("seconds", Json::num(secs))
                .field("speedup", Json::num(corpus_seq_s / secs.max(1e-9)))
                .field("cache_hits", Json::num(row_stats.hits as f64))
                .field("cache_misses", Json::num(row_stats.misses as f64)),
        );
    }
    // Per-phase wall-clock across the whole series: phase time sums over
    // workers, so a phase whose time approaches workers × elapsed is the
    // one parallelizing (and the one to blame when scaling stalls).
    let phase_rows = PhaseStats::snapshot().since(phases_before).rows();
    let mut phase_obj = Json::obj();
    for (name, ns) in phase_rows {
        phase_obj = phase_obj.field(name, Json::num(ns as f64 / 1e9));
    }

    // Scaling gate: on a machine that can actually run 4 workers, a
    // 4-worker cold build must beat the sequential one by ≥1.5×. On
    // smaller machines the series is recorded but not enforced — a
    // 1-core container measuring ~1× is physics, not a regression.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let gate_enforced = cores >= 4;
    let four_way_speedup = corpus_seq_s / corpus_4w_s.max(1e-9);
    if gate_enforced && four_way_speedup < 1.5 {
        eprintln!(
            "corpus scaling regression: {four_way_speedup:.2}x at 4 workers (< 1.5x) \
             on a {cores}-core machine"
        );
        return ExitCode::FAILURE;
    }

    // Scalar vs 64-lane gate sim on the spec's own workload.
    let gatesim = match gatesim_leg(
        report.spec.stage,
        &report.spec.benchmark.run(&harness.workload),
        &harness,
    ) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("gate-sim bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Service round trip: in-process synts-serve, warm-cache submit→report.
    let service = match service_leg(&spec, &report.to_json_string()) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("service bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Chaos leg: the same spec through an armed fault plan must still
    // produce the monolithic bytes (and a deterministic fault ledger).
    let chaos = match chaos_leg(&spec, &report.to_json_string()) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("chaos bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let record = Json::obj()
        .field("spec", Json::str(&report.spec.name))
        .field("benchmark", Json::str(report.spec.benchmark.name()))
        .field("stage", Json::str(report.spec.stage.name()))
        .field("quality", Json::str(report.spec.quality.name()))
        .field("workers", Json::num(workers as f64))
        .field("cores_available", Json::num(cores as f64))
        .field(
            "characterization",
            Json::obj()
                .field("cold_build_s", Json::num(cold_build_s))
                .field("warm_build_s", Json::num(warm_build_s))
                .field(
                    "warm_speedup",
                    Json::num(cold_build_s / warm_build_s.max(1e-9)),
                ),
        )
        .field("sweep_s", Json::num(sweep_s))
        .field("solve_phase", solvers)
        .field(
            "corpus",
            Json::obj()
                .field("benchmarks", Json::num(corpus_benchmarks.len() as f64))
                .field("stages", Json::num(corpus_stages.len() as f64))
                .field("workers", Json::arr(corpus_rows))
                .field("phase_seconds", phase_obj)
                .field(
                    "scaling_gate",
                    Json::obj()
                        .field("enforced", Json::Bool(gate_enforced))
                        .field("required_4w_speedup", Json::num(1.5))
                        .field("measured_4w_speedup", Json::num(four_way_speedup)),
                ),
        )
        .field("gatesim", gatesim)
        .field("service", service)
        .field("chaos", chaos);
    let text = record.render_pretty();
    print!("{text}");
    if let Err(e) = std::fs::write(&out_path, &text) {
        eprintln!("[bench] write failed: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[bench] {out_path}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => match parse_run_args(&args[1..], CliMode::Run, None) {
            Some(run_args) => run(run_args),
            None => usage(),
        },
        Some("bench") => match parse_run_args(
            &args[1..],
            CliMode::Bench,
            Some("crates/bench/specs/fig-6-12.json"),
        ) {
            Some(run_args) => bench(run_args),
            None => usage(),
        },
        Some("check") => match parse_check_args(&args[1..]) {
            Some(check_args) => check(&check_args),
            None => usage(),
        },
        Some("submit") => match parse_service_args(&args[1..]) {
            Some(svc_args) => submit(&svc_args),
            None => usage(),
        },
        Some("status") => match parse_service_args(&args[1..]) {
            Some(svc_args) => job_status(&svc_args),
            None => usage(),
        },
        Some("fetch") => match parse_service_args(&args[1..]) {
            Some(svc_args) => fetch(&svc_args),
            None => usage(),
        },
        Some("schemes") => schemes(),
        Some("template") => template(),
        _ => usage(),
    }
}
