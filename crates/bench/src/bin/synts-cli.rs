//! `synts-cli` — run declarative scenario specs from disk.
//!
//! ```text
//! synts-cli run <spec.json> [--quick|--paper] [--workers N]
//!                           [--json <out.json>] [--csv <out.csv>] [--quiet]
//! synts-cli schemes
//! synts-cli template
//! ```
//!
//! `run` loads a [`ScenarioSpec`] JSON file (e.g. the committed paper
//! figures under `crates/bench/specs/`), executes it through the single
//! [`Experiment`] entry point, prints the structured report as a text
//! table and optionally writes JSON/CSV sinks. The exit status is
//! non-zero if any report check fails, so a spec file doubles as a CI
//! assertion. `schemes` lists every registry key a spec may name, and
//! `template` prints a starter spec to edit.

use std::process::ExitCode;

use synts_bench::render::{report_text, save_csv, write_csv};
use synts_core::{Experiment, IntervalSelection, Quality, ScenarioSpec, SolverRegistry, ThetaSpec};

fn usage() -> ExitCode {
    eprintln!(
        "usage: synts-cli run <spec.json> [--quick|--paper] [--workers N] \
         [--json <out.json>] [--csv <out.csv>] [--quiet]\n\
         \x20      synts-cli schemes\n\
         \x20      synts-cli template"
    );
    ExitCode::from(2)
}

fn schemes() -> ExitCode {
    let registry: SolverRegistry = SolverRegistry::with_defaults();
    println!("{:<18} {:<22} capabilities", "key", "label");
    println!("{}", "-".repeat(64));
    for (name, solver) in registry.iter() {
        let caps = solver.capabilities();
        let mut tags = Vec::new();
        if caps.exact {
            tags.push("exact");
        }
        if caps.polynomial {
            tags.push("polynomial");
        }
        if caps.uses_theta {
            tags.push("uses-theta");
        }
        if caps.speculates {
            tags.push("speculates");
        }
        println!("{:<18} {:<22} {}", name, solver.label(), tags.join(", "));
    }
    ExitCode::SUCCESS
}

fn template() -> ExitCode {
    let spec = ScenarioSpec::new(
        "my-scenario",
        workloads::Benchmark::Radix,
        circuits::StageKind::Decode,
    )
    .schemes(["synts_poly", "per_core_ts", "no_ts"])
    .thetas(ThetaSpec::LogAroundEqualWeight {
        points: 9,
        decades: 2.0,
    })
    .intervals(IntervalSelection::All)
    .normalize_to("nominal")
    .verify_model(true);
    print!("{}", spec.to_json_string());
    ExitCode::SUCCESS
}

struct RunArgs {
    spec_path: String,
    quality: Option<Quality>,
    workers: Option<usize>,
    json_out: Option<String>,
    csv_out: Option<String>,
    quiet: bool,
}

fn parse_run_args(args: &[String]) -> Option<RunArgs> {
    let mut out = RunArgs {
        spec_path: String::new(),
        quality: None,
        workers: None,
        json_out: None,
        csv_out: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => out.quality = Some(Quality::Quick),
            "--paper" => out.quality = Some(Quality::Paper),
            "--quiet" => out.quiet = true,
            "--workers" => out.workers = Some(it.next()?.parse().ok()?),
            "--json" => out.json_out = Some(it.next()?.clone()),
            "--csv" => out.csv_out = Some(it.next()?.clone()),
            _ if arg.starts_with('-') || !out.spec_path.is_empty() => return None,
            _ => out.spec_path = arg.clone(),
        }
    }
    (!out.spec_path.is_empty()).then_some(out)
}

fn run(args: RunArgs) -> ExitCode {
    let src = match std::fs::read_to_string(&args.spec_path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("cannot read spec '{}': {e}", args.spec_path);
            return ExitCode::FAILURE;
        }
    };
    let mut spec = match ScenarioSpec::from_json_str(&src) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{}: {e}", args.spec_path);
            return ExitCode::FAILURE;
        }
    };
    if let Some(quality) = args.quality {
        spec.quality = quality;
    }
    if let Some(workers) = args.workers {
        spec.workers = Some(workers);
    }
    eprintln!(
        "[synts-cli] running '{}': {} on {} ({} quality)...",
        spec.name,
        spec.benchmark,
        spec.stage,
        spec.quality.name()
    );
    let report = match Experiment::new(spec).run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("scenario failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.quiet {
        print!("{}", report_text(&report));
    }
    if let Some(path) = &args.json_out {
        let path = std::path::Path::new(path);
        if let Err(e) = path
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .map_or(Ok(()), std::fs::create_dir_all)
            .and_then(|()| std::fs::write(path, report.to_json_string()))
        {
            eprintln!("[json] write failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[json] {}", path.display());
    }
    if let Some(path) = &args.csv_out {
        let (header, rows) = report.to_csv();
        if let Err(e) = write_csv(std::path::Path::new(path), &header, &rows) {
            eprintln!("[csv] write failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[csv] {path}");
    } else if args.json_out.is_none() && !args.quiet {
        // Default sink: a CSV under results/, like the repro binary.
        let (header, rows) = report.to_csv();
        match save_csv(&report.spec.name, &header, &rows) {
            Ok(path) => eprintln!("[csv] {}", path.display()),
            Err(e) => eprintln!("[csv] write failed: {e}"),
        }
    }
    if report.all_checks_pass() {
        ExitCode::SUCCESS
    } else {
        eprintln!("report check(s) FAILED");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => match parse_run_args(&args[1..]) {
            Some(run_args) => run(run_args),
            None => usage(),
        },
        Some("schemes") => schemes(),
        Some("template") => template(),
        _ => usage(),
    }
}
