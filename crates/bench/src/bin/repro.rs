//! `repro` — regenerates every table and figure of the SynTS paper.
//!
//! ```text
//! repro [--quick] <target>...
//! repro all                # everything, paper-scale workloads
//! repro --quick fig-3-5    # one figure, test-scale workloads
//! ```
//!
//! Each target prints its data table, saves a CSV under `results/`, and
//! evaluates the paper's qualitative claims (shape checks). Exit status is
//! non-zero if any requested check fails.
#![forbid(unsafe_code)]

use std::process::ExitCode;

use circuits::StageKind;
use synts_bench::corpus::{Corpus, Effort};
use synts_bench::ext_figures;
use synts_bench::figures::{self, Figure};
use synts_bench::render::save_csv;
use workloads::Benchmark;

const TARGETS: &[&str] = &[
    "table-5-1",
    "fig-1-2",
    "fig-3-5",
    "fig-3-6",
    "fig-5-10",
    "fig-6-11",
    "fig-6-12",
    "fig-6-13",
    "fig-6-14",
    "fig-6-15",
    "fig-6-16",
    "fig-6-17",
    "fig-6-18",
    "sec-5-4",
    "sec-6-3",
    "headline",
    "ablation-adders",
    "ablation-variation",
    "ablation-aging",
    "ablation-leakage",
    "ablation-power-cap",
    "ablation-predictor",
];

fn usage() -> ExitCode {
    eprintln!("usage: repro [--quick] <target>... | all");
    eprintln!("targets: {}", TARGETS.join(", "));
    ExitCode::from(2)
}

fn needs_corpus(target: &str) -> bool {
    !matches!(
        target,
        "table-5-1" | "fig-5-10" | "sec-6-3" | "ablation-variation" | "ablation-aging"
    )
}

fn generate(target: &str, corpus: Option<&Corpus>) -> Result<Figure, synts_core::OptError> {
    let c = || corpus.expect("corpus built for corpus-dependent targets");
    match target {
        "table-5-1" => figures::table_5_1(),
        "fig-1-2" => figures::fig_1_2(c()),
        "fig-3-5" => figures::fig_3_5(c()),
        "fig-3-6" => figures::fig_3_6(c()),
        "fig-5-10" => figures::fig_5_10(),
        "fig-6-11" => figures::fig_pareto(
            c(),
            "fig-6-11",
            "6.11",
            Benchmark::Fmm,
            StageKind::SimpleAlu,
        ),
        "fig-6-12" => figures::fig_pareto(
            c(),
            "fig-6-12",
            "6.12",
            Benchmark::Cholesky,
            StageKind::SimpleAlu,
        ),
        "fig-6-13" => figures::fig_pareto(
            c(),
            "fig-6-13",
            "6.13",
            Benchmark::Cholesky,
            StageKind::Decode,
        ),
        "fig-6-14" => figures::fig_pareto(
            c(),
            "fig-6-14",
            "6.14",
            Benchmark::Raytrace,
            StageKind::Decode,
        ),
        "fig-6-15" => figures::fig_pareto(
            c(),
            "fig-6-15",
            "6.15",
            Benchmark::Cholesky,
            StageKind::ComplexAlu,
        ),
        "fig-6-16" => figures::fig_pareto(
            c(),
            "fig-6-16",
            "6.16",
            Benchmark::Raytrace,
            StageKind::ComplexAlu,
        ),
        "fig-6-17" => figures::fig_6_17(c()),
        "fig-6-18" => figures::fig_6_18(c()),
        "sec-5-4" => figures::sec_5_4(c()),
        "sec-6-3" => figures::sec_6_3(),
        "headline" => figures::headline(c()),
        "ablation-adders" => figures::ablation_adders(c()),
        "ablation-variation" => ext_figures::ablation_variation(),
        "ablation-aging" => ext_figures::ablation_aging(),
        "ablation-leakage" => ext_figures::ablation_leakage(c()),
        "ablation-power-cap" => ext_figures::ablation_power_cap(c()),
        "ablation-predictor" => ext_figures::ablation_predictor(c()),
        _ => Err(synts_core::OptError::BadConfig("unknown repro target")),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::Paper;
    args.retain(|a| {
        if a == "--quick" {
            effort = Effort::Quick;
            false
        } else {
            true
        }
    });
    if args.is_empty() {
        return usage();
    }
    let targets: Vec<String> = if args.iter().any(|a| a == "all") {
        TARGETS.iter().map(|s| (*s).to_string()).collect()
    } else {
        args
    };
    for t in &targets {
        if !TARGETS.contains(&t.as_str()) {
            eprintln!("unknown target: {t}");
            return usage();
        }
    }

    let corpus = if targets.iter().any(|t| needs_corpus(t)) {
        eprintln!("[repro] characterizing workloads ({effort:?} effort)...");
        match Corpus::build(effort) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("corpus build failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let mut failed_checks = 0usize;
    for target in &targets {
        match generate(target, corpus.as_ref()) {
            Ok(fig) => {
                println!("\n=== {} ===", fig.title);
                println!("{}", fig.text);
                if let Some((header, rows)) = &fig.csv {
                    match save_csv(fig.id, header, rows) {
                        Ok(path) => println!("[csv] {}", path.display()),
                        Err(e) => eprintln!("[csv] write failed: {e}"),
                    }
                }
                for check in &fig.checks {
                    let mark = if check.pass { "PASS" } else { "FAIL" };
                    if !check.pass {
                        failed_checks += 1;
                    }
                    println!("[{mark}] {}", check.claim);
                }
            }
            Err(e) => {
                eprintln!("{target}: generation failed: {e}");
                failed_checks += 1;
            }
        }
    }
    println!();
    if failed_checks > 0 {
        println!("{failed_checks} shape check(s) FAILED");
        ExitCode::FAILURE
    } else {
        println!("all shape checks passed");
        ExitCode::SUCCESS
    }
}
