//! Extension-solver cost: the leakage-aware and power-capped variants
//! keep Algorithm 1's polynomial shape — these benches pin their overhead
//! against the baseline solver at paper scale (M = 4, Q = 7, S = 6) and at
//! a many-core scale (M = 64), plus the per-interval cost of the online
//! controller with `N_i` prediction.

use criterion::{criterion_group, criterion_main, Criterion};
use synts_core::criticality::{run_sequence, NiPredictor, PredictorKind};
use synts_core::leakage::{synts_poly_leakage, LeakageModel};
use synts_core::power_cap::synts_poly_power_capped;
use synts_core::{
    evaluate, nominal, synts_poly, SamplingPlan, SystemConfig, ThreadProfile, ThreadTrace,
};
use timing::{ErrorCurve, Voltage};

fn instance(m: usize) -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
    let cfg = SystemConfig::paper_default(10.0);
    let profiles = (0..m)
        .map(|i| {
            let lo = 0.3 + 0.4 * (i as f64 / m as f64);
            let delays: Vec<f64> = (0..256)
                .map(|n| lo + (0.99 - lo) * n as f64 / 256.0)
                .collect();
            ThreadProfile::new(
                5_000.0 + 1_000.0 * i as f64,
                1.0 + 0.02 * i as f64,
                ErrorCurve::from_normalized_delays(delays).expect("non-empty"),
            )
        })
        .collect();
    (cfg, profiles)
}

fn bench_extension_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    for m in [4usize, 64] {
        let (cfg, profiles) = instance(m);
        let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3).expect("valid");
        let nom = nominal(&cfg, &profiles).expect("nominal");
        let ed = evaluate(&cfg, &profiles, &nom);
        let cap = ed.energy / ed.time;
        group.bench_function(format!("poly-baseline/m{m}"), |b| {
            b.iter(|| synts_poly(&cfg, &profiles, 1.0).expect("solves"))
        });
        group.bench_function(format!("poly-leakage/m{m}"), |b| {
            b.iter(|| synts_poly_leakage(&cfg, &profiles, 1.0, &leak).expect("solves"))
        });
        group.bench_function(format!("poly-power-cap/m{m}"), |b| {
            b.iter(|| synts_poly_power_capped(&cfg, &profiles, cap).expect("solves"))
        });
    }
    group.finish();
}

fn bench_predicted_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicted-controller");
    group.sample_size(20);
    // Four threads, three stationary intervals of 3 000 instructions.
    let make_trace = |seed: u64| -> ThreadTrace {
        let mut state = seed;
        let delays: Vec<f64> = (0..3_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                0.4 + 0.55 * ((state >> 33) as f64 / (1u64 << 31) as f64)
            })
            .collect();
        ThreadTrace::new(delays, 1.0)
    };
    let intervals: Vec<Vec<ThreadTrace>> = (0..3u64)
        .map(|k| (0..4u64).map(|t| make_trace(k * 8 + t + 1)).collect())
        .collect();
    let cfg = SystemConfig::paper_default(10.0);
    let plan = SamplingPlan {
        n_samp: 300,
        v_samp: Voltage::NOMINAL,
        transition_cycles: 0.0,
    };
    group.bench_function("sequence/ewma/4x3", |b| {
        b.iter(|| {
            let mut p = NiPredictor::new(4, PredictorKind::Ewma(0.5)).expect("valid");
            run_sequence(&cfg, &intervals, 1.0, plan, &mut p).expect("runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_extension_solvers, bench_predicted_controller);
criterion_main!(benches);
