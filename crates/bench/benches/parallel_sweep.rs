//! Parallel θ-sweep scaling: `pareto_sweep_pooled` wall clock vs worker
//! count, on a paper-sized synthetic instance and on the repro corpus.
//!
//! Every θ point is an independent solve, so the sweep should scale near
//! linearly until the machine runs out of cores (target: ≥2× at 4 workers
//! on a ≥4-core host). The explicit speedup summary at the end exists
//! because the vendored criterion stand-in reports absolute times only.

use std::time::Instant;

use circuits::StageKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synts_bench::corpus::{Corpus, Effort};
use synts_core::{
    default_theta_sweep, pareto_sweep_pooled, Solver, SolverRegistry, SystemConfig, ThreadPool,
    ThreadProfile,
};
use timing::{ErrorCurve, VoltageTable};

const WORKER_GRID: [usize; 4] = [1, 2, 4, 8];

fn instance(m: usize, q: usize, s: usize) -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
    let mut cfg = SystemConfig::paper_default(10.0);
    let volts: Vec<f64> = (0..q).map(|j| 1.0 - 0.05 * j as f64).collect();
    cfg.voltages = VoltageTable::from_volts(volts).expect("in range");
    cfg.tsr_levels = (0..s)
        .map(|k| 0.64 + 0.36 * k as f64 / (s - 1) as f64)
        .collect();
    let profiles = (0..m)
        .map(|i| {
            let lo = 0.3 + 0.02 * i as f64;
            let delays: Vec<f64> = (0..256)
                .map(|n| lo + (0.99 - lo) * n as f64 / 256.0)
                .collect();
            ThreadProfile::new(
                5_000.0 + 1_000.0 * i as f64,
                1.0 + 0.05 * i as f64,
                ErrorCurve::from_normalized_delays(delays).expect("non-empty"),
            )
        })
        .collect();
    (cfg, profiles)
}

fn sweep_seconds(
    solver: &dyn Solver<ErrorCurve>,
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<ErrorCurve>],
    thetas: &[f64],
    pool: ThreadPool,
) -> f64 {
    // Warm-up, then a few timed repetitions.
    pareto_sweep_pooled(solver, cfg, profiles, thetas, pool).expect("sweeps");
    let iters = 3;
    let start = Instant::now();
    for _ in 0..iters {
        criterion::black_box(
            pareto_sweep_pooled(solver, cfg, profiles, thetas, pool).expect("sweeps"),
        );
    }
    start.elapsed().as_secs_f64() / f64::from(iters)
}

fn bench_synthetic_sweep(c: &mut Criterion) {
    let registry: SolverRegistry = SolverRegistry::with_defaults();
    let solver = registry.get("synts_poly").expect("registered");
    let (cfg, profiles) = instance(16, 7, 6);
    let thetas = default_theta_sweep(&cfg, &profiles, 64, 2.0).expect("grid");
    let mut group = c.benchmark_group("parallel_sweep");
    for workers in WORKER_GRID {
        let pool = ThreadPool::new(workers);
        group.bench_with_input(
            BenchmarkId::new("synts_poly/m16q7s6/theta64", workers),
            &pool,
            |b, pool| b.iter(|| pareto_sweep_pooled(&*solver, &cfg, &profiles, &thetas, *pool)),
        );
    }
    group.finish();

    let t1 = sweep_seconds(&*solver, &cfg, &profiles, &thetas, ThreadPool::new(1));
    println!(
        "parallel_sweep/speedup (host has {} core(s)):",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    for workers in WORKER_GRID {
        let tw = sweep_seconds(&*solver, &cfg, &profiles, &thetas, ThreadPool::new(workers));
        println!(
            "  {workers} worker(s): {:7.2} ms/sweep  ({:.2}x vs sequential)",
            tw * 1e3,
            t1 / tw
        );
    }
}

fn bench_corpus_sweep(c: &mut Criterion) {
    let corpus = Corpus::build_subset(
        Effort::Quick,
        &[workloads::Benchmark::Radix],
        &[StageKind::SimpleAlu],
    )
    .expect("corpus");
    let data = corpus
        .get(workloads::Benchmark::Radix, StageKind::SimpleAlu)
        .expect("characterized");
    let cfg = data.system_config();
    let profiles = data.intervals[0].profiles();
    let thetas = default_theta_sweep(&cfg, &profiles, 48, 2.0).expect("grid");
    let registry: SolverRegistry = SolverRegistry::with_defaults();
    let solver = registry.get("synts_poly").expect("registered");
    let mut group = c.benchmark_group("parallel_sweep_corpus");
    for workers in WORKER_GRID {
        let pool = ThreadPool::new(workers);
        group.bench_with_input(
            BenchmarkId::new("synts_poly/radix-simplealu/theta48", workers),
            &pool,
            |b, pool| b.iter(|| pareto_sweep_pooled(&*solver, &cfg, &profiles, &thetas, *pool)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_synthetic_sweep, bench_corpus_sweep);
criterion_main!(benches);
