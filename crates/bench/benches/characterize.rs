//! Cost of the trace → error-curve characterization pipeline.

use circuits::StageKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use timing::StageCharacterizer;
use workloads::{Benchmark, WorkloadConfig};

fn bench_characterize(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterize");
    group.sample_size(10);
    let cfg = WorkloadConfig::small(4);
    let trace = Benchmark::Radix.run(&cfg);
    let events = &trace.intervals[0].thread(0).events;
    for kind in [StageKind::Decode, StageKind::SimpleAlu] {
        let charac = StageCharacterizer::new(kind, cfg.width).expect("builds");
        for samples in [100usize, 400] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind}"), samples),
                &samples,
                |b, &n| b.iter(|| charac.error_curve_sampled(events, n).expect("curve")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_characterize);
criterion_main!(benches);
