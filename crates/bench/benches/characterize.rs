//! Cost of the trace → error-curve characterization pipeline — the
//! front-end this PR's fast path attacks. Groups:
//!
//! * `characterize` — one stage's error curve at two sample caps (the
//!   zero-alloc gate-sim inner loop);
//! * `delay_trace` — the streaming batch entry point vs. the
//!   `DelayTrace`-wrapping convenience path;
//! * `corpus` — a 2-benchmark × 2-stage corpus built sequentially, on
//!   the env pool, and from a warm on-disk cache.

use circuits::StageKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synts_bench::corpus::{Corpus, Effort};
use synts_core::{CharCache, ThreadPool};
use timing::StageCharacterizer;
use workloads::{Benchmark, WorkloadConfig};

fn bench_characterize(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterize");
    group.sample_size(10);
    let cfg = WorkloadConfig::small(4);
    let trace = Benchmark::Radix.run(&cfg);
    let events = &trace.intervals[0].thread(0).events;
    for kind in [StageKind::Decode, StageKind::SimpleAlu] {
        let charac = StageCharacterizer::new(kind, cfg.width).expect("builds");
        for samples in [100usize, 400] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind}"), samples),
                &samples,
                |b, &n| b.iter(|| charac.error_curve_sampled(events, n).expect("curve")),
            );
        }
    }
    group.finish();
}

fn bench_delay_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay_trace");
    group.sample_size(10);
    let cfg = WorkloadConfig::small(4);
    let trace = Benchmark::Radix.run(&cfg);
    let events = &trace.intervals[0].thread(0).events;
    let charac = StageCharacterizer::new(StageKind::SimpleAlu, cfg.width).expect("builds");
    group.bench_function("sampled/400", |b| {
        b.iter(|| charac.delay_trace_sampled(events, 400).expect("trace"))
    });
    group.bench_function("into/400", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            charac
                .delay_trace_into(events, 400, &mut buf)
                .expect("trace");
            buf.len()
        })
    });
    group.finish();
}

fn bench_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus");
    group.sample_size(10);
    let benchmarks = [Benchmark::Radix, Benchmark::Cholesky];
    let stages = [StageKind::Decode, StageKind::SimpleAlu];
    group.bench_function("cold/sequential", |b| {
        b.iter(|| {
            Corpus::build_subset_with(
                Effort::Quick,
                &benchmarks,
                &stages,
                &CharCache::disabled(),
                ThreadPool::sequential(),
            )
            .expect("corpus")
        })
    });
    group.bench_function("cold/pooled", |b| {
        b.iter(|| {
            Corpus::build_subset_with(
                Effort::Quick,
                &benchmarks,
                &stages,
                &CharCache::disabled(),
                ThreadPool::from_env(),
            )
            .expect("corpus")
        })
    });
    let dir = std::env::temp_dir().join(format!("synts-bench-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = CharCache::at_dir(&dir);
    // Prime once so the timed passes are pure warm lookups.
    Corpus::build_subset_with(
        Effort::Quick,
        &benchmarks,
        &stages,
        &cache,
        ThreadPool::from_env(),
    )
    .expect("prime");
    group.bench_function("warm/cache", |b| {
        b.iter(|| {
            Corpus::build_subset_with(
                Effort::Quick,
                &benchmarks,
                &stages,
                &cache,
                ThreadPool::from_env(),
            )
            .expect("corpus")
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(benches, bench_characterize, bench_delay_trace, bench_corpus);
criterion_main!(benches);
