//! Adder-topology ablation: characterization cost per SimpleALU variant
//! (the result-side comparison lives in `repro ablation-adders`).

use circuits::{AdderKind, SimpleAlu};
use criterion::{criterion_group, criterion_main, Criterion};
use timing::StageCharacterizer;
use workloads::{Benchmark, WorkloadConfig};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let cfg = WorkloadConfig::small(4);
    let trace = Benchmark::Radix.run(&cfg);
    let events = &trace.intervals[0].thread(0).events;
    for kind in AdderKind::ALL {
        let name = kind.name();
        let alu = SimpleAlu::with_adder(16, kind).expect("builds");
        let charac = StageCharacterizer::from_stage(Box::new(alu)).expect("sta");
        group.bench_function(name, |b| {
            b.iter(|| charac.error_curve_sampled(events, 200).expect("curve"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
