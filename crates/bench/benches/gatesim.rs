//! Dynamic timing-simulation throughput per pipe stage.

use circuits::{build_stage, AluEvent, AluOp, StageKind};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gatelib::{TimingSim, Voltage};

fn bench_gatesim(c: &mut Criterion) {
    let mut group = c.benchmark_group("gatesim");
    for kind in StageKind::ALL {
        let stage = build_stage(kind, 16).expect("builds");
        let mut state = 0xABCDu64;
        let events: Vec<Vec<bool>> = (0..512)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let op = AluOp::ALL[(state >> 60) as usize % AluOp::ALL.len()];
                stage.encode(&AluEvent::new(op, state & 0xFFFF, (state >> 16) & 0xFFFF))
            })
            .collect();
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_function(format!("{kind}"), |b| {
            let mut sim = TimingSim::new(stage.netlist(), Voltage::NOMINAL).expect("sim");
            b.iter(|| {
                let mut acc = 0.0f64;
                for ev in &events {
                    acc += sim.apply(ev).expect("applies").delay;
                }
                acc
            })
        });
        // The allocation-free inner loop the characterization pipeline
        // drives: same transitions, no output vector per vector.
        group.bench_function(format!("{kind}/step"), |b| {
            let mut sim = TimingSim::new(stage.netlist(), Voltage::NOMINAL).expect("sim");
            b.iter(|| {
                let mut acc = 0.0f64;
                for ev in &events {
                    acc += sim.step(ev).expect("applies").delay;
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gatesim);
criterion_main!(benches);
