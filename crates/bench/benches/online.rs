//! Per-interval cost of the online controller (estimate + optimize +
//! account) — the computation SynTS adds to every barrier interval.

use criterion::{criterion_group, criterion_main, Criterion};
use synts_core::{run_interval, SamplingPlan, SystemConfig, ThreadTrace};

fn traces(n: usize) -> Vec<ThreadTrace> {
    (0..4)
        .map(|t| {
            let mut state = 0x1234u64 + t;
            let delays: Vec<f64> = (0..n)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    0.3 + 0.65 * ((state >> 33) as f64 / (1u64 << 31) as f64)
                })
                .collect();
            ThreadTrace::new(delays, 1.2)
        })
        .collect()
}

fn bench_online(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default(50.0);
    let mut group = c.benchmark_group("online");
    for n in [2_000usize, 12_000] {
        let tr = traces(n);
        let plan = SamplingPlan::paper_default(n, cfg.s());
        group.bench_function(format!("interval/{n}"), |b| {
            b.iter(|| run_interval(&cfg, &tr, 1.0, plan).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
