//! Solver scaling: SynTS-Poly vs SynTS-MILP vs exhaustive search, and
//! the PR 5 sweep-scale engine vs the naive pre-engine paths.
//!
//! The paper's argument for Algorithm 1 is that MILP runtimes scale poorly
//! for online use; this bench quantifies the gap on identical instances.
//! The `sweep` group measures what `BENCH_PR5.json` records: a whole θ
//! grid per solver through `synts::reference` (tables hoisted, naive
//! inner loops) against the engine (sorted tables, dominance pruning,
//! warm-started MILP) on paper-default sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synts_core::solver::{Milp, Poly};
use synts_core::{
    log_theta_grid, reference, synts_exhaustive, synts_poly, SolveRequest, Solver, SolverRegistry,
    SystemConfig, ThreadProfile,
};
use timing::{ErrorCurve, VoltageTable};

fn instance(m: usize, q: usize, s: usize) -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
    let mut cfg = SystemConfig::paper_default(10.0);
    let volts: Vec<f64> = (0..q).map(|j| 1.0 - 0.05 * j as f64).collect();
    cfg.voltages = VoltageTable::from_volts(volts).expect("in range");
    cfg.tsr_levels = (0..s)
        .map(|k| 0.64 + 0.36 * k as f64 / (s - 1) as f64)
        .collect();
    let profiles = (0..m)
        .map(|i| {
            let lo = 0.3 + 0.05 * i as f64;
            let delays: Vec<f64> = (0..256)
                .map(|n| lo + (0.99 - lo) * n as f64 / 256.0)
                .collect();
            ThreadProfile::new(
                5_000.0 + 1_000.0 * i as f64,
                1.0 + 0.1 * i as f64,
                ErrorCurve::from_normalized_delays(delays).expect("non-empty"),
            )
        })
        .collect();
    (cfg, profiles)
}

fn bench_solvers(c: &mut Criterion) {
    let registry: SolverRegistry = SolverRegistry::with_defaults();
    let mut group = c.benchmark_group("solver");
    // Small instance where all three exact solvers are feasible,
    // dispatched through the registry (the cost of dynamic dispatch is
    // part of what production sweeps pay).
    let (cfg, profiles) = instance(4, 3, 3);
    for name in ["synts_poly", "synts_milp", "synts_exhaustive"] {
        let solver = registry.get(name).expect("registered");
        group.bench_function(format!("{name}/m4q3s3"), |b| {
            b.iter(|| solver.solve(&cfg, &profiles, 1.0).expect("solves"))
        });
    }
    // Paper-sized instance: poly only (the point of Algorithm 1).
    let (cfg, profiles) = instance(4, 7, 6);
    group.bench_function("poly/m4q7s6", |b| {
        b.iter(|| synts_poly(&cfg, &profiles, 1.0).expect("solves"))
    });
    // Scaling in thread count.
    for m in [2usize, 8, 16, 32] {
        let (cfg, profiles) = instance(m, 7, 6);
        group.bench_with_input(BenchmarkId::new("poly/threads", m), &m, |b, _| {
            b.iter(|| synts_poly(&cfg, &profiles, 1.0).expect("solves"))
        });
    }
    group.finish();
}

/// θ-sweep solve phase on the paper-default size (`m4 q7 s6`, 42 points
/// per thread): naive reference paths vs the sweep-scale engine.
fn bench_sweep_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    let (cfg, profiles) = instance(4, 7, 6);
    let thetas = log_theta_grid(1.0, 17, 2.0);
    let requests: Vec<SolveRequest<'_, ErrorCurve>> = thetas
        .iter()
        .map(|&theta| SolveRequest::new(&cfg, &profiles, theta))
        .collect();

    group.bench_function("poly/naive/m4q7s6x17", |b| {
        b.iter(|| reference::poly_sweep_naive(&cfg, &profiles, &thetas).expect("solves"))
    });
    group.bench_function("poly/engine/m4q7s6x17", |b| {
        b.iter(|| {
            for r in Poly.solve_batch(&requests) {
                r.expect("solves");
            }
        })
    });
    group.bench_function("milp/naive/m4q7s6x17", |b| {
        b.iter(|| reference::milp_sweep_naive(&cfg, &profiles, &thetas).expect("solves"))
    });
    group.bench_function("milp/engine/m4q7s6x17", |b| {
        b.iter(|| {
            for r in Milp::default().solve_batch(&requests) {
                r.expect("solves");
            }
        })
    });
    // Exhaustive: one θ (the raw odometer is 42^4 ≈ 3.1 M combinations).
    group.bench_function("exhaustive/naive/m4q7s6", |b| {
        b.iter(|| reference::synts_exhaustive_naive(&cfg, &profiles, 1.0).expect("solves"))
    });
    group.bench_function("exhaustive/engine/m4q7s6", |b| {
        b.iter(|| synts_exhaustive(&cfg, &profiles, 1.0).expect("solves"))
    });
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_sweep_engine);
criterion_main!(benches);
