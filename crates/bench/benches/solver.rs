//! Solver scaling: SynTS-Poly vs SynTS-MILP vs exhaustive search.
//!
//! The paper's argument for Algorithm 1 is that MILP runtimes scale poorly
//! for online use; this bench quantifies the gap on identical instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synts_core::{synts_poly, SolverRegistry, SystemConfig, ThreadProfile};
use timing::{ErrorCurve, VoltageTable};

fn instance(m: usize, q: usize, s: usize) -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
    let mut cfg = SystemConfig::paper_default(10.0);
    let volts: Vec<f64> = (0..q).map(|j| 1.0 - 0.05 * j as f64).collect();
    cfg.voltages = VoltageTable::from_volts(volts).expect("in range");
    cfg.tsr_levels = (0..s)
        .map(|k| 0.64 + 0.36 * k as f64 / (s - 1) as f64)
        .collect();
    let profiles = (0..m)
        .map(|i| {
            let lo = 0.3 + 0.05 * i as f64;
            let delays: Vec<f64> = (0..256)
                .map(|n| lo + (0.99 - lo) * n as f64 / 256.0)
                .collect();
            ThreadProfile::new(
                5_000.0 + 1_000.0 * i as f64,
                1.0 + 0.1 * i as f64,
                ErrorCurve::from_normalized_delays(delays).expect("non-empty"),
            )
        })
        .collect();
    (cfg, profiles)
}

fn bench_solvers(c: &mut Criterion) {
    let registry: SolverRegistry = SolverRegistry::with_defaults();
    let mut group = c.benchmark_group("solver");
    // Small instance where all three exact solvers are feasible,
    // dispatched through the registry (the cost of dynamic dispatch is
    // part of what production sweeps pay).
    let (cfg, profiles) = instance(4, 3, 3);
    for name in ["synts_poly", "synts_milp", "synts_exhaustive"] {
        let solver = registry.get(name).expect("registered");
        group.bench_function(format!("{name}/m4q3s3"), |b| {
            b.iter(|| solver.solve(&cfg, &profiles, 1.0).expect("solves"))
        });
    }
    // Paper-sized instance: poly only (the point of Algorithm 1).
    let (cfg, profiles) = instance(4, 7, 6);
    group.bench_function("poly/m4q7s6", |b| {
        b.iter(|| synts_poly(&cfg, &profiles, 1.0).expect("solves"))
    });
    // Scaling in thread count.
    for m in [2usize, 8, 16, 32] {
        let (cfg, profiles) = instance(m, 7, 6);
        group.bench_with_input(BenchmarkId::new("poly/threads", m), &m, |b, _| {
            b.iter(|| synts_poly(&cfg, &profiles, 1.0).expect("solves"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
