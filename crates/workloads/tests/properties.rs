//! Property tests over the workload kernels: the invariants every consumer
//! of the traces relies on.

use proptest::prelude::*;
use workloads::{Benchmark, WorkloadConfig};

fn config_strategy() -> impl Strategy<Value = WorkloadConfig> {
    (2usize..5, 64usize..200, 1usize..4, any::<u32>()).prop_map(
        |(threads, scale, intervals, seed)| WorkloadConfig {
            threads,
            scale,
            intervals,
            width: 16,
            seed: u64::from(seed),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_benchmark_is_deterministic(cfg in config_strategy()) {
        for bench in Benchmark::ALL {
            let a = bench.run(&cfg);
            let b = bench.run(&cfg);
            prop_assert_eq!(a.intervals.len(), b.intervals.len(), "{}", bench);
            for (ia, ib) in a.intervals.iter().zip(&b.intervals) {
                for t in 0..ia.threads() {
                    prop_assert_eq!(&ia.thread(t).events, &ib.thread(t).events);
                }
            }
        }
    }

    #[test]
    fn operands_respect_the_datapath_width(cfg in config_strategy()) {
        let mask = (1u64 << cfg.width) - 1;
        for bench in Benchmark::ALL {
            let trace = bench.run(&cfg);
            for iv in &trace.intervals {
                for work in iv {
                    for e in &work.events {
                        prop_assert!(e.a <= mask && e.b <= mask, "{bench}: operand overflow");
                    }
                }
            }
        }
    }

    #[test]
    fn thread_and_interval_shapes(cfg in config_strategy()) {
        for bench in Benchmark::ALL {
            let trace = bench.run(&cfg);
            prop_assert!(!trace.intervals.is_empty(), "{bench}");
            prop_assert!(trace.intervals.len() <= cfg.intervals.max(1) * 3);
            for iv in &trace.intervals {
                prop_assert_eq!(iv.threads(), cfg.threads, "{}", bench);
            }
            prop_assert!(trace.total_instructions() > 0, "{bench}");
        }
    }

    #[test]
    fn different_seeds_give_different_traces(cfg in config_strategy()) {
        let mut other = cfg.clone();
        other.seed = cfg.seed.wrapping_add(0x9E37_79B9);
        // Data-dependent kernels must react to the seed.
        for bench in [Benchmark::Radix, Benchmark::Fft, Benchmark::WaterSp] {
            let a = bench.run(&cfg);
            let b = bench.run(&other);
            let ea = &a.intervals[0].thread(0).events;
            let eb = &b.intervals[0].thread(0).events;
            prop_assert!(ea != eb, "{bench}: seed had no effect");
        }
    }
}
