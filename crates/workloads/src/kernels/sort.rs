//! Radix — parallel least-significant-digit radix sort with global key
//! redistribution between passes, after the SPLASH-2 kernel.
//!
//! SPLASH-2's radix separates the histogram, rank and permutation phases
//! of each digit pass with barriers, so every phase is its own barrier
//! interval here too. The rank interval is where the paper's Fig 3.5
//! heterogeneity lives: thread 0 is the reduction root, accumulating
//! global ranks over running totals while the other threads spin.

use crate::kernels::SplitMix64;
use crate::recorder::Recorder;
use crate::types::{BarrierInterval, WorkloadConfig};

/// SPLASH-2's default radix is 1024 (10-bit digits): the global rank
/// reduction over 1024 buckets is a first-class phase, not an epilogue.
const DIGIT_BITS: u64 = 10;
const BUCKETS: usize = 1 << DIGIT_BITS;

pub(crate) fn radix(cfg: &WorkloadConfig) -> Vec<BarrierInterval> {
    radix_impl(cfg).0
}

/// Implementation that also returns the final key array (used by tests to
/// verify the sort really sorts).
fn radix_impl(cfg: &WorkloadConfig) -> (Vec<BarrierInterval>, Vec<u64>) {
    let n_per = cfg.scale;
    let total = n_per * cfg.threads;
    // Skewed keys: squaring a uniform variable concentrates mass at small
    // values while keeping a heavy tail of large keys — the digit buckets
    // (and hence the threads that own them after redistribution) see very
    // different value magnitudes.
    let mask = (1u64 << cfg.width.min(16)) - 1;
    let mut rng = SplitMix64::for_stream(cfg, 0, 0x5047);
    let mut keys: Vec<u64> = (0..total)
        .map(|_| {
            let u = rng.below(mask + 1);
            (u * u) >> cfg.width.min(16)
        })
        .collect();

    // The sort completes in ceil(width / DIGIT_BITS) passes; each pass
    // contributes three barrier intervals (histogram, rank, permute), and
    // like the paper ("3 barrier intervals, or completion") the returned
    // trace is truncated to the requested interval count.
    let width = cfg.width.min(16) as u64;
    let passes = width.div_ceil(DIGIT_BITS) as usize;
    let mut intervals = Vec::with_capacity(passes * 3);
    for pass in 0..passes {
        let shift = pass as u64 * DIGIT_BITS;
        let mut recorders: Vec<Recorder> =
            (0..cfg.threads).map(|_| Recorder::new(cfg.width)).collect();

        // Phase 1: local histograms (each thread scans its chunk).
        let mut local_hist = vec![[0u64; BUCKETS]; cfg.threads];
        for (tid, rec) in recorders.iter_mut().enumerate() {
            let lo = tid * n_per;
            for (i, &key) in keys[lo..lo + n_per].iter().enumerate() {
                let addr = rec.index(0x1FEC, (lo + i) as u64, 8);
                rec.load(addr);
                let digit = rec.shr(key, shift);
                let digit = rec.and(digit, (BUCKETS - 1) as u64);
                let count = local_hist[tid][digit as usize];
                local_hist[tid][digit as usize] = rec.add(count, 1);
                let haddr = rec.index(0x3FD4, digit, 8);
                rec.store(haddr);
                rec.less_than((lo + i) as u64, (lo + n_per) as u64);
            }
        }
        intervals.push(BarrierInterval::new(
            recorders.into_iter().map(Recorder::finish).collect(),
        ));
        let mut recorders: Vec<Recorder> =
            (0..cfg.threads).map(|_| Recorder::new(cfg.width)).collect();

        // Phase 2: global rank. As in SPLASH-2's tree reduction, each
        // thread prefix-sums its *local* histogram (small counts), then
        // thread 0 — the reduction root — accumulates the global ranks
        // over running totals that grow towards the full key count. The
        // root's long-carry adds are what make thread 0 the timing-
        // speculation-critical thread for Radix (Fig 3.5).
        let mut rank = vec![[0u64; BUCKETS]; cfg.threads];
        for (tid, rec) in recorders.iter_mut().enumerate() {
            let mut local = 0u64;
            for b in 0..BUCKETS {
                let haddr = rec.index(0x3FD4, (tid * BUCKETS + b) as u64, 8);
                rec.load(haddr);
                local = rec.add(local, local_hist[tid][b]);
                rec.store(haddr);
            }
        }
        {
            let root = &mut recorders[0];
            let mut running = 0u64;
            for b in 0..BUCKETS {
                for t in 0..cfg.threads {
                    rank[t][b] = running;
                    let haddr = root.index(0x3FD4, (t * BUCKETS + b) as u64, 8);
                    root.load(haddr);
                    running = root.add(running, local_hist[t][b]);
                    root.less_than(running, total as u64);
                    let raddr = root.index(0x7FA4, (t * BUCKETS + b) as u64, 8);
                    root.store(raddr);
                }
            }
        }
        // Non-root threads spin at the rank barrier meanwhile.
        for (tid, rec) in recorders.iter_mut().enumerate().skip(1) {
            crate::kernels::spin_wait(rec, BUCKETS * 2, tid);
        }
        intervals.push(BarrierInterval::new(
            recorders.into_iter().map(Recorder::finish).collect(),
        ));
        let mut recorders: Vec<Recorder> =
            (0..cfg.threads).map(|_| Recorder::new(cfg.width)).collect();

        // Phase 3: permute into the destination (the redistribution).
        let mut next = vec![0u64; total];
        for (tid, rec) in recorders.iter_mut().enumerate() {
            let lo = tid * n_per;
            let mut cursor = rank[tid];
            for &key in &keys[lo..lo + n_per] {
                let digit = rec.shr(key, shift);
                let digit = rec.and(digit, (BUCKETS - 1) as u64) as usize;
                let pos = cursor[digit];
                cursor[digit] = rec.add(pos, 1);
                rec.less_than(pos, total as u64);
                let daddr = rec.index(0x5FB8, pos, 8);
                rec.store(daddr);
                next[(pos as usize).min(total - 1)] = key;
            }
        }
        keys = next;
        intervals.push(BarrierInterval::new(
            recorders.into_iter().map(Recorder::finish).collect(),
        ));
    }
    intervals.truncate(cfg.intervals.max(1));
    (intervals, keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::AluOp;

    #[test]
    fn produces_requested_shape() {
        let cfg = WorkloadConfig::small(4);
        let ivs = radix(&cfg);
        // Each pass is three barrier intervals; the trace is truncated to
        // the configured interval budget (the paper's "3 intervals").
        assert_eq!(ivs.len(), cfg.intervals);
        for iv in &ivs {
            assert_eq!(iv.threads(), 4);
            for w in iv {
                assert!(w.events.len() > cfg.scale, "each thread does real work");
                assert!(w.branches > 0);
                assert!(!w.mem_refs.is_empty());
            }
        }
    }

    #[test]
    fn rank_reduction_root_dominates_thread_zero() {
        let cfg = WorkloadConfig::small(4);
        let ivs = radix(&cfg);
        // Interval 1 is the rank phase: thread 0 owns the global
        // accumulation while the peers spin at the barrier.
        let rank = &ivs[1];
        assert!(
            rank.thread(0).events.len() > 2 * rank.thread(1).events.len(),
            "root must dominate the rank interval: {} vs {}",
            rank.thread(0).events.len(),
            rank.thread(1).events.len()
        );
    }

    #[test]
    fn is_deterministic() {
        let cfg = WorkloadConfig::small(2);
        let a = radix(&cfg);
        let b = radix(&cfg);
        for (ia, ib) in a.iter().zip(&b) {
            for t in 0..ia.threads() {
                assert_eq!(ia.thread(t).events, ib.thread(t).events);
            }
        }
    }

    #[test]
    fn sort_actually_sorts() {
        // Enough LSD passes to cover the full 16-bit key width.
        let mut cfg = WorkloadConfig::small(4);
        cfg.intervals = 6; // both passes' phases
        let (ivs, keys) = radix_impl(&cfg);
        for w in keys.windows(2) {
            assert!(w[0] <= w[1], "keys must be sorted after all passes");
        }
        let shr_count = ivs[0]
            .thread(0)
            .events
            .iter()
            .filter(|e| e.op == AluOp::Shr)
            .count();
        assert!(shr_count >= cfg.scale, "digit extraction dominates");
    }

    #[test]
    fn uses_no_multiplies() {
        // Radix sort is a SimpleALU workload; the ComplexALU should starve.
        let cfg = WorkloadConfig::small(2);
        let ivs = radix(&cfg);
        for iv in &ivs {
            for w in iv {
                assert!(w.events.iter().all(|e| !e.op.is_complex()));
            }
        }
    }
}
