//! FMM, Barnes and Water-sp — the three particle kernels.
//!
//! * `fmm` — near/far-field interaction phase: space is cell-partitioned and
//!   particle density *decreases with thread id* (astrophysics inputs are
//!   clustered), so low threads run quadratically more pair work on larger
//!   coordinate sums — strong heterogeneity.
//! * `barnes` — Barnes-Hut-style quadtree walk with an opening test; the
//!   dense cluster again lives in thread 0's quadrant.
//! * `water` — molecules on a uniform lattice with identical per-thread
//!   statistics: the homogeneous control the paper excludes from the SynTS
//!   result set.

use crate::kernels::{div_restoring, isqrt, SplitMix64, FRAC};
use crate::recorder::Recorder;
use crate::types::{BarrierInterval, WorkloadConfig};

struct Particle {
    x: u64,
    y: u64,
    vx: u64,
    vy: u64,
}

/// Generates particles for one thread; `spread` controls the coordinate
/// range, `base` its offset.
fn particles(
    cfg: &WorkloadConfig,
    tid: usize,
    count: usize,
    base: u64,
    spread: u64,
    salt: u64,
) -> Vec<Particle> {
    let mut rng = SplitMix64::for_stream(cfg, tid, salt);
    (0..count)
        .map(|_| Particle {
            x: base + rng.below(spread),
            y: base + rng.below(spread),
            vx: rng.below(1 << FRAC),
            vy: rng.below(1 << FRAC),
        })
        .collect()
}

/// Pairwise near-field interaction for one thread's cell, O(m²) with a
/// distance cutoff, fully recorded.
fn near_field(rec: &mut Recorder, ps: &mut [Particle], cutoff2: u64) {
    let m = ps.len();
    for i in 0..m {
        let addr = rec.index(0x3000, i as u64, 16);
        rec.load(addr);
        for j in (i + 1)..m {
            let dx = rec.sub(ps[i].x, ps[j].x);
            let dy = rec.sub(ps[i].y, ps[j].y);
            let dx2 = rec.fxmul(dx, dx, FRAC);
            let dy2 = rec.fxmul(dy, dy, FRAC);
            let r2 = rec.add(dx2, dy2);
            if rec.less_than(r2, cutoff2) {
                // Inverse-square kick: f = G / r² via the real divider.
                let f = div_restoring(rec, 1 << (2 * FRAC), r2.max(1));
                let fx = rec.fxmul(f, dx, FRAC);
                let fy = rec.fxmul(f, dy, FRAC);
                ps[i].vx = rec.add(ps[i].vx, fx);
                ps[i].vy = rec.add(ps[i].vy, fy);
                ps[j].vx = rec.sub(ps[j].vx, fx);
                ps[j].vy = rec.sub(ps[j].vy, fy);
            }
        }
        rec.store(addr);
    }
}

/// Drift step: positions advance by velocity.
fn drift(rec: &mut Recorder, ps: &mut [Particle]) {
    for (i, p) in ps.iter_mut().enumerate() {
        let addr = rec.index(0x3000, i as u64, 16);
        rec.load(addr);
        p.x = rec.add(p.x, p.vx);
        p.y = rec.add(p.y, p.vy);
        rec.store(addr);
        rec.branch();
    }
}

pub(crate) fn fmm(cfg: &WorkloadConfig) -> Vec<BarrierInterval> {
    // Clustered input: thread 0's cell is densest and sits at large
    // coordinates; density tapers with thread id.
    let base_count = (cfg.scale / 16).max(8);
    let mut cells: Vec<Vec<Particle>> = (0..cfg.threads)
        .map(|tid| {
            let count = base_count * 2 / (tid + 1) + base_count / 2;
            let base = 0xC000u64 >> tid; // big coords for low threads
            particles(cfg, tid, count, base, 0x1FFF, 0xF33)
        })
        .collect();
    // Far-field centroids (one per cell).
    let mut intervals = Vec::with_capacity(cfg.intervals);
    for _step in 0..cfg.intervals {
        let mut recorders: Vec<Recorder> =
            (0..cfg.threads).map(|_| Recorder::new(cfg.width)).collect();
        // Centroids: each thread reduces its own cell (multipole moment).
        let mut centroids = Vec::with_capacity(cfg.threads);
        for (tid, cell) in cells.iter().enumerate() {
            let rec = &mut recorders[tid];
            let mut cx = 0u64;
            let mut cy = 0u64;
            for (i, p) in cell.iter().enumerate() {
                let addr = rec.index(0x3000, i as u64, 16);
                rec.load(addr);
                cx = rec.add(cx, p.x);
                cy = rec.add(cy, p.y);
            }
            let m = cell.len() as u64;
            centroids.push((div_restoring(rec, cx, m), div_restoring(rec, cy, m)));
        }
        // Near field within the cell + far field against other centroids.
        for (tid, cell) in cells.iter_mut().enumerate() {
            let rec = &mut recorders[tid];
            near_field(rec, cell, 64 << FRAC);
            for (other, &(cx, cy)) in centroids.iter().enumerate() {
                if other == tid {
                    continue;
                }
                for p in cell.iter_mut() {
                    let dx = rec.sub(cx, p.x);
                    let dy = rec.sub(cy, p.y);
                    let w = rec.shr(dx, 4);
                    let w2 = rec.shr(dy, 4);
                    p.vx = rec.add(p.vx, w & 0xF);
                    p.vy = rec.add(p.vy, w2 & 0xF);
                }
            }
            drift(rec, cell);
        }
        intervals.push(BarrierInterval::new(
            recorders.into_iter().map(Recorder::finish).collect(),
        ));
    }
    intervals
}

pub(crate) fn water(cfg: &WorkloadConfig) -> Vec<BarrierInterval> {
    // Uniform lattice, identical statistics for every thread.
    let count = (cfg.scale / 8).max(12);
    let mut cells: Vec<Vec<Particle>> = (0..cfg.threads)
        .map(|tid| particles(cfg, tid, count, 0x4000, 0x3FFF, 0x3A7))
        .collect();
    let mut intervals = Vec::with_capacity(cfg.intervals);
    for _step in 0..cfg.intervals {
        let mut recorders: Vec<Recorder> =
            (0..cfg.threads).map(|_| Recorder::new(cfg.width)).collect();
        for (tid, cell) in cells.iter_mut().enumerate() {
            let rec = &mut recorders[tid];
            near_field(rec, cell, 96 << FRAC);
            drift(rec, cell);
        }
        intervals.push(BarrierInterval::new(
            recorders.into_iter().map(Recorder::finish).collect(),
        ));
    }
    intervals
}

/// A quadtree node for the Barnes-Hut walk.
enum Quad {
    Empty,
    Leaf(u64, u64),
    Node {
        cx: u64,
        cy: u64,
        size: u64,
        children: Box<[Quad; 4]>,
    },
}

fn insert(quad: &mut Quad, x: u64, y: u64, ox: u64, oy: u64, size: u64, depth: usize) {
    if depth > 12 {
        return;
    }
    match quad {
        Quad::Empty => *quad = Quad::Leaf(x, y),
        Quad::Leaf(lx, ly) => {
            let (lx, ly) = (*lx, *ly);
            *quad = Quad::Node {
                cx: (lx + x) / 2,
                cy: (ly + y) / 2,
                size,
                children: Box::new([Quad::Empty, Quad::Empty, Quad::Empty, Quad::Empty]),
            };
            insert(quad, lx, ly, ox, oy, size, depth);
            insert(quad, x, y, ox, oy, size, depth);
        }
        Quad::Node { children, .. } => {
            let half = size / 2;
            let qx = usize::from(x >= ox + half);
            let qy = usize::from(y >= oy + half);
            insert(
                &mut children[qy * 2 + qx],
                x,
                y,
                ox + qx as u64 * half,
                oy + qy as u64 * half,
                half.max(1),
                depth + 1,
            );
        }
    }
}

/// Recorded Barnes-Hut force walk with the s/d opening criterion.
fn walk(rec: &mut Recorder, quad: &Quad, x: u64, y: u64, vx: &mut u64, vy: &mut u64) {
    match quad {
        Quad::Empty => {}
        Quad::Leaf(lx, ly) => {
            if *lx == x && *ly == y {
                return;
            }
            let dx = rec.sub(*lx, x);
            let dy = rec.sub(*ly, y);
            let dx2 = rec.fxmul(dx, dx, FRAC);
            let dy2 = rec.fxmul(dy, dy, FRAC);
            let r2 = rec.add(dx2, dy2).max(1);
            let r = isqrt(rec, r2).max(1);
            let f = div_restoring(rec, 1 << FRAC, r);
            *vx = rec.add(*vx, rec_mask(f, dx));
            *vy = rec.add(*vy, rec_mask(f, dy));
        }
        Quad::Node {
            cx,
            cy,
            size,
            children,
        } => {
            let dx = rec.sub(*cx, x);
            let dy = rec.sub(*cy, y);
            let dist2 = {
                let dx2 = rec.fxmul(dx, dx, FRAC);
                let dy2 = rec.fxmul(dy, dy, FRAC);
                rec.add(dx2, dy2)
            };
            let s2 = rec.fxmul(*size, *size, FRAC);
            // Opening test: if s²/d² < θ² treat the node as one body.
            if rec.less_than(s2, dist2 / 2) {
                let w = rec.shr(dx, 5);
                *vx = rec.add(*vx, w & 0x7);
                let w2 = rec.shr(dy, 5);
                *vy = rec.add(*vy, w2 & 0x7);
            } else {
                for child in children.iter() {
                    walk(rec, child, x, y, vx, vy);
                }
            }
        }
    }
}

fn rec_mask(f: u64, d: u64) -> u64 {
    (f.wrapping_mul(d)) & 0xF
}

pub(crate) fn barnes(cfg: &WorkloadConfig) -> Vec<BarrierInterval> {
    // Thread 0 owns the dense cluster quadrant.
    let base_count = (cfg.scale / 12).max(8);
    let mut bodies: Vec<Vec<Particle>> = (0..cfg.threads)
        .map(|tid| {
            let count = if tid == 0 { base_count * 3 } else { base_count };
            let spread = if tid == 0 { 0x0FFF } else { 0x3FFF };
            particles(cfg, tid, count, (tid as u64) * 0x4000, spread, 0xBA5)
        })
        .collect();
    let mut intervals = Vec::with_capacity(cfg.intervals);
    for _step in 0..cfg.intervals {
        // Global tree over all bodies (built unrecorded: tree build is
        // pointer-chasing, not ALU work).
        let mut root = Quad::Empty;
        for cell in &bodies {
            for p in cell {
                insert(&mut root, p.x, p.y, 0, 0, 1 << cfg.width.min(16), 0);
            }
        }
        let mut recorders: Vec<Recorder> =
            (0..cfg.threads).map(|_| Recorder::new(cfg.width)).collect();
        for (tid, cell) in bodies.iter_mut().enumerate() {
            let rec = &mut recorders[tid];
            for p in cell.iter_mut() {
                let mut vx = p.vx;
                let mut vy = p.vy;
                walk(rec, &root, p.x, p.y, &mut vx, &mut vy);
                p.vx = vx & 0xFF;
                p.vy = vy & 0xFF;
            }
            drift(rec, cell);
        }
        intervals.push(BarrierInterval::new(
            recorders.into_iter().map(Recorder::finish).collect(),
        ));
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmm_is_thread_heterogeneous_in_volume() {
        let cfg = WorkloadConfig::small(4);
        let ivs = fmm(&cfg);
        let counts: Vec<usize> = ivs[0].iter().map(|w| w.events.len()).collect();
        assert!(
            counts[0] > 2 * counts[3],
            "dense cell must dominate: {counts:?}"
        );
    }

    #[test]
    fn water_is_homogeneous_in_volume() {
        let cfg = WorkloadConfig::small(4);
        let ivs = water(&cfg);
        let counts: Vec<usize> = ivs[0].iter().map(|w| w.events.len()).collect();
        let max = *counts.iter().max().expect("non-empty") as f64;
        let min = *counts.iter().min().expect("non-empty").max(&1) as f64;
        assert!(max / min < 1.5, "uniform lattice must balance: {counts:?}");
    }

    #[test]
    fn barnes_cluster_thread_walks_more() {
        let cfg = WorkloadConfig::small(4);
        let ivs = barnes(&cfg);
        let counts: Vec<usize> = ivs[0].iter().map(|w| w.events.len()).collect();
        assert!(
            counts[0] > counts[2],
            "cluster owner must do more tree work: {counts:?}"
        );
    }

    #[test]
    fn kernels_are_deterministic() {
        let cfg = WorkloadConfig::small(2);
        for f in [fmm, water, barnes] {
            let a = f(&cfg);
            let b = f(&cfg);
            assert_eq!(a[0].thread(0).events, b[0].thread(0).events);
        }
    }
}
