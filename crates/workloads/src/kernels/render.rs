//! Raytrace — tile-parallel ray caster, after the SPLASH-2 raytracer.
//!
//! The image is split into horizontal tiles, one per thread; the scene's
//! spheres sit in the upper rows, so thread 0's rays hit geometry (running
//! the full intersection + shading math: multiply-heavy discriminants,
//! bit-serial square roots) while high threads mostly miss — the classic
//! scene-dependent load and operand imbalance of parallel ray tracing.

use crate::kernels::{div_restoring, isqrt, SplitMix64, FRAC};
use crate::recorder::Recorder;
use crate::types::{BarrierInterval, WorkloadConfig};

struct Sphere {
    cx: u64,
    cy: u64,
    cz: u64,
    r2: u64,
}

pub(crate) fn raytrace(cfg: &WorkloadConfig) -> Vec<BarrierInterval> {
    let cols = 48usize;
    let rows_per_thread = (cfg.scale / cols).max(4);
    let mut rng = SplitMix64::for_stream(cfg, 0, 0x7247);
    // Spheres clustered in the first tile's rows (small cy values).
    let spheres: Vec<Sphere> = (0..4)
        .map(|_| Sphere {
            cx: rng.below(cols as u64 * 256),
            cy: rng.below(rows_per_thread as u64 * 200),
            cz: 2000 + rng.below(2000),
            r2: (300 + rng.below(600)) << FRAC,
        })
        .collect();

    let mut intervals = Vec::with_capacity(cfg.intervals);
    for frame in 0..cfg.intervals {
        // Small camera pan per frame keeps frames distinct.
        let pan = (frame as u64) * 37;
        let mut recorders: Vec<Recorder> =
            (0..cfg.threads).map(|_| Recorder::new(cfg.width)).collect();
        for (tid, rec) in recorders.iter_mut().enumerate() {
            let row0 = tid * rows_per_thread;
            for dy in 0..rows_per_thread {
                let py = ((row0 + dy) as u64) * 256;
                for px_i in 0..cols {
                    let px = (px_i as u64) * 256 + pan;
                    rec.branch();
                    let mut best_t = 0xFFFF;
                    for s in &spheres {
                        // Ray from (px, py, 0) towards +z: closest approach
                        // is at the sphere's z; lateral distance decides.
                        let dx = rec.sub(s.cx, px);
                        let dyv = rec.sub(s.cy, py);
                        let dx2 = rec.fxmul(dx, dx, FRAC);
                        let dy2 = rec.fxmul(dyv, dyv, FRAC);
                        let d2 = rec.add(dx2, dy2);
                        if rec.less_than(d2, s.r2) {
                            // Hit: depth = cz - sqrt(r2 - d2), then shade.
                            let under = rec.sub(s.r2, d2);
                            let half = isqrt(rec, under);
                            let t = rec.sub(s.cz, half);
                            if rec.less_than(t, best_t) {
                                best_t = t;
                                // Lambertian-ish shade: n·l via fxmul + div.
                                let nx = rec.shr(dx, 2);
                                let nl = rec.fxmul(nx, 0x55, FRAC);
                                let _intensity = div_restoring(rec, nl.max(1), (t >> 4).max(1));
                            }
                        }
                    }
                    let addr = rec.index(0x9000, (py / 256) * cols as u64 + px_i as u64, 4);
                    rec.store(addr);
                }
            }
        }
        intervals.push(BarrierInterval::new(
            recorders.into_iter().map(Recorder::finish).collect(),
        ));
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_tile_does_more_work() {
        let cfg = WorkloadConfig::small(4);
        let ivs = raytrace(&cfg);
        let counts: Vec<usize> = ivs[0].iter().map(|w| w.events.len()).collect();
        assert!(
            counts[0] > counts[3],
            "the tile containing geometry must be heavier: {counts:?}"
        );
    }

    #[test]
    fn every_thread_casts_rays() {
        let cfg = WorkloadConfig::small(4);
        let ivs = raytrace(&cfg);
        for iv in &ivs {
            for w in iv {
                assert!(w.events.len() > 100);
                assert!(w.branches > 0);
            }
        }
    }

    #[test]
    fn deterministic() {
        let cfg = WorkloadConfig::small(2);
        let a = raytrace(&cfg);
        let b = raytrace(&cfg);
        assert_eq!(a[1].thread(1).events, b[1].thread(1).events);
    }
}
