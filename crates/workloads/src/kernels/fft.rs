//! FFT — radix-2 decimation-in-time integer FFT, after the SPLASH-2 kernel.
//!
//! Butterfly work is partitioned uniformly across threads and the input is
//! full-width pseudo-random, so every thread sees the same operand
//! statistics: the per-thread error curves come out **homogeneous**, and —
//! because butterfly operands occupy the full datapath width — sensitized
//! delays sit close to the critical path, making error probabilities high
//! at any speculative clock. Both properties match the paper's reason for
//! excluding FFT from the SynTS result set (Sec 5.4).

use crate::kernels::{SplitMix64, FRAC};
use crate::recorder::Recorder;
use crate::types::{BarrierInterval, WorkloadConfig};

pub(crate) fn fft(cfg: &WorkloadConfig) -> Vec<BarrierInterval> {
    let n = (cfg.scale * cfg.threads).next_power_of_two().max(16);
    let stages = n.trailing_zeros() as usize;
    let mask = (1u64 << cfg.width.min(16)) - 1;

    // Full-width complex input (wrapped two's-complement representation).
    let mut rng = SplitMix64::for_stream(cfg, 0, 0xFF7);
    let mut re: Vec<u64> = (0..n).map(|_| rng.next_u64() & mask).collect();
    let mut im: Vec<u64> = (0..n).map(|_| rng.next_u64() & mask).collect();

    // Fixed-point twiddle table (quarter-wave cosine, wrapped negatives).
    let twiddle: Vec<(u64, u64)> = (0..n / 2)
        .map(|k| {
            let angle = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            let scale = f64::from(1u32 << FRAC);
            let c = (angle.cos() * scale).round() as i64;
            let s = (angle.sin() * scale).round() as i64;
            ((c as u64) & mask, (s as u64) & mask)
        })
        .collect();

    // Bit-reverse permutation (address traffic only).
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - stages);
        if (j as usize) > i {
            re.swap(i, j as usize);
            im.swap(i, j as usize);
        }
    }

    // Group the log2(n) butterfly stages into the requested intervals.
    let stages_per_interval = stages.div_ceil(cfg.intervals);
    let mut intervals = Vec::with_capacity(cfg.intervals);
    for interval in 0..cfg.intervals {
        let mut recorders: Vec<Recorder> =
            (0..cfg.threads).map(|_| Recorder::new(cfg.width)).collect();
        let s_lo = interval * stages_per_interval;
        let s_hi = ((interval + 1) * stages_per_interval).min(stages);
        for s in s_lo..s_hi {
            let half = 1usize << s;
            let step = half << 1;
            // Butterflies are distributed round-robin over threads.
            let mut butterfly_idx = 0usize;
            for start in (0..n).step_by(step) {
                for k in 0..half {
                    let tid = butterfly_idx % cfg.threads;
                    butterfly_idx += 1;
                    let rec = &mut recorders[tid];
                    let (i, j) = (start + k, start + k + half);
                    let (wr, wi) = twiddle[k * (n / step)];
                    let a0 = rec.index(0x1000, i as u64, 8);
                    rec.load(a0);
                    let a1 = rec.index(0x1000, j as u64, 8);
                    rec.load(a1);
                    // t = w * x[j] (complex multiply: 4 muls, 2 add/sub).
                    let p0 = rec.fxmul(re[j], wr, FRAC);
                    let p1 = rec.fxmul(im[j], wi, FRAC);
                    let p2 = rec.fxmul(re[j], wi, FRAC);
                    let p3 = rec.fxmul(im[j], wr, FRAC);
                    let tr = rec.sub(p0, p1);
                    let ti = rec.add(p2, p3);
                    // Butterfly combine.
                    let new_rj = rec.sub(re[i], tr);
                    let new_ij = rec.sub(im[i], ti);
                    re[i] = rec.add(re[i], tr);
                    im[i] = rec.add(im[i], ti);
                    re[j] = new_rj;
                    im[j] = new_ij;
                    rec.store(a0);
                    rec.store(a1);
                }
            }
        }
        intervals.push(BarrierInterval::new(
            recorders.into_iter().map(Recorder::finish).collect(),
        ));
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_is_balanced_across_threads() {
        let cfg = WorkloadConfig::small(4);
        let ivs = fft(&cfg);
        for iv in &ivs {
            let counts: Vec<usize> = iv.iter().map(|w| w.events.len()).collect();
            let max = *counts.iter().max().expect("non-empty");
            let min = *counts.iter().min().expect("non-empty").max(&1);
            assert!(
                (max as f64) / (min as f64) < 1.2,
                "butterfly distribution must be near-uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn multiplier_heavy() {
        let cfg = WorkloadConfig::small(2);
        let ivs = fft(&cfg);
        let muls = ivs[0]
            .thread(0)
            .events
            .iter()
            .filter(|e| e.op.is_complex())
            .count();
        assert!(muls > 100, "FFT should stress the ComplexALU: {muls}");
    }

    #[test]
    fn deterministic() {
        let cfg = WorkloadConfig::small(2);
        let a = fft(&cfg);
        let b = fft(&cfg);
        assert_eq!(a[0].thread(0).events, b[0].thread(0).events);
    }
}
