//! The instrumented kernels, plus shared numeric helpers.
//!
//! All kernels compute in unsigned fixed point on the configured datapath
//! width, using hardware-shaped algorithms (restoring division, bit-serial
//! square root, Newton-free) so the recorded event streams look like what a
//! compiled integer binary would issue.

pub(crate) mod fft;
pub(crate) mod grid;
pub(crate) mod linalg;
pub(crate) mod nbody;
pub(crate) mod render;
pub(crate) mod sort;

use crate::recorder::Recorder;
use crate::types::WorkloadConfig;

/// Fractional bits of the kernels' fixed-point format.
pub(crate) const FRAC: u32 = 6;

/// Deterministic 64-bit PRNG (SplitMix64): one per (thread, interval, salt)
/// stream so kernels are reproducible and threads are decorrelated.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub(crate) fn for_stream(cfg: &WorkloadConfig, tid: usize, salt: u64) -> SplitMix64 {
        SplitMix64::new(
            cfg.seed
                ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9),
        )
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Restoring division `num / den` executed bit-serially through the
/// recorder — the sequence an integer divider (or a compiler's soft-div)
/// issues. Returns the quotient; division by zero returns the all-ones
/// value, like Alpha's unsigned division corner case handlers.
pub(crate) fn div_restoring(rec: &mut Recorder, num: u64, den: u64) -> u64 {
    let w = rec.width() as u64;
    if den == 0 {
        return rec.sub(0, 1); // all-ones
    }
    let mut rem: u64 = 0;
    let mut quot: u64 = 0;
    for i in (0..w).rev() {
        let shifted = rec.shr(num, i);
        let bit = rec.and(shifted, 1);
        let doubled = rec.shl(rem, 1);
        rem = rec.or(doubled, bit);
        if !rec.less_than(rem, den) {
            rem = rec.sub(rem, den);
            let mask = rec.shl(1, i);
            quot = rec.or(quot, mask);
        }
    }
    quot
}

/// Barrier spin-wait: a thread that runs out of work in an interval still
/// executes the barrier's spin loop — load the flag, compare, branch —
/// exactly what a blocked SPLASH-2 thread's pipeline sees. The near-
/// constant operands give spinning threads their characteristic near-zero
/// error probability.
pub(crate) fn spin_wait(rec: &mut Recorder, iters: usize, tid: usize) {
    for i in 0..iters {
        let addr = rec.index(0xF000, (tid & 0xF) as u64, 8);
        rec.load(addr);
        let flag = (i & 1) as u64;
        let _ = rec.sltu(flag, 1);
        rec.branch();
    }
}

/// Bit-serial integer square root (the classic hardware algorithm),
/// executed through the recorder.
pub(crate) fn isqrt(rec: &mut Recorder, x: u64) -> u64 {
    let w = rec.width() as u64;
    let mut root: u64 = 0;
    let mut rem = x;
    // Highest even bit position within the width.
    let mut bit: u64 = 1 << (w - 2 + (w % 2));
    while bit != 0 {
        let cand = rec.add(root, bit);
        if !rec.less_than(rem, cand) {
            rem = rec.sub(rem, cand);
            let halved = rec.shr(root, 1);
            root = rec.add(halved, bit);
        } else {
            root = rec.shr(root, 1);
        }
        bit >>= 2;
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic_and_stream_separated() {
        let cfg = WorkloadConfig::small(4);
        let a1: Vec<u64> = {
            let mut r = SplitMix64::for_stream(&cfg, 0, 1);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = SplitMix64::for_stream(&cfg, 0, 1);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::for_stream(&cfg, 1, 1);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a1, a2, "same stream must repeat");
        assert_ne!(a1, b, "different threads must differ");
    }

    #[test]
    fn restoring_division_is_exact() {
        for (n, d) in [(100u64, 7u64), (65535, 255), (5, 9), (1000, 1), (0, 3)] {
            let mut rec = Recorder::new(16);
            assert_eq!(div_restoring(&mut rec, n, d), n / d, "{n}/{d}");
        }
    }

    #[test]
    fn division_by_zero_saturates() {
        let mut rec = Recorder::new(16);
        assert_eq!(div_restoring(&mut rec, 42, 0), 0xFFFF);
    }

    #[test]
    fn bit_serial_sqrt_is_exact() {
        for x in [0u64, 1, 4, 15, 16, 255, 256, 1023, 65535] {
            let mut rec = Recorder::new(16);
            let r = isqrt(&mut rec, x);
            let expect = (x as f64).sqrt().floor() as u64;
            assert_eq!(r, expect, "isqrt({x})");
        }
    }

    #[test]
    fn division_emits_realistic_event_volume() {
        let mut rec = Recorder::new(16);
        let _ = div_restoring(&mut rec, 54321, 123);
        // Bit-serial over 16 bits: dozens of ALU events, as hardware would.
        assert!(rec.event_count() > 40);
    }
}
