//! Ocean — red-black Gauss-Seidel relaxation on a regular grid, after the
//! SPLASH-2 ocean simulation.
//!
//! Rows are block-partitioned across threads and the field is smooth, so
//! every thread performs identical stencil work on statistically identical
//! values: the homogeneous control benchmark (Sec 5.4).

use crate::kernels::SplitMix64;
use crate::recorder::Recorder;
use crate::types::{BarrierInterval, WorkloadConfig};

pub(crate) fn ocean(cfg: &WorkloadConfig) -> Vec<BarrierInterval> {
    let cols = 64usize;
    let rows_per_thread = (cfg.scale / cols).max(4);
    let rows = rows_per_thread * cfg.threads + 2; // halo rows
    let mut rng = SplitMix64::for_stream(cfg, 0, 0x0CEA);
    // Smooth-ish field: random walk along each row.
    let mut grid: Vec<Vec<u64>> = (0..rows)
        .map(|_| {
            let mut v = 0x8000u64;
            (0..cols)
                .map(|_| {
                    v = (v + rng.below(257)).wrapping_sub(128) & 0xFFFF;
                    v
                })
                .collect()
        })
        .collect();

    let mut intervals = Vec::with_capacity(cfg.intervals);
    for sweep in 0..cfg.intervals {
        let mut recorders: Vec<Recorder> =
            (0..cfg.threads).map(|_| Recorder::new(cfg.width)).collect();
        // Red-black: phase parity alternates per sweep.
        for color in 0..2usize {
            let snapshot = grid.clone();
            for (tid, rec) in recorders.iter_mut().enumerate() {
                let r0 = 1 + tid * rows_per_thread;
                for r in r0..r0 + rows_per_thread {
                    for c in 1..cols - 1 {
                        if (r + c + sweep) % 2 != color {
                            continue;
                        }
                        let addr = rec.index(0xB000, (r * cols + c) as u64, 8);
                        rec.load(addr);
                        let up = snapshot[r - 1][c];
                        let down = snapshot[r + 1][c];
                        let left = snapshot[r][c - 1];
                        let right = snapshot[r][c + 1];
                        let s1 = rec.add(up, down);
                        let s2 = rec.add(left, right);
                        let s = rec.add(s1, s2);
                        let avg = rec.shr(s, 2);
                        // Over-relaxation: new = old + (avg - old) / 2.
                        let diff = rec.sub(avg, grid[r][c]);
                        let half = rec.shr(diff, 1);
                        grid[r][c] = rec.add(grid[r][c], half);
                        rec.store(addr);
                        rec.branch();
                    }
                }
            }
        }
        intervals.push(BarrierInterval::new(
            recorders.into_iter().map(Recorder::finish).collect(),
        ));
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_balanced_across_threads() {
        let cfg = WorkloadConfig::small(4);
        let ivs = ocean(&cfg);
        for iv in &ivs {
            let counts: Vec<usize> = iv.iter().map(|w| w.events.len()).collect();
            let max = *counts.iter().max().expect("non-empty");
            let min = *counts.iter().min().expect("non-empty");
            assert!(
                max - min <= max / 10,
                "stencil work must be balanced: {counts:?}"
            );
        }
    }

    #[test]
    fn stencil_op_mix() {
        let cfg = WorkloadConfig::small(2);
        let ivs = ocean(&cfg);
        use circuits::AluOp;
        let w = ivs[0].thread(0);
        let adds = w.events.iter().filter(|e| e.op == AluOp::Add).count();
        let shrs = w.events.iter().filter(|e| e.op == AluOp::Shr).count();
        assert!(adds > shrs, "adds dominate a stencil");
        assert!(w.events.iter().all(|e| !e.op.is_complex()));
    }

    #[test]
    fn deterministic() {
        let cfg = WorkloadConfig::small(2);
        let a = ocean(&cfg);
        let b = ocean(&cfg);
        assert_eq!(a[0].thread(0).events, b[0].thread(0).events);
    }
}
