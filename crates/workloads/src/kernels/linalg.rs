//! LU-contig / LU-ncontig / Cholesky — dense factorizations with
//! column-ownership parallelism, after the SPLASH-2 kernels.
//!
//! Each barrier interval covers a batch of elimination steps. The owner of
//! pivot column `k` runs the divisions (bit-serial restoring divider — the
//! long, value-dependent op streams); everyone updates the trailing blocks
//! they own. **Contiguous** ownership (thread = `k / (n/T)`) concentrates
//! pivot work on low-numbered threads in early intervals — the thread-
//! criticality the paper reports; **non-contiguous** (round-robin
//! `k mod T`) spreads it, changing the heterogeneity pattern between the
//! two LU variants exactly as SPLASH-2's two layouts do.

use crate::kernels::{div_restoring, isqrt, spin_wait, SplitMix64, FRAC};
use crate::recorder::Recorder;
use crate::types::{BarrierInterval, WorkloadConfig};

/// Problem size: matrix dimension derived from the scale knob.
fn matrix_dim(cfg: &WorkloadConfig) -> usize {
    let target = ((cfg.scale * cfg.threads) as f64).sqrt() as usize;
    let n = target.clamp(4 * cfg.threads, 64);
    // Round to a multiple of the thread count for clean ownership maps.
    n - n % cfg.threads
}

/// Generates a diagonally dominant fixed-point matrix (values stay inside
/// the datapath width through the factorization).
fn make_matrix(cfg: &WorkloadConfig, n: usize, salt: u64) -> Vec<Vec<u64>> {
    let mut rng = SplitMix64::for_stream(cfg, 0, salt);
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        512 + rng.below(256)
                    } else {
                        rng.below(48)
                    }
                })
                .collect()
        })
        .collect()
}

fn column_owner(contiguous: bool, k: usize, n: usize, threads: usize) -> usize {
    if contiguous {
        (k * threads / n).min(threads - 1)
    } else {
        k % threads
    }
}

pub(crate) fn lu(cfg: &WorkloadConfig, contiguous: bool) -> Vec<BarrierInterval> {
    let n = matrix_dim(cfg);
    let mut a = make_matrix(cfg, n, 0x4C55);
    let steps_per_interval = (n / cfg.intervals).clamp(1, 10);

    let mut intervals = Vec::with_capacity(cfg.intervals);
    for interval in 0..cfg.intervals {
        let mut recorders: Vec<Recorder> =
            (0..cfg.threads).map(|_| Recorder::new(cfg.width)).collect();
        let k_lo = interval * steps_per_interval;
        let k_hi = ((interval + 1) * steps_per_interval).min(n.saturating_sub(1));
        for k in k_lo..k_hi {
            let owner = column_owner(contiguous, k, n, cfg.threads);
            // Owner computes the multiplier column l[i] = a[i][k] / a[k][k].
            let mut l = vec![0u64; n];
            {
                let rec = &mut recorders[owner];
                let pivot = a[k][k].max(1);
                for (i, li) in l.iter_mut().enumerate().skip(k + 1) {
                    let addr = rec.index(0x8000, (i * n + k) as u64, 8);
                    rec.load(addr);
                    let num = rec.shl(a[i][k], u64::from(FRAC));
                    *li = div_restoring(rec, num, pivot);
                    rec.store(addr);
                }
            }
            // Everyone updates the trailing columns they own.
            for j in (k + 1)..n {
                let upd_owner = column_owner(contiguous, j, n, cfg.threads);
                let rec = &mut recorders[upd_owner];
                let ukj = a[k][j];
                for (i, &li) in l.iter().enumerate().skip(k + 1) {
                    let prod = rec.fxmul(li, ukj, FRAC);
                    let addr = rec.index(0x8000, (i * n + j) as u64, 8);
                    rec.load(addr);
                    a[i][j] = rec.sub(a[i][j], prod);
                    rec.store(addr);
                }
                rec.branch();
            }
            for (i, &li) in l.iter().enumerate().skip(k + 1) {
                a[i][k] = li;
            }
        }
        for (tid, rec) in recorders.iter_mut().enumerate() {
            if rec.event_count() < 32 {
                spin_wait(rec, 96, tid);
            }
        }
        intervals.push(BarrierInterval::new(
            recorders.into_iter().map(Recorder::finish).collect(),
        ));
    }
    intervals
}

pub(crate) fn cholesky(cfg: &WorkloadConfig) -> Vec<BarrierInterval> {
    let n = matrix_dim(cfg);
    // Symmetric positive-definite-ish: diagonally dominant symmetric.
    let mut a = make_matrix(cfg, n, 0x4348);
    for i in 0..n {
        for j in 0..i {
            let v = (a[i][j] + a[j][i]) / 2;
            a[i][j] = v;
            a[j][i] = v;
        }
    }
    let steps_per_interval = (n / cfg.intervals).clamp(1, 10);

    let mut intervals = Vec::with_capacity(cfg.intervals);
    for interval in 0..cfg.intervals {
        let mut recorders: Vec<Recorder> =
            (0..cfg.threads).map(|_| Recorder::new(cfg.width)).collect();
        let k_lo = interval * steps_per_interval;
        let k_hi = ((interval + 1) * steps_per_interval).min(n.saturating_sub(1));
        for k in k_lo..k_hi {
            let owner = column_owner(true, k, n, cfg.threads);
            // Owner: pivot sqrt and column scale.
            let mut col = vec![0u64; n];
            {
                let rec = &mut recorders[owner];
                let scaled = rec.shl(a[k][k].max(1), u64::from(FRAC));
                let d = isqrt(rec, scaled).max(1);
                a[k][k] = d;
                for (i, ci) in col.iter_mut().enumerate().skip(k + 1) {
                    let addr = rec.index(0xA000, (i * n + k) as u64, 8);
                    rec.load(addr);
                    let num = rec.shl(a[i][k], u64::from(FRAC));
                    *ci = div_restoring(rec, num, d);
                    rec.store(addr);
                }
            }
            // Trailing symmetric update, column-owned.
            for j in (k + 1)..n {
                let upd_owner = column_owner(true, j, n, cfg.threads);
                let rec = &mut recorders[upd_owner];
                let cj = col[j];
                for i in j..n {
                    let prod = rec.fxmul(col[i], cj, FRAC);
                    let addr = rec.index(0xA000, (i * n + j) as u64, 8);
                    rec.load(addr);
                    a[i][j] = rec.sub(a[i][j], prod);
                    rec.store(addr);
                }
                rec.branch();
            }
            for (i, &ci) in col.iter().enumerate().skip(k + 1) {
                a[i][k] = ci;
            }
        }
        for (tid, rec) in recorders.iter_mut().enumerate() {
            if rec.event_count() < 32 {
                spin_wait(rec, 96, tid);
            }
        }
        intervals.push(BarrierInterval::new(
            recorders.into_iter().map(Recorder::finish).collect(),
        ));
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::AluOp;

    #[test]
    fn lu_contig_concentrates_pivot_work_early() {
        let cfg = WorkloadConfig::small(4);
        let ivs = lu(&cfg, true);
        // In the first interval the pivot columns belong to thread 0, so
        // thread 0 must record far more division-shaped work (sltu-heavy)
        // than the last thread.
        let sltu = |t: usize| {
            ivs[0]
                .thread(t)
                .events
                .iter()
                .filter(|e| e.op == AluOp::Sltu)
                .count()
        };
        assert!(
            sltu(0) > 2 * sltu(3).max(1),
            "thread 0 {} vs thread 3 {}",
            sltu(0),
            sltu(3)
        );
    }

    #[test]
    fn lu_ncontig_spreads_pivot_work() {
        let cfg = WorkloadConfig::small(4);
        let ivs = lu(&cfg, false);
        let sltu = |t: usize| {
            ivs[0]
                .thread(t)
                .events
                .iter()
                .filter(|e| e.op == AluOp::Sltu)
                .count()
        };
        let counts: Vec<usize> = (0..4).map(sltu).collect();
        let max = *counts.iter().max().expect("non-empty");
        let min = *counts.iter().min().expect("non-empty").max(&1);
        assert!(
            max < 4 * min,
            "round-robin ownership should balance divisions: {counts:?}"
        );
    }

    #[test]
    fn cholesky_produces_multiplies_and_divisions() {
        let cfg = WorkloadConfig::small(4);
        let ivs = cholesky(&cfg);
        let all: Vec<_> = ivs.iter().flat_map(|iv| iv.iter()).collect();
        assert!(all
            .iter()
            .any(|w| w.events.iter().any(|e| e.op == AluOp::Mul)));
        assert!(all
            .iter()
            .any(|w| w.events.iter().any(|e| e.op == AluOp::Sub)));
    }

    #[test]
    fn shapes_and_determinism() {
        let cfg = WorkloadConfig::small(2);
        for variant in [true, false] {
            let a = lu(&cfg, variant);
            let b = lu(&cfg, variant);
            assert_eq!(a.len(), cfg.intervals);
            for (ia, ib) in a.iter().zip(&b) {
                assert_eq!(ia.threads(), 2);
                for t in 0..2 {
                    assert_eq!(ia.thread(t).events, ib.thread(t).events);
                }
            }
        }
    }
}
