//! The instrumentation layer: a [`Recorder`] stands in for one thread's
//! functional units, executing integer operations *and* logging each one as
//! an [`AluEvent`] with its operand values.
//!
//! Kernels compute **through** the recorder, so the trace is the real
//! dynamic operand stream of the algorithm, not a synthetic lookalike.

use circuits::{AluEvent, AluOp};

/// One memory reference (for the cache layer of the CPI model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Byte address.
    pub addr: u64,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

/// Everything one thread did in one barrier interval.
#[derive(Debug, Clone, Default)]
pub struct ThreadWork {
    /// ALU operations with operand values, in program order.
    pub events: Vec<AluEvent>,
    /// Memory references, in program order.
    pub mem_refs: Vec<MemRef>,
    /// Dynamic branch count.
    pub branches: u64,
}

impl ThreadWork {
    /// Total dynamic instruction count: ALU ops + memory ops + branches.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.events.len() as u64 + self.mem_refs.len() as u64 + self.branches
    }
}

/// An instrumented integer datapath for one thread.
///
/// All arithmetic is performed at the configured datapath width (operands
/// and results are masked), mirroring what the gate-level stages will see.
///
/// ```
/// let mut r = workloads::Recorder::new(16);
/// let s = r.add(40_000, 30_000); // wraps at 16 bits
/// assert_eq!(s, (40_000 + 30_000) & 0xFFFF);
/// assert_eq!(r.finish().events.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Recorder {
    width: usize,
    mask: u64,
    work: ThreadWork,
}

impl Recorder {
    /// Creates a recorder for a `width`-bit datapath (1..=64).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64`.
    #[must_use]
    pub fn new(width: usize) -> Recorder {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        Recorder {
            width,
            mask,
            work: ThreadWork::default(),
        }
    }

    /// The datapath width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.work.events.len()
    }

    /// Consumes the recorder and returns the accumulated work.
    #[must_use]
    pub fn finish(self) -> ThreadWork {
        self.work
    }

    fn op(&mut self, op: AluOp, a: u64, b: u64) -> u64 {
        let a = a & self.mask;
        let b = b & self.mask;
        self.work.events.push(AluEvent::new(op, a, b));
        op.eval(a, b, self.width)
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: u64, b: u64) -> u64 {
        self.op(AluOp::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: u64, b: u64) -> u64 {
        self.op(AluOp::Sub, a, b)
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: u64, b: u64) -> u64 {
        self.op(AluOp::And, a, b)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: u64, b: u64) -> u64 {
        self.op(AluOp::Or, a, b)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: u64, b: u64) -> u64 {
        self.op(AluOp::Xor, a, b)
    }

    /// Logical shift left by `b mod width`.
    pub fn shl(&mut self, a: u64, b: u64) -> u64 {
        self.op(AluOp::Shl, a, b)
    }

    /// Logical shift right by `b mod width`.
    pub fn shr(&mut self, a: u64, b: u64) -> u64 {
        self.op(AluOp::Shr, a, b)
    }

    /// Unsigned less-than as a 0/1 value.
    pub fn sltu(&mut self, a: u64, b: u64) -> u64 {
        self.op(AluOp::Sltu, a, b)
    }

    /// Unsigned comparison as a boolean (recorded as `sltu` + branch).
    pub fn less_than(&mut self, a: u64, b: u64) -> bool {
        let r = self.sltu(a, b);
        self.branch();
        r == 1
    }

    /// Multiplication, low half.
    pub fn mul(&mut self, a: u64, b: u64) -> u64 {
        self.op(AluOp::Mul, a, b)
    }

    /// Multiplication, high half.
    pub fn mulhi(&mut self, a: u64, b: u64) -> u64 {
        self.op(AluOp::MulHi, a, b)
    }

    /// Fixed-point multiply with `frac` fractional bits:
    /// `(a * b) >> frac`, all at datapath width.
    pub fn fxmul(&mut self, a: u64, b: u64, frac: u32) -> u64 {
        let lo = self.mul(a, b);
        let hi = self.mulhi(a, b);
        // (hi << (width - frac)) | (lo >> frac), recorded as real shifts/or.
        let hi_part = self.shl(hi, (self.width as u64) - u64::from(frac));
        let lo_part = self.shr(lo, u64::from(frac));
        self.or(hi_part, lo_part)
    }

    /// Records a load from `addr` (also records the address computation as
    /// a real add of base + offset when callers use [`Recorder::index`]).
    pub fn load(&mut self, addr: u64) {
        self.work.mem_refs.push(MemRef {
            addr,
            is_store: false,
        });
    }

    /// Records a store to `addr`.
    pub fn store(&mut self, addr: u64) {
        self.work.mem_refs.push(MemRef {
            addr,
            is_store: true,
        });
    }

    /// Address arithmetic for `base[idx]` with `elem` bytes per element:
    /// recorded as a shift + add (what the AGEN datapath does), returns the
    /// byte address.
    pub fn index(&mut self, base: u64, idx: u64, elem: u64) -> u64 {
        let offset = self.shl(idx, elem.trailing_zeros() as u64);
        self.add(base, offset)
    }

    /// Records a conditional-branch instruction.
    pub fn branch(&mut self) {
        self.work.branches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_masked_to_width() {
        let mut r = Recorder::new(8);
        assert_eq!(r.add(250, 10), (250 + 10) & 0xFF);
        assert_eq!(r.mul(20, 20), (20 * 20) & 0xFF);
        assert_eq!(r.sub(0, 1), 0xFF);
    }

    #[test]
    fn every_op_is_recorded_in_order() {
        let mut r = Recorder::new(16);
        r.add(1, 2);
        r.xor(3, 4);
        r.mul(5, 6);
        let w = r.finish();
        assert_eq!(w.events.len(), 3);
        assert_eq!(w.events[0].op, AluOp::Add);
        assert_eq!(w.events[1].op, AluOp::Xor);
        assert_eq!(w.events[2].op, AluOp::Mul);
        assert_eq!(w.events[2].a, 5);
    }

    #[test]
    fn fxmul_matches_reference() {
        // 2.5 * 3.0 in 8.8 fixed point = 7.5.
        let mut r = Recorder::new(16);
        let a = (2 << 8) + 128; // 2.5
        let b = 3 << 8; // 3.0
        let p = r.fxmul(a, b, 8);
        assert_eq!(p, (7 << 8) + 128); // 7.5
                                       // And it produced both multiplier halves as events.
        let w = r.finish();
        assert!(w.events.iter().any(|e| e.op == AluOp::Mul));
        assert!(w.events.iter().any(|e| e.op == AluOp::MulHi));
    }

    #[test]
    fn memory_and_branches_counted() {
        let mut r = Recorder::new(16);
        let addr = r.index(0x1000, 5, 8);
        assert_eq!(addr, 0x1000 + 5 * 8);
        r.load(addr);
        r.store(addr);
        assert!(r.less_than(1, 2));
        let w = r.finish();
        assert_eq!(w.mem_refs.len(), 2);
        assert!(w.mem_refs[1].is_store);
        assert_eq!(w.branches, 1);
        // instructions = 2 (index) + 1 (sltu) + 2 mem + 1 branch
        assert_eq!(w.instructions(), 6);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_rejected() {
        let _ = Recorder::new(0);
    }
}
