//! Benchmark catalogue and trace containers.

use crate::kernels;
use crate::recorder::ThreadWork;

/// The ten SPLASH-2 benchmarks the paper characterizes (Sec 5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Benchmark {
    /// Fast-multipole-style n-body interaction phase.
    Fmm,
    /// Radix sort (the paper's motivating example, Fig 3.5).
    Radix,
    /// Blocked LU factorization, contiguous block assignment.
    LuContig,
    /// Blocked LU factorization, non-contiguous (interleaved) assignment.
    LuNcontig,
    /// Radix-2 integer FFT (homogeneous + high error probabilities).
    Fft,
    /// Spatial water simulation (homogeneous).
    WaterSp,
    /// Barnes-Hut-style tree n-body.
    Barnes,
    /// Tile-parallel ray tracer.
    Raytrace,
    /// Cholesky factorization.
    Cholesky,
    /// Ocean grid relaxation (homogeneous).
    Ocean,
}

impl Benchmark {
    /// All ten benchmarks.
    pub const ALL: [Benchmark; 10] = [
        Benchmark::Fmm,
        Benchmark::Radix,
        Benchmark::LuContig,
        Benchmark::LuNcontig,
        Benchmark::Fft,
        Benchmark::WaterSp,
        Benchmark::Barnes,
        Benchmark::Raytrace,
        Benchmark::Cholesky,
        Benchmark::Ocean,
    ];

    /// The seven benchmarks reported in the paper's result figures (the
    /// heterogeneous ones; Sec 5.4 drops FFT, Ocean and Water-sp).
    pub const REPORTED: [Benchmark; 7] = [
        Benchmark::Barnes,
        Benchmark::Cholesky,
        Benchmark::Fmm,
        Benchmark::LuContig,
        Benchmark::LuNcontig,
        Benchmark::Radix,
        Benchmark::Raytrace,
    ];

    /// Whether the paper found this benchmark's per-thread error
    /// probabilities homogeneous (so per-core TS suffices).
    #[must_use]
    pub const fn paper_homogeneous(self) -> bool {
        matches!(self, Benchmark::Fft | Benchmark::WaterSp | Benchmark::Ocean)
    }

    /// Canonical lowercase name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Benchmark::Fmm => "fmm",
            Benchmark::Radix => "radix",
            Benchmark::LuContig => "lu-contig",
            Benchmark::LuNcontig => "lu-ncontig",
            Benchmark::Fft => "fft",
            Benchmark::WaterSp => "water-sp",
            Benchmark::Barnes => "barnes",
            Benchmark::Raytrace => "raytrace",
            Benchmark::Cholesky => "cholesky",
            Benchmark::Ocean => "ocean",
        }
    }

    /// Parses a benchmark from its name, case-insensitively and treating
    /// `_` as `-` (`"Radix"`, `"LU_CONTIG"` both parse) — forgiving
    /// enough for CLI arguments and hand-written scenario specs.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Benchmark> {
        let norm: String = name
            .trim()
            .chars()
            .map(|c| {
                if c == '_' {
                    '-'
                } else {
                    c.to_ascii_lowercase()
                }
            })
            .collect();
        Benchmark::ALL.iter().copied().find(|b| b.name() == norm)
    }

    /// Runs the instrumented kernel and returns its trace.
    ///
    /// Deterministic for a given config (including its seed).
    #[must_use]
    pub fn run(self, cfg: &WorkloadConfig) -> WorkloadTrace {
        let intervals = match self {
            Benchmark::Fmm => kernels::nbody::fmm(cfg),
            Benchmark::Radix => kernels::sort::radix(cfg),
            Benchmark::LuContig => kernels::linalg::lu(cfg, true),
            Benchmark::LuNcontig => kernels::linalg::lu(cfg, false),
            Benchmark::Fft => kernels::fft::fft(cfg),
            Benchmark::WaterSp => kernels::nbody::water(cfg),
            Benchmark::Barnes => kernels::nbody::barnes(cfg),
            Benchmark::Raytrace => kernels::render::raytrace(cfg),
            Benchmark::Cholesky => kernels::linalg::cholesky(cfg),
            Benchmark::Ocean => kernels::grid::ocean(cfg),
        };
        WorkloadTrace {
            benchmark: self,
            intervals,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Size and shape of a workload run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of threads (= cores; the paper uses 4).
    pub threads: usize,
    /// Problem-size knob: elements per thread (keys, matrix panels,
    /// particles, pixels — kernel-specific interpretation).
    pub scale: usize,
    /// Number of barrier intervals to run (the paper uses up to 3).
    pub intervals: usize,
    /// Datapath width of the recorded operands (matches the stage width).
    pub width: usize,
    /// RNG seed for input-data generation.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A small, test-friendly configuration.
    #[must_use]
    pub fn small(threads: usize) -> WorkloadConfig {
        WorkloadConfig {
            threads,
            scale: 256,
            intervals: 3,
            width: 16,
            seed: 0xC0FFEE,
        }
    }

    /// The paper-shaped configuration: 4 threads, 3 barrier intervals,
    /// enough work per interval for stable error curves.
    #[must_use]
    pub fn paper_default() -> WorkloadConfig {
        WorkloadConfig {
            threads: 4,
            scale: 2048,
            intervals: 3,
            width: 16,
            seed: 0xC0FFEE,
        }
    }
}

/// One barrier interval: the work each thread performed between two
/// consecutive barriers.
#[derive(Debug, Clone, Default)]
pub struct BarrierInterval {
    work: Vec<ThreadWork>,
}

impl BarrierInterval {
    /// Wraps per-thread work.
    #[must_use]
    pub fn new(work: Vec<ThreadWork>) -> BarrierInterval {
        BarrierInterval { work }
    }

    /// Number of threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.work.len()
    }

    /// One thread's work.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[must_use]
    pub fn thread(&self, tid: usize) -> &ThreadWork {
        &self.work[tid]
    }

    /// Iterates over per-thread work.
    pub fn iter(&self) -> std::slice::Iter<'_, ThreadWork> {
        self.work.iter()
    }
}

impl<'a> IntoIterator for &'a BarrierInterval {
    type Item = &'a ThreadWork;
    type IntoIter = std::slice::Iter<'a, ThreadWork>;
    fn into_iter(self) -> Self::IntoIter {
        self.work.iter()
    }
}

/// A full instrumented run: the benchmark and its barrier intervals.
#[derive(Debug, Clone)]
pub struct WorkloadTrace {
    /// Which benchmark produced this trace.
    pub benchmark: Benchmark,
    /// The barrier intervals, in execution order.
    pub intervals: Vec<BarrierInterval>,
}

impl WorkloadTrace {
    /// Total dynamic instructions across all threads and intervals.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.intervals
            .iter()
            .flat_map(|iv| iv.iter())
            .map(ThreadWork::instructions)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
        // CLI/spec-friendly parsing: case-insensitive, `_` as `-`.
        assert_eq!(Benchmark::from_name("Radix"), Some(Benchmark::Radix));
        assert_eq!(Benchmark::from_name("LU_CONTIG"), Some(Benchmark::LuContig));
        assert_eq!(Benchmark::from_name(" water-sp "), Some(Benchmark::WaterSp));
    }

    #[test]
    fn reported_set_excludes_homogeneous() {
        for b in Benchmark::REPORTED {
            assert!(!b.paper_homogeneous(), "{b} should be heterogeneous");
        }
        assert_eq!(
            Benchmark::ALL.len() - Benchmark::REPORTED.len(),
            3,
            "exactly FFT, Ocean, Water-sp are dropped"
        );
    }
}
