//! # workloads — instrumented SPLASH-2-like kernels for SynTS
//!
//! The paper characterizes ten SPLASH-2 benchmarks on a Gem5-simulated
//! 4-core Alpha, extracting cycle-by-cycle pipe-stage input vectors
//! (Sec 5.2, 5.4). SPLASH-2 binaries and Gem5 are not available here, so
//! this crate reimplements the *benchmarks themselves* as small, real
//! parallel kernels — radix sort, blocked LU (contiguous and
//! non-contiguous), FFT, n-body (FMM-style and Barnes-Hut-style), water,
//! raytracing, Cholesky, ocean relaxation — each instrumented so that every
//! ALU-relevant operation it performs is recorded as a
//! [`circuits::AluEvent`] with its true operand values, partitioned by
//! thread and barrier interval.
//!
//! The thread-level heterogeneity the paper discovered arises here by the
//! same mechanism as on real hardware: different threads touch different
//! data (digit ranges, matrix panels, spatial regions), so their operand
//! distributions — and therefore their sensitized circuit delays — differ.
//! The three benchmarks the paper found homogeneous (FFT, Ocean, Water-sp)
//! partition data symmetrically and come out homogeneous here too.
//!
//! ```
//! use workloads::{Benchmark, WorkloadConfig};
//!
//! let trace = Benchmark::Radix.run(&WorkloadConfig::small(4));
//! assert_eq!(trace.intervals[0].threads(), 4);
//! // Every thread did real work in the first interval.
//! assert!(trace.intervals[0].thread(0).events.len() > 100);
//! ```
#![forbid(unsafe_code)]

mod kernels;
mod recorder;
mod types;

pub use recorder::{MemRef, Recorder, ThreadWork};
pub use types::{BarrierInterval, Benchmark, WorkloadConfig, WorkloadTrace};
