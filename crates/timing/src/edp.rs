//! Energy/execution-time metrics and Pareto utilities for the evaluation.

use serde::{Deserialize, Serialize};

/// An (energy, execution time) operating point — the axes of Figs 6.11–6.16.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyDelay {
    /// Total energy of the barrier interval (Eq 4.3 summed over threads).
    pub energy: f64,
    /// Barrier execution time (Eq 4.2).
    pub time: f64,
}

impl EnergyDelay {
    /// Creates a point.
    #[must_use]
    pub fn new(energy: f64, time: f64) -> EnergyDelay {
        EnergyDelay { energy, time }
    }

    /// The energy-delay product — the paper's summary metric (Fig 6.18).
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy * self.time
    }

    /// This point with both axes normalized to a baseline point.
    #[must_use]
    pub fn normalized_to(&self, base: EnergyDelay) -> EnergyDelay {
        EnergyDelay {
            energy: self.energy / base.energy,
            time: self.time / base.time,
        }
    }

    /// Whether this point dominates `other` (no worse on both axes,
    /// strictly better on at least one).
    #[must_use]
    pub fn dominates(&self, other: EnergyDelay) -> bool {
        (self.energy <= other.energy && self.time <= other.time)
            && (self.energy < other.energy || self.time < other.time)
    }
}

/// Indices of the Pareto-optimal points (minimizing both axes), sorted by
/// ascending time.
///
/// ```
/// use timing::{pareto_front, EnergyDelay};
/// let pts = vec![
///     EnergyDelay::new(1.0, 1.0),
///     EnergyDelay::new(0.8, 1.2),
///     EnergyDelay::new(1.1, 1.1), // dominated by the first point? no: slower and hungrier than (1.0, 1.0) -> dominated
/// ];
/// assert_eq!(pareto_front(&pts), vec![0, 1]);
/// ```
#[must_use]
pub fn pareto_front(points: &[EnergyDelay]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        points[a]
            .time
            .partial_cmp(&points[b].time)
            .expect("times are finite")
            .then(
                points[a]
                    .energy
                    .partial_cmp(&points[b].energy)
                    .expect("energies are finite"),
            )
    });
    let mut front = Vec::new();
    let mut best_energy = f64::INFINITY;
    for &i in &idx {
        if points[i].energy < best_energy {
            front.push(i);
            best_energy = points[i].energy;
        }
    }
    front.sort_by(|&a, &b| {
        points[a]
            .time
            .partial_cmp(&points[b].time)
            .expect("times are finite")
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_is_product() {
        let p = EnergyDelay::new(2.0, 3.0);
        assert_eq!(p.edp(), 6.0);
    }

    #[test]
    fn normalization() {
        let p = EnergyDelay::new(2.0, 3.0).normalized_to(EnergyDelay::new(4.0, 6.0));
        assert_eq!(p.energy, 0.5);
        assert_eq!(p.time, 0.5);
    }

    #[test]
    fn dominance() {
        let a = EnergyDelay::new(1.0, 1.0);
        let b = EnergyDelay::new(2.0, 2.0);
        assert!(a.dominates(b));
        assert!(!b.dominates(a));
        assert!(!a.dominates(a), "a point never dominates itself");
        // Trade-off points don't dominate each other.
        let c = EnergyDelay::new(0.5, 2.0);
        assert!(!a.dominates(c));
        assert!(!c.dominates(a));
    }

    #[test]
    fn front_extracts_non_dominated() {
        let pts = vec![
            EnergyDelay::new(1.0, 1.0),
            EnergyDelay::new(0.5, 2.0),
            EnergyDelay::new(1.5, 1.5), // dominated
            EnergyDelay::new(0.4, 3.0),
            EnergyDelay::new(0.6, 2.5), // dominated by (0.5, 2.0)
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 3]);
    }

    #[test]
    fn front_of_empty_and_singleton() {
        assert!(pareto_front(&[]).is_empty());
        assert_eq!(pareto_front(&[EnergyDelay::new(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn front_handles_ties() {
        let pts = vec![EnergyDelay::new(1.0, 1.0), EnergyDelay::new(1.0, 1.0)];
        // Exactly one of the duplicates survives.
        assert_eq!(pareto_front(&pts).len(), 1);
    }
}
