//! Error-probability functions `err(r)` — the paper's central object.
//!
//! For a thread running a pipe stage at timing-speculation ratio `r`
//! (clock period = `r · t_nom`), the error probability is the fraction of
//! its instructions whose sensitized delay exceeds `r · t_nom`. The paper
//! uses two flavors:
//!
//! * [`ErrorCurve`] — the *exact* curve from a full delay trace (offline,
//!   Sec 4.2);
//! * [`SampledCurve`] — the estimate `~err` built from error counts at the
//!   `S` discrete TSR levels during the sampling phase (online, Sec 4.3).
//!
//! Both implement [`ErrorModel`], so the optimizer is agnostic.

use serde::{Deserialize, Serialize};

use crate::error::TimingError;
use crate::trace::DelayTrace;

/// Anything that can report an error probability at a TSR `r ∈ (0, 1]`.
pub trait ErrorModel {
    /// Error probability at timing-speculation ratio `r`.
    ///
    /// Must be non-increasing in `r` and 0 at `r = 1` for traces bounded by
    /// the nominal period.
    fn err(&self, r: f64) -> f64;
}

impl<T: ErrorModel + ?Sized> ErrorModel for &T {
    fn err(&self, r: f64) -> f64 {
        (**self).err(r)
    }
}

/// Exact empirical error-probability curve from a delay trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorCurve {
    /// Normalized delays, ascending.
    sorted: Vec<f64>,
}

impl ErrorCurve {
    /// Builds the curve from a delay trace.
    #[must_use]
    pub fn from_trace(trace: &DelayTrace) -> ErrorCurve {
        let mut sorted = trace.normalized();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("delays are finite"));
        ErrorCurve { sorted }
    }

    /// Builds the curve from pre-normalized delays (`d / t_nom`).
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::EmptyTrace`] if `normalized` is empty.
    pub fn from_normalized_delays(mut normalized: Vec<f64>) -> Result<ErrorCurve, TimingError> {
        if normalized.is_empty() {
            return Err(TimingError::EmptyTrace);
        }
        normalized.sort_by(|a, b| a.partial_cmp(b).expect("delays are finite"));
        Ok(ErrorCurve { sorted: normalized })
    }

    /// Number of instructions backing the curve.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.sorted.len()
    }

    /// Evaluates the curve at several ratios at once.
    #[must_use]
    pub fn sample_points(&self, ratios: &[f64]) -> Vec<(f64, f64)> {
        ratios.iter().map(|&r| (r, self.err(r))).collect()
    }
}

impl ErrorModel for ErrorCurve {
    fn err(&self, r: f64) -> f64 {
        // Fraction of normalized delays strictly greater than r.
        let idx = self.sorted.partition_point(|&d| d <= r);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }
}

/// Online estimate of `err` from error counts observed at discrete TSR
/// levels during the sampling phase; linear interpolation in between.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledCurve {
    /// `(r, err)` points, ascending in `r`.
    points: Vec<(f64, f64)>,
}

impl SampledCurve {
    /// Builds the estimate from `(ratio, observed error fraction)` points.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::NoSamples`] for an empty point set and
    /// [`TimingError::InvalidRatio`] for ratios outside `(0, 1]`.
    pub fn from_points(mut points: Vec<(f64, f64)>) -> Result<SampledCurve, TimingError> {
        if points.is_empty() {
            return Err(TimingError::NoSamples);
        }
        for &(r, _) in &points {
            if !(r > 0.0 && r <= 1.0) {
                return Err(TimingError::InvalidRatio(r));
            }
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("ratios are finite"));
        Ok(SampledCurve { points })
    }

    /// Builds the estimate from raw counts: `(ratio, errors, samples)` per
    /// level — what the sampling-phase hardware counters deliver.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::NoSamples`] if any level has zero samples or
    /// the set is empty; [`TimingError::InvalidRatio`] for bad ratios.
    pub fn from_counts(counts: &[(f64, u64, u64)]) -> Result<SampledCurve, TimingError> {
        if counts.is_empty() {
            return Err(TimingError::NoSamples);
        }
        let mut points = Vec::with_capacity(counts.len());
        for &(r, errors, samples) in counts {
            if samples == 0 {
                return Err(TimingError::NoSamples);
            }
            points.push((r, errors as f64 / samples as f64));
        }
        SampledCurve::from_points(points)
    }

    /// The `(r, err)` sample points, ascending in `r`.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

impl ErrorModel for SampledCurve {
    fn err(&self, r: f64) -> f64 {
        let pts = &self.points;
        if r <= pts[0].0 {
            return pts[0].1;
        }
        if r >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            let (r0, e0) = w[0];
            let (r1, e1) = w[1];
            if r <= r1 {
                let t = (r - r0) / (r1 - r0);
                return e0 + t * (e1 - e0);
            }
        }
        pts[pts.len() - 1].1
    }
}

/// Heterogeneity of a set of curves at ratio `r`: worst-thread error divided
/// by best-thread error (∞-safe: returns 1.0 when all are error-free).
///
/// Fig 3.5 reports ≈ 4× for Radix at aggressive ratios.
#[must_use]
pub fn heterogeneity<M: ErrorModel>(curves: &[M], r: f64) -> f64 {
    let errs: Vec<f64> = curves.iter().map(|c| c.err(r)).collect();
    let max = errs.iter().fold(0.0f64, |m, &e| m.max(e));
    let min = errs.iter().fold(f64::INFINITY, |m, &e| m.min(e));
    if max == 0.0 {
        1.0
    } else if min == 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

/// Largest absolute gap between two error models over the given ratios —
/// used to validate the online estimate against ground truth (Fig 6.17).
#[must_use]
pub fn max_abs_gap<A: ErrorModel, B: ErrorModel>(a: &A, b: &B, ratios: &[f64]) -> f64 {
    ratios
        .iter()
        .map(|&r| (a.err(r) - b.err(r)).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(delays: Vec<f64>) -> ErrorCurve {
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    #[test]
    fn err_counts_strictly_greater() {
        let c = curve(vec![0.2, 0.5, 0.5, 0.9]);
        assert_eq!(c.err(1.0), 0.0);
        assert_eq!(c.err(0.9), 0.0); // d > r is strict
        assert_eq!(c.err(0.89), 0.25);
        assert_eq!(c.err(0.5), 0.25);
        assert_eq!(c.err(0.49), 0.75);
        assert_eq!(c.err(0.1), 1.0);
    }

    #[test]
    fn err_is_monotone_nonincreasing() {
        let c = curve((0..100).map(|i| i as f64 / 100.0).collect());
        let mut prev = f64::INFINITY;
        let mut r = 0.05;
        while r <= 1.0 {
            let e = c.err(r);
            assert!(e <= prev + 1e-12);
            prev = e;
            r += 0.01;
        }
    }

    #[test]
    fn sampled_curve_interpolates() {
        let s = SampledCurve::from_points(vec![(0.6, 0.3), (0.8, 0.1), (1.0, 0.0)]).expect("valid");
        assert!((s.err(0.7) - 0.2).abs() < 1e-12);
        assert_eq!(s.err(0.5), 0.3); // clamp below
        assert_eq!(s.err(1.0), 0.0);
    }

    #[test]
    fn sampled_curve_from_counts() {
        let s = SampledCurve::from_counts(&[(0.7, 30, 100), (1.0, 0, 100)]).expect("valid");
        assert!((s.err(0.7) - 0.3).abs() < 1e-12);
        assert!(SampledCurve::from_counts(&[(0.7, 1, 0)]).is_err());
        assert!(SampledCurve::from_counts(&[]).is_err());
    }

    #[test]
    fn sampled_curve_validates_ratios() {
        assert!(matches!(
            SampledCurve::from_points(vec![(1.5, 0.0)]).expect_err("bad"),
            TimingError::InvalidRatio(_)
        ));
        assert!(matches!(
            SampledCurve::from_points(vec![(0.0, 0.0)]).expect_err("bad"),
            TimingError::InvalidRatio(_)
        ));
    }

    #[test]
    fn heterogeneity_ratio() {
        let hot = curve(vec![0.9, 0.9, 0.9, 0.1]);
        let cold = curve(vec![0.9, 0.1, 0.1, 0.1]);
        // At r = 0.5: hot errs 0.75, cold errs 0.25 -> 3x.
        let h = heterogeneity(&[hot, cold], 0.5);
        assert!((h - 3.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneity_degenerate_cases() {
        let silent = curve(vec![0.1, 0.2]);
        assert_eq!(heterogeneity(&[silent.clone(), silent.clone()], 0.9), 1.0);
        let noisy = curve(vec![0.95, 0.96]);
        assert!(heterogeneity(&[noisy, silent], 0.9).is_infinite());
    }

    #[test]
    fn gap_between_exact_and_sampled() {
        let exact = curve((0..1000).map(|i| 0.5 + 0.4 * (i as f64 / 1000.0)).collect());
        let ratios = [0.6, 0.7, 0.8, 0.9, 1.0];
        let pts: Vec<(f64, f64)> = ratios.iter().map(|&r| (r, exact.err(r))).collect();
        let sampled = SampledCurve::from_points(pts).expect("valid");
        // Sampling at the exact curve's own values keeps the gap tiny at
        // those ratios.
        assert!(max_abs_gap(&exact, &sampled, &ratios) < 1e-12);
    }
}
