//! Error type for the timing layer.

use std::error::Error;
use std::fmt;

use gatelib::NetlistError;

/// Errors raised while characterizing delays or building error curves.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TimingError {
    /// An underlying netlist/simulation failure.
    Netlist(NetlistError),
    /// A delay trace or event list was empty, so no statistics exist.
    EmptyTrace,
    /// A timing-speculation ratio outside the meaningful `(0, 1]` range.
    InvalidRatio(f64),
    /// A sampled estimate was requested with zero samples per level.
    NoSamples,
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::Netlist(e) => write!(f, "netlist error: {e}"),
            TimingError::EmptyTrace => write!(f, "empty delay trace"),
            TimingError::InvalidRatio(r) => {
                write!(f, "timing speculation ratio {r} outside (0, 1]")
            }
            TimingError::NoSamples => write!(f, "sampled curve requires at least one sample"),
        }
    }
}

impl Error for TimingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TimingError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for TimingError {
    fn from(e: NetlistError) -> TimingError {
        TimingError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_netlist_errors() {
        let e: TimingError = NetlistError::NoOutputs.into();
        assert!(matches!(e, TimingError::Netlist(_)));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn display_messages() {
        assert_eq!(TimingError::EmptyTrace.to_string(), "empty delay trace");
        assert!(TimingError::InvalidRatio(1.5).to_string().contains("1.5"));
    }
}
