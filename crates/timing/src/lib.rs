//! # timing — cross-layer timing products for SynTS
//!
//! This crate is the bridge between the circuit layer ([`gatelib`] /
//! [`circuits`]) and the optimization layer (`synts-core`). It turns
//! per-instruction operand traces into:
//!
//! * [`DelayTrace`]s — sensitized path delays from dynamic timing simulation;
//! * [`ErrorCurve`]s — the per-thread error-probability functions `err_i(r)`
//!   of the paper's system model (Sec 4.1, Fig 3.5);
//! * sampled estimates [`SampledCurve`] — what the online scheme measures
//!   during its sampling phase (Sec 4.3);
//! * [`EnergyDelay`] metrics and Pareto utilities for the evaluation plots.
//!
//! ```
//! use circuits::{AluEvent, AluOp, StageKind};
//! use timing::{ErrorModel, StageCharacterizer};
//!
//! # fn main() -> Result<(), timing::TimingError> {
//! let char = StageCharacterizer::new(StageKind::SimpleAlu, 8)?;
//! let events: Vec<AluEvent> = (0..200)
//!     .map(|i| AluEvent::new(AluOp::Add, i * 37 % 251, i * 101 % 249))
//!     .collect();
//! let curve = char.error_curve(&events)?;
//! // At the nominal clock (r = 1) no instruction can fail.
//! assert_eq!(curve.err(1.0), 0.0);
//! // Overclocking far enough makes errors appear.
//! assert!(curve.err(0.3) > 0.0);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

mod characterize;
mod edp;
mod err_curve;
mod error;
mod trace;

pub use characterize::{DieTiming, StageCharacterizer};
pub use edp::{pareto_front, EnergyDelay};
pub use err_curve::{heterogeneity, max_abs_gap, ErrorCurve, ErrorModel, SampledCurve};
pub use error::TimingError;
pub use trace::DelayTrace;

// Re-export the voltage vocabulary so downstream crates need only `timing`.
pub use gatelib::{Voltage, VoltageTable, VOLTAGE_TABLE_POINTS};
