//! Sensitized-delay traces: the raw product of the cross-layer methodology.

use serde::{Deserialize, Serialize};

use crate::error::TimingError;

/// A trace of per-instruction sensitized path delays for one thread on one
/// pipe stage, recorded at Vdd = 1.0 V, together with the stage's nominal
/// period (critical-path delay) at the same voltage.
///
/// Because all gate delays scale with the same Table 5.1 factor, the
/// *normalized* delays (`delay / t_nom`) — and therefore the error curve —
/// are voltage-independent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayTrace {
    delays: Vec<f64>,
    tnom_v1: f64,
}

impl DelayTrace {
    /// Wraps raw delays and the stage's nominal period.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::EmptyTrace`] if `delays` is empty, and
    /// [`TimingError::InvalidRatio`] if `tnom_v1` is not positive.
    // `!(x > 0)` rather than `x <= 0`: must also reject NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn new(delays: Vec<f64>, tnom_v1: f64) -> Result<DelayTrace, TimingError> {
        if delays.is_empty() {
            return Err(TimingError::EmptyTrace);
        }
        if !(tnom_v1 > 0.0) {
            return Err(TimingError::InvalidRatio(tnom_v1));
        }
        Ok(DelayTrace { delays, tnom_v1 })
    }

    /// The raw sensitized delays, in instruction order (1.0 V units).
    #[must_use]
    pub fn delays(&self) -> &[f64] {
        &self.delays
    }

    /// The stage's nominal clock period at 1.0 V (STA critical path).
    #[must_use]
    pub fn tnom_v1(&self) -> f64 {
        self.tnom_v1
    }

    /// Number of instructions in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.delays.len()
    }

    /// Whether the trace is empty (never true for constructed traces).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
    }

    /// Normalized delays `d / t_nom ∈ [0, 1]`, in instruction order.
    #[must_use]
    pub fn normalized(&self) -> Vec<f64> {
        self.delays.iter().map(|d| d / self.tnom_v1).collect()
    }

    /// Mean normalized delay — a quick activity summary.
    #[must_use]
    pub fn mean_normalized(&self) -> f64 {
        self.normalized().iter().sum::<f64>() / self.len() as f64
    }

    /// Largest normalized delay observed (≤ 1 by the STA bound).
    #[must_use]
    pub fn max_normalized(&self) -> f64 {
        self.delays
            .iter()
            .fold(0.0f64, |m, &d| m.max(d / self.tnom_v1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_bad_tnom() {
        assert_eq!(
            DelayTrace::new(vec![], 1.0).expect_err("empty"),
            TimingError::EmptyTrace
        );
        assert!(matches!(
            DelayTrace::new(vec![1.0], 0.0).expect_err("bad tnom"),
            TimingError::InvalidRatio(_)
        ));
    }

    #[test]
    fn normalization() {
        let t = DelayTrace::new(vec![5.0, 10.0, 2.5], 10.0).expect("valid");
        assert_eq!(t.normalized(), vec![0.5, 1.0, 0.25]);
        assert!((t.mean_normalized() - (0.5 + 1.0 + 0.25) / 3.0).abs() < 1e-12);
        assert_eq!(t.max_normalized(), 1.0);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}
