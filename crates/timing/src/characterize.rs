//! The cross-layer characterization pipeline (paper Fig 5.8):
//! operand trace → stage input vectors → dynamic timing simulation →
//! sensitized delay trace → error-probability curve.

use circuits::{build_stage, AluEvent, PipeStage, StageKind};
use gatelib::variation::DelayFactors;
use gatelib::{StaticTiming, TimingSim, Voltage, WideTimingSim, LANES};

use crate::err_curve::ErrorCurve;
use crate::error::TimingError;
use crate::trace::DelayTrace;

/// Characterizes one pipe stage: owns the stage netlist and its STA-derived
/// nominal period, and replays event streams through the timing simulator.
///
/// See the [crate-level example](crate) for usage.
pub struct StageCharacterizer {
    stage: Box<dyn PipeStage>,
    tnom_v1: f64,
    /// Per-cell delay factors of the die instance being characterized
    /// (`None` = the nominal, variation-free die).
    die: Option<DelayFactors>,
}

/// How a die instance's clock budget is derived when characterizing under
/// process variation or aging ([`StageCharacterizer::from_stage_on_die`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DieTiming {
    /// Speed binning: the die is clocked at its *own* point of first
    /// failure (factored STA). Normalized delays stay ≤ 1 and `err(1) = 0`.
    Binned,
    /// The design's nominal clock is kept regardless of the die: a slow or
    /// aged die can then sensitize paths *longer* than the period, so
    /// `err(r)` may be nonzero even at `r = 1` — the "aging consumed the
    /// guard band" regime the paper's introduction motivates.
    DesignNominal,
}

impl StageCharacterizer {
    /// Builds the given stage at the given datapath width and runs STA on it.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction/analysis failures as
    /// [`TimingError::Netlist`].
    ///
    /// # Panics
    ///
    /// Panics on invalid widths (see [`circuits::build_stage`]).
    pub fn new(kind: StageKind, width: usize) -> Result<StageCharacterizer, TimingError> {
        StageCharacterizer::from_stage(build_stage(kind, width)?)
    }

    /// Wraps an already-built stage.
    ///
    /// # Errors
    ///
    /// Propagates STA failures as [`TimingError::Netlist`].
    pub fn from_stage(stage: Box<dyn PipeStage>) -> Result<StageCharacterizer, TimingError> {
        let sta = StaticTiming::analyze(stage.netlist(), Voltage::NOMINAL)?;
        Ok(StageCharacterizer {
            tnom_v1: sta.nominal_period(),
            stage,
            die: None,
        })
    }

    /// Wraps a stage instantiated on a specific die (process-variation
    /// and/or aging [`DelayFactors`] from [`gatelib::variation`]), with the
    /// clock budget chosen by `timing`.
    ///
    /// # Errors
    ///
    /// Propagates STA failures and factor/cell-count mismatches as
    /// [`TimingError::Netlist`].
    pub fn from_stage_on_die(
        stage: Box<dyn PipeStage>,
        factors: DelayFactors,
        timing: DieTiming,
    ) -> Result<StageCharacterizer, TimingError> {
        let tnom_v1 = match timing {
            DieTiming::Binned => {
                StaticTiming::analyze_with_factors(stage.netlist(), Voltage::NOMINAL, &factors)?
                    .nominal_period()
            }
            DieTiming::DesignNominal => {
                StaticTiming::analyze(stage.netlist(), Voltage::NOMINAL)?.nominal_period()
            }
        };
        Ok(StageCharacterizer {
            tnom_v1,
            stage,
            die: Some(factors),
        })
    }

    /// The stage under characterization.
    #[must_use]
    pub fn stage(&self) -> &dyn PipeStage {
        self.stage.as_ref()
    }

    /// The stage's nominal clock period at 1.0 V (STA critical path).
    #[must_use]
    pub fn tnom_v1(&self) -> f64 {
        self.tnom_v1
    }

    /// The stage's nominal clock period at an arbitrary voltage
    /// (`t_nom(V)`, Sec 4.1).
    #[must_use]
    pub fn tnom(&self, voltage: Voltage) -> f64 {
        self.tnom_v1 * voltage.delay_scale()
    }

    /// Replays `events` through the stage and records the sensitized delay
    /// of every instruction whose operands reach the stage.
    ///
    /// Which events those are is the stage's [`PipeStage::accepts`] map:
    /// decode and the SimpleALU operand bus see every instruction, while
    /// the operand-isolated multiplier sees only multiplies — mirroring how
    /// the paper extracts per-stage input vectors from Gem5.
    ///
    /// The first accepted event initializes the circuit state and is not
    /// recorded (it has no predecessor vector).
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::EmptyTrace`] if fewer than two events reach
    /// the stage.
    pub fn delay_trace(&self, events: &[AluEvent]) -> Result<DelayTrace, TimingError> {
        self.delay_trace_sampled(events, usize::MAX)
    }

    /// Like [`Self::delay_trace`], but caps the number of *recorded*
    /// instructions at `max_samples` by striding uniformly through the
    /// events — the cheap path for long workload intervals.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::EmptyTrace`] if fewer than two events reach
    /// the stage.
    pub fn delay_trace_sampled(
        &self,
        events: &[AluEvent],
        max_samples: usize,
    ) -> Result<DelayTrace, TimingError> {
        let mut delays = Vec::new();
        self.delay_trace_into(events, max_samples, &mut delays)?;
        DelayTrace::new(delays, self.tnom_v1)
    }

    /// The batched characterization entry point: replays `events` through
    /// a 64-lane bit-parallel simulator ([`gatelib::WideTimingSim`]) and
    /// writes the sensitized delay of every recorded instruction into
    /// `delays` (cleared first, so a caller characterizing many intervals
    /// can recycle one buffer).
    ///
    /// The recorded delay of instruction `k` depends only on the settled
    /// circuit state left by instruction `k-1` — a pure function of that
    /// one vector — so the record list can be cut into up to 64 contiguous
    /// chunks, each chunk seeded with its predecessor vector and replayed
    /// in its own lane. One bitwise gate sweep then advances all chunks at
    /// once, and the result is **bit-identical** to the sequential replay
    /// (kept as [`Self::delay_trace_into_scalar`] and property-tested
    /// against it in `tests/bitparallel_sim.rs`), at roughly the cost of
    /// one lane.
    ///
    /// [`Self::delay_trace_sampled`] is this plus a [`DelayTrace`]
    /// wrapper; the recorded delays are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::EmptyTrace`] if fewer than two events reach
    /// the stage.
    pub fn delay_trace_into(
        &self,
        events: &[AluEvent],
        max_samples: usize,
        delays: &mut Vec<f64>,
    ) -> Result<(), TimingError> {
        delays.clear();
        let accepted: Vec<&AluEvent> = events.iter().filter(|e| self.stage.accepts(e.op)).collect();
        let m = accepted.len();
        if m < 2 {
            return Err(TimingError::EmptyTrace);
        }
        // Same sampling contract as the scalar path (see
        // `delay_trace_into_scalar` for why the stride is forced odd).
        let wanted = max_samples.max(1);
        let stride = ((m / wanted.saturating_add(1)).max(1)) | 1;
        // Record j is the transition into accepted event `j*stride + 1`
        // (stride > 1: disjoint seeded pairs; stride == 1: a chained walk).
        let records = if stride == 1 {
            (m - 1).min(wanted)
        } else {
            ((m - 2) / stride + 1).min(wanted)
        };

        // Per-lane schedule: (accepted-event index, record slot). NO_SLOT
        // marks seed steps whose delay is discarded. Records are split
        // into contiguous near-equal chunks so every lane replays an
        // independent slice of the trace.
        const NO_SLOT: usize = usize::MAX;
        let lanes = records.min(LANES);
        let mut ops: Vec<Vec<(usize, usize)>> = Vec::with_capacity(lanes);
        let base = records / lanes;
        let extra = records % lanes;
        let mut next = 0usize;
        for l in 0..lanes {
            let len = base + usize::from(l < extra);
            let (start, end) = (next, next + len);
            next = end;
            let mut lane_ops = Vec::new();
            if stride == 1 {
                lane_ops.push((start, NO_SLOT));
                for r in start..end {
                    lane_ops.push((r + 1, r));
                }
            } else {
                for j in start..end {
                    lane_ops.push((j * stride, NO_SLOT));
                    lane_ops.push((j * stride + 1, j));
                }
            }
            ops.push(lane_ops);
        }

        let mut sim = match &self.die {
            Some(f) => WideTimingSim::with_factors(self.stage.netlist(), Voltage::NOMINAL, f)?,
            None => WideTimingSim::new(self.stage.netlist(), Voltage::NOMINAL)?,
        };
        let n_pi = self.stage.netlist().primary_inputs().len();
        let mut words = vec![0u64; n_pi];
        let mut buf: Vec<bool> = Vec::new();
        delays.resize(records, 0.0);
        let depth = ops.iter().map(Vec::len).max().unwrap_or(0);
        for t in 0..depth {
            for (lane, lane_ops) in ops.iter().enumerate() {
                // Lanes past the end of their schedule keep their previous
                // vector: re-applying it toggles nothing and records
                // nothing, so ragged chunks cost no extra sweeps.
                let Some(&(ev, _)) = lane_ops.get(t) else {
                    continue;
                };
                self.stage.encode_into(accepted[ev], &mut buf);
                let mask = !(1u64 << lane);
                for (w, &bit) in words.iter_mut().zip(&buf) {
                    *w = (*w & mask) | (u64::from(bit) << lane);
                }
            }
            let step = sim.step(&words)?;
            for (lane, lane_ops) in ops.iter().enumerate() {
                if let Some(&(_, slot)) = lane_ops.get(t) {
                    if slot != NO_SLOT {
                        delays[slot] = step.delays[lane];
                    }
                }
            }
        }
        if delays.is_empty() {
            return Err(TimingError::EmptyTrace);
        }
        Ok(())
    }

    /// The sequential reference for [`Self::delay_trace_into`]: one scalar
    /// [`TimingSim`] streamed through the accepted events — no
    /// intermediate event collection, no per-vector allocation (the input
    /// vector and the simulator's net state are reused buffers). The wide
    /// path must match this bit for bit; it exists as the executable
    /// specification and for one-off callers timing a handful of vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::EmptyTrace`] if fewer than two events reach
    /// the stage.
    pub fn delay_trace_into_scalar(
        &self,
        events: &[AluEvent],
        max_samples: usize,
        delays: &mut Vec<f64>,
    ) -> Result<(), TimingError> {
        delays.clear();
        let accepted_len = events.iter().filter(|e| self.stage.accepts(e.op)).count();
        if accepted_len < 2 {
            return Err(TimingError::EmptyTrace);
        }
        // Striding keeps consecutive pairs (the delay of instruction k
        // depends on the state left by instruction k-1), so we subsample
        // windows of 2 rather than isolated events. The stride is forced
        // odd so that instruction streams with period-2 structure (e.g.
        // mul/mulhi pairs over the same operands) don't alias: an even
        // stride would sample only one phase of such a stream.
        let wanted = max_samples.max(1);
        let stride = ((accepted_len / wanted.saturating_add(1)).max(1)) | 1;
        let mut sim = match &self.die {
            Some(f) => TimingSim::with_factors(self.stage.netlist(), Voltage::NOMINAL, f)?,
            None => TimingSim::new(self.stage.netlist(), Voltage::NOMINAL)?,
        };
        delays.reserve(accepted_len.saturating_sub(1).min(wanted));
        let mut buf: Vec<bool> = Vec::new();
        let mut accepted = events.iter().filter(|e| self.stage.accepts(e.op));
        if stride == 1 {
            let first = accepted.next().expect("accepted_len >= 2");
            self.stage.encode_into(first, &mut buf);
            sim.step(&buf)?;
            for ev in accepted {
                self.stage.encode_into(ev, &mut buf);
                let t = sim.step(&buf)?;
                delays.push(t.delay);
                if delays.len() >= wanted {
                    break;
                }
            }
        } else {
            // Positions k ≡ 0 (mod stride) seed the circuit state; the
            // following event is the one whose transition is recorded.
            // stride is odd and > 1, so sampled pairs never overlap.
            for (k, ev) in accepted.enumerate() {
                if delays.len() >= wanted {
                    break;
                }
                match k % stride {
                    0 if k + 1 < accepted_len => {
                        self.stage.encode_into(ev, &mut buf);
                        sim.step(&buf)?;
                    }
                    1 => {
                        self.stage.encode_into(ev, &mut buf);
                        let t = sim.step(&buf)?;
                        delays.push(t.delay);
                    }
                    _ => {}
                }
            }
        }
        if delays.is_empty() {
            return Err(TimingError::EmptyTrace);
        }
        Ok(())
    }

    /// One-shot characterization: events → error-probability curve.
    ///
    /// # Errors
    ///
    /// See [`Self::delay_trace`].
    pub fn error_curve(&self, events: &[AluEvent]) -> Result<ErrorCurve, TimingError> {
        Ok(ErrorCurve::from_trace(&self.delay_trace(events)?))
    }

    /// Capped-cost characterization; see [`Self::delay_trace_sampled`].
    ///
    /// # Errors
    ///
    /// See [`Self::delay_trace`].
    pub fn error_curve_sampled(
        &self,
        events: &[AluEvent],
        max_samples: usize,
    ) -> Result<ErrorCurve, TimingError> {
        Ok(ErrorCurve::from_trace(
            &self.delay_trace_sampled(events, max_samples)?,
        ))
    }
}

impl std::fmt::Debug for StageCharacterizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageCharacterizer")
            .field("stage", &self.stage.name())
            .field("tnom_v1", &self.tnom_v1)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::err_curve::ErrorModel;
    use circuits::AluOp;

    fn lcg_events(seed: u64, n: usize, mask: u64) -> Vec<AluEvent> {
        let ops = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And, AluOp::Shl];
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let op = ops[(state >> 61) as usize % ops.len()];
                AluEvent::new(op, state & mask, (state >> 13) & mask)
            })
            .collect()
    }

    #[test]
    fn delay_trace_is_bounded_by_tnom() {
        let c = StageCharacterizer::new(StageKind::SimpleAlu, 8).expect("build");
        let trace = c.delay_trace(&lcg_events(42, 300, 0xFF)).expect("trace");
        assert!(trace.max_normalized() <= 1.0 + 1e-9);
        assert!(trace.mean_normalized() > 0.0);
    }

    #[test]
    fn error_curve_zero_at_nominal_clock() {
        let c = StageCharacterizer::new(StageKind::SimpleAlu, 8).expect("build");
        let curve = c.error_curve(&lcg_events(7, 300, 0xFF)).expect("curve");
        assert_eq!(curve.err(1.0), 0.0);
        // Monotone in r.
        assert!(curve.err(0.4) >= curve.err(0.8));
    }

    #[test]
    fn unit_die_matches_nominal_characterization() {
        let events = lcg_events(11, 200, 0xFF);
        let plain = StageCharacterizer::new(StageKind::SimpleAlu, 8).expect("build");
        let stage = circuits::build_stage(StageKind::SimpleAlu, 8).expect("build");
        let unit = DelayFactors::unit(stage.netlist().cell_count());
        let on_die =
            StageCharacterizer::from_stage_on_die(stage, unit, DieTiming::Binned).expect("build");
        let a = plain.delay_trace(&events).expect("trace");
        let b = on_die.delay_trace(&events).expect("trace");
        assert_eq!(a.delays(), b.delays());
        assert!((a.tnom_v1() - b.tnom_v1()).abs() < 1e-12);
    }

    #[test]
    fn binned_die_keeps_err_zero_at_nominal() {
        // On its own (factored) clock, even a slow die never errs at r = 1.
        let events = lcg_events(13, 300, 0xFF);
        let stage = circuits::build_stage(StageKind::SimpleAlu, 8).expect("build");
        let aging = gatelib::variation::AgingModel::nbti_ptm22();
        let f = aging
            .factors(stage.netlist().cell_count(), 10.0, None)
            .expect("ok");
        let c = StageCharacterizer::from_stage_on_die(stage, f, DieTiming::Binned).expect("build");
        let curve = c.error_curve(&events).expect("curve");
        assert_eq!(curve.err(1.0), 0.0);
    }

    #[test]
    fn design_nominal_aged_die_errs_more() {
        // Same aged die, but clocked at the fresh design period: every
        // normalized delay grows by the aging factor, so err at moderate r
        // can only go up — and may be nonzero even at r = 1.
        let events = lcg_events(13, 300, 0xFF);
        let fresh = StageCharacterizer::new(StageKind::SimpleAlu, 8).expect("build");
        let fresh_curve = fresh.error_curve(&events).expect("curve");
        let stage = circuits::build_stage(StageKind::SimpleAlu, 8).expect("build");
        let aging = gatelib::variation::AgingModel::nbti_ptm22();
        let f = aging
            .factors(stage.netlist().cell_count(), 10.0, None)
            .expect("ok");
        let aged = StageCharacterizer::from_stage_on_die(stage, f, DieTiming::DesignNominal)
            .expect("build");
        let aged_curve = aged.error_curve(&events).expect("curve");
        for r in [0.7, 0.8, 0.9, 1.0] {
            assert!(
                aged_curve.err(r) >= fresh_curve.err(r),
                "aged err({r}) {} < fresh {}",
                aged_curve.err(r),
                fresh_curve.err(r)
            );
        }
        // Every sensitized path grew by exactly the uniform aging factor.
        let fresh_trace = fresh.delay_trace(&events).expect("trace");
        let aged_trace = aged.delay_trace(&events).expect("trace");
        let growth = 1.0 + aging.degradation(10.0);
        assert!(
            (aged_trace.max_normalized() - growth * fresh_trace.max_normalized()).abs()
                < 1e-9 * growth,
            "uniform aging scales the worst sensitized path"
        );
    }

    #[test]
    fn complex_stage_is_operand_isolated() {
        // Only multiplies open the multiplier's input latches; a stream of
        // adds leaves nothing to time.
        let c = StageCharacterizer::new(StageKind::ComplexAlu, 8).expect("build");
        let adds: Vec<AluEvent> = (0..50)
            .map(|i| AluEvent::new(AluOp::Add, i * 7 % 251, i * 13 % 249))
            .collect();
        assert_eq!(
            c.delay_trace(&adds).expect_err("isolated"),
            TimingError::EmptyTrace
        );
    }

    #[test]
    fn single_event_is_rejected() {
        let c = StageCharacterizer::new(StageKind::SimpleAlu, 8).expect("build");
        let one = [AluEvent::new(AluOp::Add, 1, 2)];
        assert_eq!(
            c.delay_trace(&one).expect_err("too short"),
            TimingError::EmptyTrace
        );
    }

    #[test]
    fn sampled_trace_caps_cost() {
        let c = StageCharacterizer::new(StageKind::SimpleAlu, 8).expect("build");
        let events = lcg_events(3, 1000, 0xFF);
        let t = c.delay_trace_sampled(&events, 50).expect("trace");
        assert!(t.len() <= 50);
        // The subsampled curve should approximate the full curve.
        let full = ErrorCurve::from_trace(&c.delay_trace(&events).expect("trace"));
        let sub = ErrorCurve::from_trace(&t);
        let gap = crate::err_curve::max_abs_gap(&full, &sub, &[0.5, 0.6, 0.7, 0.8, 0.9]);
        assert!(
            gap < 0.25,
            "subsample should roughly track full curve, gap {gap}"
        );
    }

    /// The wide (64-lane) and scalar trace paths must agree bit for bit —
    /// across chained (stride == 1) and seeded-pair (stride > 1) sampling,
    /// ragged chunk boundaries, and die-factored delays. The workspace
    /// proptest in `tests/bitparallel_sim.rs` explores this space
    /// randomly; these fixed shapes pin the corners.
    #[test]
    fn wide_trace_is_bit_identical_to_scalar() {
        let c = StageCharacterizer::new(StageKind::SimpleAlu, 8).expect("build");
        let events = lcg_events(17, 900, 0xFF);
        let mut wide = Vec::new();
        let mut scalar = Vec::new();
        // max_samples spans: <64 records (ragged), exactly 64, chained
        // full trace, and strided subsampling.
        for max_samples in [1, 3, 63, 64, 65, 50, 200, usize::MAX] {
            c.delay_trace_into(&events, max_samples, &mut wide)
                .expect("wide");
            c.delay_trace_into_scalar(&events, max_samples, &mut scalar)
                .expect("scalar");
            let wide_bits: Vec<u64> = wide.iter().map(|d| d.to_bits()).collect();
            let scalar_bits: Vec<u64> = scalar.iter().map(|d| d.to_bits()).collect();
            assert_eq!(wide_bits, scalar_bits, "max_samples = {max_samples}");
        }
    }

    #[test]
    fn wide_trace_matches_scalar_on_die() {
        let stage = circuits::build_stage(StageKind::SimpleAlu, 8).expect("build");
        let aging = gatelib::variation::AgingModel::nbti_ptm22();
        let f = aging
            .factors(stage.netlist().cell_count(), 7.0, None)
            .expect("ok");
        let c = StageCharacterizer::from_stage_on_die(stage, f, DieTiming::Binned).expect("build");
        let events = lcg_events(23, 400, 0xFF);
        let mut wide = Vec::new();
        let mut scalar = Vec::new();
        c.delay_trace_into(&events, usize::MAX, &mut wide)
            .expect("wide");
        c.delay_trace_into_scalar(&events, usize::MAX, &mut scalar)
            .expect("scalar");
        assert_eq!(
            wide.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            scalar.iter().map(|d| d.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tnom_scales_with_voltage() {
        let c = StageCharacterizer::new(StageKind::Decode, 8).expect("build");
        let v = Voltage::new(0.72).expect("ok");
        assert!((c.tnom(v) / c.tnom_v1() - 1.63).abs() < 1e-9);
    }

    #[test]
    fn different_data_gives_different_curves() {
        // Narrow operands vs. wide operands: the carry chains differ, so the
        // curves must differ — the seed of the paper's heterogeneity claim.
        let c = StageCharacterizer::new(StageKind::SimpleAlu, 16).expect("build");
        let narrow = c.error_curve(&lcg_events(11, 400, 0x1F)).expect("curve");
        let wide = c.error_curve(&lcg_events(11, 400, 0xFFFF)).expect("curve");
        let gap = crate::err_curve::max_abs_gap(&narrow, &wide, &[0.5, 0.6, 0.7, 0.8]);
        assert!(gap > 0.02, "operand width must shape the curve, gap {gap}");
    }
}
