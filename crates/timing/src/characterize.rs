//! The cross-layer characterization pipeline (paper Fig 5.8):
//! operand trace → stage input vectors → dynamic timing simulation →
//! sensitized delay trace → error-probability curve.

use circuits::{build_stage, AluEvent, PipeStage, StageKind};
use gatelib::variation::DelayFactors;
use gatelib::{StaticTiming, TimingSim, Voltage};

use crate::err_curve::ErrorCurve;
use crate::error::TimingError;
use crate::trace::DelayTrace;

/// Characterizes one pipe stage: owns the stage netlist and its STA-derived
/// nominal period, and replays event streams through the timing simulator.
///
/// See the [crate-level example](crate) for usage.
pub struct StageCharacterizer {
    stage: Box<dyn PipeStage>,
    tnom_v1: f64,
    /// Per-cell delay factors of the die instance being characterized
    /// (`None` = the nominal, variation-free die).
    die: Option<DelayFactors>,
}

/// How a die instance's clock budget is derived when characterizing under
/// process variation or aging ([`StageCharacterizer::from_stage_on_die`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DieTiming {
    /// Speed binning: the die is clocked at its *own* point of first
    /// failure (factored STA). Normalized delays stay ≤ 1 and `err(1) = 0`.
    Binned,
    /// The design's nominal clock is kept regardless of the die: a slow or
    /// aged die can then sensitize paths *longer* than the period, so
    /// `err(r)` may be nonzero even at `r = 1` — the "aging consumed the
    /// guard band" regime the paper's introduction motivates.
    DesignNominal,
}

impl StageCharacterizer {
    /// Builds the given stage at the given datapath width and runs STA on it.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction/analysis failures as
    /// [`TimingError::Netlist`].
    ///
    /// # Panics
    ///
    /// Panics on invalid widths (see [`circuits::build_stage`]).
    pub fn new(kind: StageKind, width: usize) -> Result<StageCharacterizer, TimingError> {
        StageCharacterizer::from_stage(build_stage(kind, width)?)
    }

    /// Wraps an already-built stage.
    ///
    /// # Errors
    ///
    /// Propagates STA failures as [`TimingError::Netlist`].
    pub fn from_stage(stage: Box<dyn PipeStage>) -> Result<StageCharacterizer, TimingError> {
        let sta = StaticTiming::analyze(stage.netlist(), Voltage::NOMINAL)?;
        Ok(StageCharacterizer {
            tnom_v1: sta.nominal_period(),
            stage,
            die: None,
        })
    }

    /// Wraps a stage instantiated on a specific die (process-variation
    /// and/or aging [`DelayFactors`] from [`gatelib::variation`]), with the
    /// clock budget chosen by `timing`.
    ///
    /// # Errors
    ///
    /// Propagates STA failures and factor/cell-count mismatches as
    /// [`TimingError::Netlist`].
    pub fn from_stage_on_die(
        stage: Box<dyn PipeStage>,
        factors: DelayFactors,
        timing: DieTiming,
    ) -> Result<StageCharacterizer, TimingError> {
        let tnom_v1 = match timing {
            DieTiming::Binned => {
                StaticTiming::analyze_with_factors(stage.netlist(), Voltage::NOMINAL, &factors)?
                    .nominal_period()
            }
            DieTiming::DesignNominal => {
                StaticTiming::analyze(stage.netlist(), Voltage::NOMINAL)?.nominal_period()
            }
        };
        Ok(StageCharacterizer {
            tnom_v1,
            stage,
            die: Some(factors),
        })
    }

    /// The stage under characterization.
    #[must_use]
    pub fn stage(&self) -> &dyn PipeStage {
        self.stage.as_ref()
    }

    /// The stage's nominal clock period at 1.0 V (STA critical path).
    #[must_use]
    pub fn tnom_v1(&self) -> f64 {
        self.tnom_v1
    }

    /// The stage's nominal clock period at an arbitrary voltage
    /// (`t_nom(V)`, Sec 4.1).
    #[must_use]
    pub fn tnom(&self, voltage: Voltage) -> f64 {
        self.tnom_v1 * voltage.delay_scale()
    }

    /// Replays `events` through the stage and records the sensitized delay
    /// of every instruction whose operands reach the stage.
    ///
    /// Which events those are is the stage's [`PipeStage::accepts`] map:
    /// decode and the SimpleALU operand bus see every instruction, while
    /// the operand-isolated multiplier sees only multiplies — mirroring how
    /// the paper extracts per-stage input vectors from Gem5.
    ///
    /// The first accepted event initializes the circuit state and is not
    /// recorded (it has no predecessor vector).
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::EmptyTrace`] if fewer than two events reach
    /// the stage.
    pub fn delay_trace(&self, events: &[AluEvent]) -> Result<DelayTrace, TimingError> {
        self.delay_trace_sampled(events, usize::MAX)
    }

    /// Like [`Self::delay_trace`], but caps the number of *recorded*
    /// instructions at `max_samples` by striding uniformly through the
    /// events — the cheap path for long workload intervals.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::EmptyTrace`] if fewer than two events reach
    /// the stage.
    pub fn delay_trace_sampled(
        &self,
        events: &[AluEvent],
        max_samples: usize,
    ) -> Result<DelayTrace, TimingError> {
        let mut delays = Vec::new();
        self.delay_trace_into(events, max_samples, &mut delays)?;
        DelayTrace::new(delays, self.tnom_v1)
    }

    /// The batched characterization entry point: streams `events` through
    /// one simulator and appends the sensitized delay of every recorded
    /// instruction to `delays` — no intermediate event collection, no
    /// per-vector allocation (the input vector and the simulator's net
    /// state are reused buffers). `delays` is cleared first, so a caller
    /// characterizing many intervals can recycle one buffer.
    ///
    /// [`Self::delay_trace_sampled`] is this plus a [`DelayTrace`]
    /// wrapper; the recorded delays are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::EmptyTrace`] if fewer than two events reach
    /// the stage.
    pub fn delay_trace_into(
        &self,
        events: &[AluEvent],
        max_samples: usize,
        delays: &mut Vec<f64>,
    ) -> Result<(), TimingError> {
        delays.clear();
        let accepted_len = events.iter().filter(|e| self.stage.accepts(e.op)).count();
        if accepted_len < 2 {
            return Err(TimingError::EmptyTrace);
        }
        // Striding keeps consecutive pairs (the delay of instruction k
        // depends on the state left by instruction k-1), so we subsample
        // windows of 2 rather than isolated events. The stride is forced
        // odd so that instruction streams with period-2 structure (e.g.
        // mul/mulhi pairs over the same operands) don't alias: an even
        // stride would sample only one phase of such a stream.
        let wanted = max_samples.max(1);
        let stride = ((accepted_len / wanted.saturating_add(1)).max(1)) | 1;
        let mut sim = match &self.die {
            Some(f) => TimingSim::with_factors(self.stage.netlist(), Voltage::NOMINAL, f)?,
            None => TimingSim::new(self.stage.netlist(), Voltage::NOMINAL)?,
        };
        delays.reserve(accepted_len.saturating_sub(1).min(wanted));
        let mut buf: Vec<bool> = Vec::new();
        let mut accepted = events.iter().filter(|e| self.stage.accepts(e.op));
        if stride == 1 {
            let first = accepted.next().expect("accepted_len >= 2");
            self.stage.encode_into(first, &mut buf);
            sim.step(&buf)?;
            for ev in accepted {
                self.stage.encode_into(ev, &mut buf);
                let t = sim.step(&buf)?;
                delays.push(t.delay);
                if delays.len() >= wanted {
                    break;
                }
            }
        } else {
            // Positions k ≡ 0 (mod stride) seed the circuit state; the
            // following event is the one whose transition is recorded.
            // stride is odd and > 1, so sampled pairs never overlap.
            for (k, ev) in accepted.enumerate() {
                if delays.len() >= wanted {
                    break;
                }
                match k % stride {
                    0 if k + 1 < accepted_len => {
                        self.stage.encode_into(ev, &mut buf);
                        sim.step(&buf)?;
                    }
                    1 => {
                        self.stage.encode_into(ev, &mut buf);
                        let t = sim.step(&buf)?;
                        delays.push(t.delay);
                    }
                    _ => {}
                }
            }
        }
        if delays.is_empty() {
            return Err(TimingError::EmptyTrace);
        }
        Ok(())
    }

    /// One-shot characterization: events → error-probability curve.
    ///
    /// # Errors
    ///
    /// See [`Self::delay_trace`].
    pub fn error_curve(&self, events: &[AluEvent]) -> Result<ErrorCurve, TimingError> {
        Ok(ErrorCurve::from_trace(&self.delay_trace(events)?))
    }

    /// Capped-cost characterization; see [`Self::delay_trace_sampled`].
    ///
    /// # Errors
    ///
    /// See [`Self::delay_trace`].
    pub fn error_curve_sampled(
        &self,
        events: &[AluEvent],
        max_samples: usize,
    ) -> Result<ErrorCurve, TimingError> {
        Ok(ErrorCurve::from_trace(
            &self.delay_trace_sampled(events, max_samples)?,
        ))
    }
}

impl std::fmt::Debug for StageCharacterizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageCharacterizer")
            .field("stage", &self.stage.name())
            .field("tnom_v1", &self.tnom_v1)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::err_curve::ErrorModel;
    use circuits::AluOp;

    fn lcg_events(seed: u64, n: usize, mask: u64) -> Vec<AluEvent> {
        let ops = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And, AluOp::Shl];
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let op = ops[(state >> 61) as usize % ops.len()];
                AluEvent::new(op, state & mask, (state >> 13) & mask)
            })
            .collect()
    }

    #[test]
    fn delay_trace_is_bounded_by_tnom() {
        let c = StageCharacterizer::new(StageKind::SimpleAlu, 8).expect("build");
        let trace = c.delay_trace(&lcg_events(42, 300, 0xFF)).expect("trace");
        assert!(trace.max_normalized() <= 1.0 + 1e-9);
        assert!(trace.mean_normalized() > 0.0);
    }

    #[test]
    fn error_curve_zero_at_nominal_clock() {
        let c = StageCharacterizer::new(StageKind::SimpleAlu, 8).expect("build");
        let curve = c.error_curve(&lcg_events(7, 300, 0xFF)).expect("curve");
        assert_eq!(curve.err(1.0), 0.0);
        // Monotone in r.
        assert!(curve.err(0.4) >= curve.err(0.8));
    }

    #[test]
    fn unit_die_matches_nominal_characterization() {
        let events = lcg_events(11, 200, 0xFF);
        let plain = StageCharacterizer::new(StageKind::SimpleAlu, 8).expect("build");
        let stage = circuits::build_stage(StageKind::SimpleAlu, 8).expect("build");
        let unit = DelayFactors::unit(stage.netlist().cell_count());
        let on_die =
            StageCharacterizer::from_stage_on_die(stage, unit, DieTiming::Binned).expect("build");
        let a = plain.delay_trace(&events).expect("trace");
        let b = on_die.delay_trace(&events).expect("trace");
        assert_eq!(a.delays(), b.delays());
        assert!((a.tnom_v1() - b.tnom_v1()).abs() < 1e-12);
    }

    #[test]
    fn binned_die_keeps_err_zero_at_nominal() {
        // On its own (factored) clock, even a slow die never errs at r = 1.
        let events = lcg_events(13, 300, 0xFF);
        let stage = circuits::build_stage(StageKind::SimpleAlu, 8).expect("build");
        let aging = gatelib::variation::AgingModel::nbti_ptm22();
        let f = aging
            .factors(stage.netlist().cell_count(), 10.0, None)
            .expect("ok");
        let c = StageCharacterizer::from_stage_on_die(stage, f, DieTiming::Binned).expect("build");
        let curve = c.error_curve(&events).expect("curve");
        assert_eq!(curve.err(1.0), 0.0);
    }

    #[test]
    fn design_nominal_aged_die_errs_more() {
        // Same aged die, but clocked at the fresh design period: every
        // normalized delay grows by the aging factor, so err at moderate r
        // can only go up — and may be nonzero even at r = 1.
        let events = lcg_events(13, 300, 0xFF);
        let fresh = StageCharacterizer::new(StageKind::SimpleAlu, 8).expect("build");
        let fresh_curve = fresh.error_curve(&events).expect("curve");
        let stage = circuits::build_stage(StageKind::SimpleAlu, 8).expect("build");
        let aging = gatelib::variation::AgingModel::nbti_ptm22();
        let f = aging
            .factors(stage.netlist().cell_count(), 10.0, None)
            .expect("ok");
        let aged = StageCharacterizer::from_stage_on_die(stage, f, DieTiming::DesignNominal)
            .expect("build");
        let aged_curve = aged.error_curve(&events).expect("curve");
        for r in [0.7, 0.8, 0.9, 1.0] {
            assert!(
                aged_curve.err(r) >= fresh_curve.err(r),
                "aged err({r}) {} < fresh {}",
                aged_curve.err(r),
                fresh_curve.err(r)
            );
        }
        // Every sensitized path grew by exactly the uniform aging factor.
        let fresh_trace = fresh.delay_trace(&events).expect("trace");
        let aged_trace = aged.delay_trace(&events).expect("trace");
        let growth = 1.0 + aging.degradation(10.0);
        assert!(
            (aged_trace.max_normalized() - growth * fresh_trace.max_normalized()).abs()
                < 1e-9 * growth,
            "uniform aging scales the worst sensitized path"
        );
    }

    #[test]
    fn complex_stage_is_operand_isolated() {
        // Only multiplies open the multiplier's input latches; a stream of
        // adds leaves nothing to time.
        let c = StageCharacterizer::new(StageKind::ComplexAlu, 8).expect("build");
        let adds: Vec<AluEvent> = (0..50)
            .map(|i| AluEvent::new(AluOp::Add, i * 7 % 251, i * 13 % 249))
            .collect();
        assert_eq!(
            c.delay_trace(&adds).expect_err("isolated"),
            TimingError::EmptyTrace
        );
    }

    #[test]
    fn single_event_is_rejected() {
        let c = StageCharacterizer::new(StageKind::SimpleAlu, 8).expect("build");
        let one = [AluEvent::new(AluOp::Add, 1, 2)];
        assert_eq!(
            c.delay_trace(&one).expect_err("too short"),
            TimingError::EmptyTrace
        );
    }

    #[test]
    fn sampled_trace_caps_cost() {
        let c = StageCharacterizer::new(StageKind::SimpleAlu, 8).expect("build");
        let events = lcg_events(3, 1000, 0xFF);
        let t = c.delay_trace_sampled(&events, 50).expect("trace");
        assert!(t.len() <= 50);
        // The subsampled curve should approximate the full curve.
        let full = ErrorCurve::from_trace(&c.delay_trace(&events).expect("trace"));
        let sub = ErrorCurve::from_trace(&t);
        let gap = crate::err_curve::max_abs_gap(&full, &sub, &[0.5, 0.6, 0.7, 0.8, 0.9]);
        assert!(
            gap < 0.25,
            "subsample should roughly track full curve, gap {gap}"
        );
    }

    #[test]
    fn tnom_scales_with_voltage() {
        let c = StageCharacterizer::new(StageKind::Decode, 8).expect("build");
        let v = Voltage::new(0.72).expect("ok");
        assert!((c.tnom(v) / c.tnom_v1() - 1.63).abs() < 1e-9);
    }

    #[test]
    fn different_data_gives_different_curves() {
        // Narrow operands vs. wide operands: the carry chains differ, so the
        // curves must differ — the seed of the paper's heterogeneity claim.
        let c = StageCharacterizer::new(StageKind::SimpleAlu, 16).expect("build");
        let narrow = c.error_curve(&lcg_events(11, 400, 0x1F)).expect("curve");
        let wide = c.error_curve(&lcg_events(11, 400, 0xFFFF)).expect("curve");
        let gap = crate::err_curve::max_abs_gap(&narrow, &wide, &[0.5, 0.6, 0.7, 0.8]);
        assert!(gap > 0.02, "operand width must shape the curve, gap {gap}");
    }
}
