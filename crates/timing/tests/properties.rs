//! Property tests for the error-curve machinery.

use proptest::prelude::*;
use timing::{max_abs_gap, DelayTrace, ErrorCurve, ErrorModel, SampledCurve};

fn delays_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 4..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn error_curve_is_monotone_and_bounded(delays in delays_strategy()) {
        let curve = ErrorCurve::from_normalized_delays(delays).expect("non-empty");
        let mut prev = 1.0f64;
        for i in 0..=50 {
            let r = 0.02 + 0.0196 * i as f64;
            let e = curve.err(r);
            prop_assert!((0.0..=1.0).contains(&e));
            prop_assert!(e <= prev + 1e-12, "err must be non-increasing");
            prev = e;
        }
        prop_assert_eq!(curve.err(1.0), 0.0, "no errors at the nominal clock");
    }

    #[test]
    fn sampled_curve_stays_within_its_points(delays in delays_strategy()) {
        let curve = ErrorCurve::from_normalized_delays(delays).expect("non-empty");
        let rs = [0.6, 0.7, 0.8, 0.9, 1.0];
        let pts: Vec<(f64, f64)> = rs.iter().map(|&r| (r, curve.err(r))).collect();
        let sampled = SampledCurve::from_points(pts.clone()).expect("valid");
        // Exact at the sample points...
        for &(r, e) in &pts {
            prop_assert!((sampled.err(r) - e).abs() < 1e-12);
        }
        // ...and between adjacent points, bounded by their values.
        for w in pts.windows(2) {
            let mid = (w[0].0 + w[1].0) / 2.0;
            let lo = w[0].1.min(w[1].1) - 1e-12;
            let hi = w[0].1.max(w[1].1) + 1e-12;
            let e = sampled.err(mid);
            prop_assert!((lo..=hi).contains(&e), "interpolation out of bounds");
        }
    }

    #[test]
    fn normalization_rescales_but_preserves_order(
        delays in delays_strategy(),
        tnom in 1.0f64..100.0,
    ) {
        let scaled: Vec<f64> = delays.iter().map(|d| d * tnom).collect();
        let trace = DelayTrace::new(scaled, tnom).expect("valid");
        let normalized = trace.normalized();
        for (n, d) in normalized.iter().zip(&delays) {
            prop_assert!((n - d).abs() < 1e-9);
        }
        prop_assert!(trace.max_normalized() <= 1.0 + 1e-9);
    }

    #[test]
    fn a_curve_perfectly_sampled_has_zero_gap(delays in delays_strategy()) {
        let curve = ErrorCurve::from_normalized_delays(delays).expect("non-empty");
        let rs: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
        let pts: Vec<(f64, f64)> = rs.iter().map(|&r| (r, curve.err(r))).collect();
        let sampled = SampledCurve::from_points(pts).expect("valid");
        prop_assert!(max_abs_gap(&curve, &sampled, &rs) < 1e-12);
    }
}
