//! Fault-tolerant fleet integration tests.
//!
//! Three escalation levels:
//!
//! 1. **Deterministic in-process fleets** ([`SimExecutor`] +
//!    explicit [`Service::fleet_tick`]s): lease grant/renewal/expiry,
//!    shard reassignment after an injected `exec.kill`, bounded
//!    attempts, and graceful degradation to local execution — all in
//!    logical time, so every schedule is exactly reproducible.
//! 2. **Property**: a seeded kill of any executor, at 1, 2 and 4
//!    nodes, converges to the byte-exact monolithic report with a
//!    reproducible fired-fault ledger.
//! 3. **Real processes**: a coordinator plus two `--executor`
//!    processes; one is aborted mid-shard by an armed `exec.kill`.
//!    Lease expiry reassigns its shard and the fetched report is
//!    byte-identical to the committed golden fixture.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use circuits::StageKind;
use proptest::prelude::*;
use synts_core::scenario::{Experiment, Json, Quality, ScenarioSpec, ThetaSpec};
use synts_core::{CharCache, FaultPlan, SolverRegistry};
use synts_serve::{
    Client, CompleteOutcome, HeartbeatOutcome, PollOutcome, ReportOutcome, RetryPolicy, Server,
    Service, ServiceConfig, Shutdown, SimExecutor,
};
use workloads::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synts-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn quick_spec(name: &str) -> ScenarioSpec {
    ScenarioSpec::new(name, Benchmark::Radix, StageKind::Decode)
        .schemes(["synts_poly", "per_core_ts", "no_ts"])
        .thetas(ThetaSpec::LogAroundEqualWeight {
            points: 6,
            decades: 1.0,
        })
        .normalize_to("nominal")
        .verify_model(true)
        .workers(1)
}

/// A fleet-mode coordinator: shards go to executors, local workers run
/// plan tasks (and shards only while the fleet is dead).
fn fleet_service(tag: &str, faults: Option<Arc<FaultPlan>>) -> Arc<Service> {
    Arc::new(Service::start(ServiceConfig {
        workers: 1,
        max_shards: 3,
        max_attempts: 3,
        cache: CharCache::at_dir(temp_dir(&format!("{tag}-cache"))),
        registry: SolverRegistry::with_defaults(),
        journal: None,
        faults,
        local_shards: false,
        lease_ticks: 3,
    }))
}

/// Drives a sim fleet round-robin (one step per executor, then one
/// tick) until the job's report is ready, and returns its bytes.
fn drive_to_report(service: &Arc<Service>, sims: &mut [SimExecutor], id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        for sim in sims.iter_mut() {
            let _ = sim.step();
        }
        let _ = service.fleet_tick();
        match service.report(id) {
            ReportOutcome::Ready(report) => return report.to_json_string(),
            ReportOutcome::Pending(_) => {
                assert!(Instant::now() < deadline, "fleet job never finished");
            }
            other => panic!("fleet job went sideways: {other:?}"),
        }
    }
}

/// One complete deterministic fleet scenario: `nodes` sim executors,
/// an armed plan that kills `node<victim>` on its first dispatched
/// shard. Returns (report bytes, fired-fault ledger render).
fn fleet_run(tag: &str, seed: u64, nodes: usize, victim: usize) -> (String, String) {
    let plan =
        Arc::new(FaultPlan::parse(&format!("seed={seed};exec.kill=~@node{victim}")).expect("plan"));
    let service = fleet_service(tag, Some(Arc::clone(&plan)));
    let shared_cache = CharCache::at_dir(temp_dir(&format!("{tag}-sim-cache")));
    let mut sims: Vec<SimExecutor> = (1..=nodes)
        .map(|n| {
            SimExecutor::register(
                &service,
                &format!("node{n}"),
                shared_cache.clone(),
                Some(Arc::clone(&plan)),
            )
        })
        .collect();
    let id = service.submit(quick_spec("fleet")).expect("submits").id;
    // Step only the victim until it claims (and dies on) the first
    // planned shard: otherwise the racing survivors can drain the queue
    // before the victim ever holds work, and the kill never fires.
    if victim <= nodes {
        let deadline = Instant::now() + Duration::from_secs(60);
        while !sims[victim - 1].is_dead() {
            let _ = sims[victim - 1].step();
            assert!(Instant::now() < deadline, "the victim never saw work");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let report = drive_to_report(&service, &mut sims, &id);
    if victim <= nodes {
        assert!(
            sims.get(victim - 1).is_some_and(SimExecutor::is_dead),
            "the victim must have been killed"
        );
        let stats = service.stats();
        assert!(
            stats.fleet.expired >= 1,
            "the killed executor's lease must have expired: {stats:?}"
        );
    }
    service.shutdown(Shutdown::Now);
    (report, plan.report().render())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The fleet invariant (mirrors the chaos suite's): killing any one
    /// executor at 1, 2 and 4 nodes still converges to the byte-exact
    /// monolithic report, and two identical runs fire the identical
    /// fault ledger. At 1 node the whole fleet dies and the coordinator
    /// must degrade to local execution.
    #[test]
    fn killed_executors_never_change_the_report(seed in 0u64..1000) {
        let monolithic = Experiment::new(quick_spec("fleet"))
            .run()
            .expect("monolithic run")
            .to_json_string();
        for nodes in [1usize, 2, 4] {
            // The quick spec plans into 3 shards, so with 4 nodes the
            // 4th never holds work — the victim must be one that does.
            let victim = (seed as usize % nodes.min(3)) + 1;
            let tag_a = format!("prop-{seed}-{nodes}-a");
            let tag_b = format!("prop-{seed}-{nodes}-b");
            let (report_a, fired_a) = fleet_run(&tag_a, seed, nodes, victim);
            let (report_b, fired_b) = fleet_run(&tag_b, seed, nodes, victim);
            prop_assert_eq!(&report_a, &monolithic, "a dead executor corrupted the report");
            prop_assert_eq!(&report_a, &report_b, "report bytes drifted across identical runs");
            prop_assert_eq!(&fired_a, &fired_b, "fault ledger drifted across identical runs");
        }
    }
}

/// Lease mechanics, in pure logical time: a poll leases a shard; a
/// heartbeat-starved lease expires after exactly `lease_ticks` ticks
/// and the shard is requeued; a heartbeated lease survives; a
/// completion under an expired lease is rejected.
#[test]
fn leases_expire_deterministically_and_reject_stale_completions() {
    let service = fleet_service("lease", None);
    let reg = service.fleet_register("tester");
    assert_eq!(reg.executor, "exec-1");
    assert_eq!(reg.lease_ticks, 3);

    let _id = service.submit(quick_spec("lease")).expect("submits").id;
    // The local worker plans the job into shards; wait for the first
    // shard to become claimable (the only wall-clock wait here — the
    // lease clock itself never moves until we tick it).
    let dispatch = {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match service.fleet_poll(&reg.executor) {
                PollOutcome::Dispatch(d) => break d,
                PollOutcome::Idle => {
                    assert!(Instant::now() < deadline, "no shard was ever planned");
                    std::thread::sleep(Duration::from_millis(5));
                }
                other => panic!("poll went sideways: {other:?}"),
            }
        }
    };
    assert_eq!(dispatch.lease, "lease-1");
    assert_eq!(dispatch.attempt, 0);

    // Heartbeats renew: after 2 ticks + heartbeat + 2 more ticks the
    // lease is still held (2 < lease_ticks after each renewal).
    let _ = service.fleet_tick();
    let _ = service.fleet_tick();
    match service.fleet_heartbeat(&reg.executor, Some(&dispatch.lease)) {
        HeartbeatOutcome::Renewed { lease_held } => assert_eq!(lease_held, Some(true)),
        HeartbeatOutcome::UnknownExecutor => panic!("executor must still be registered"),
    }
    let _ = service.fleet_tick();
    let _ = service.fleet_tick();
    assert_eq!(service.stats().fleet.expired, 0, "renewed lease expired");

    // Starve it: exactly lease_ticks more ticks expire the lease and
    // requeue the shard (attempt charged).
    let mut expired = 0;
    for _ in 0..3 {
        expired += service.fleet_tick().expired;
    }
    assert_eq!(expired, 1, "the starved lease must expire exactly once");

    // The zombie's completion is rejected — its shard was reassigned.
    match service.fleet_complete(
        &reg.executor,
        &dispatch.lease,
        Err("zombie reporting in".to_string()),
    ) {
        CompleteOutcome::Rejected(why) => assert!(why.contains("reassigned"), "{why}"),
        CompleteOutcome::Accepted => panic!("an expired lease must not land results"),
    }

    // The requeued shard carries the charged attempt. Expiry pushed it
    // to the back of the queue, so the job's still-fresh shards lease
    // out first — keep polling until the retried one comes around.
    let re = service.fleet_register("tester2");
    let mut reassigned = None;
    for _ in 0..4 {
        match service.fleet_poll(&re.executor) {
            PollOutcome::Dispatch(d) if d.attempt == 1 => {
                reassigned = Some(d);
                break;
            }
            PollOutcome::Dispatch(_) => {} // a fresh shard; keep going
            other => panic!("reassigned shard must be claimable: {other:?}"),
        }
    }
    let d = reassigned.expect("the expired shard must be redispatched");
    assert_eq!(d.shard, dispatch.shard, "the same shard is reassigned");
    service.shutdown(Shutdown::Now);
}

/// Graceful degradation: with zero live executors a fleet-mode service
/// still finishes jobs (locally), flags `degraded` in stats/health, and
/// recovers the flag once an executor registers.
#[test]
fn dead_fleet_degrades_to_local_execution() {
    let service = fleet_service("degraded", None);
    assert!(service.stats().fleet.degraded, "no executors yet");
    assert!(service.health().degraded);
    let id = service.submit(quick_spec("degraded")).expect("submits").id;
    let deadline = Instant::now() + Duration::from_secs(300);
    let report = loop {
        match service.report(&id) {
            ReportOutcome::Ready(report) => break report,
            ReportOutcome::Pending(_) => {
                assert!(Instant::now() < deadline, "degraded job never finished");
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("degraded job went sideways: {other:?}"),
        }
    };
    let monolithic = Experiment::new(quick_spec("degraded"))
        .run()
        .expect("monolithic");
    assert_eq!(report.to_json_string(), monolithic.to_json_string());
    let reg = service.fleet_register("late-arrival");
    assert!(!service.stats().fleet.degraded, "live executor clears it");
    let _ = reg;
    service.shutdown(Shutdown::Now);
}

/// The fleet wire protocol end-to-end over real HTTP: register, poll,
/// heartbeat, complete, tick, stats — plus the shared cache tier's
/// GET/PUT/claim endpoints.
#[test]
fn fleet_protocol_round_trips_over_http() {
    let cache_dir = temp_dir("http-cache");
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 1,
        max_shards: 2,
        max_attempts: 2,
        cache: CharCache::at_dir(&cache_dir),
        registry: SolverRegistry::with_defaults(),
        journal: None,
        faults: None,
        local_shards: true,
        lease_ticks: 5,
    }));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let client = Client::new(server.addr().to_string()).with_policy(RetryPolicy::none());

    // Register.
    let reply = client
        .request(
            "POST",
            "/v1/fleet/register",
            Some("{\"name\": \"http-exec\"}"),
        )
        .expect("register");
    assert_eq!(reply.status, 200);
    let reg = reply.json().expect("json");
    let executor = reg
        .get("executor")
        .and_then(Json::as_str)
        .expect("executor id")
        .to_string();
    assert_eq!(reg.get("lease_ticks").and_then(Json::as_f64), Some(5.0));

    // Idle poll (local_shards=true keeps shards off the fleet here).
    let poll_body = format!("{{\"executor\": \"{executor}\"}}");
    let reply = client
        .request("POST", "/v1/fleet/poll", Some(&poll_body))
        .expect("poll");
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply
            .json()
            .expect("json")
            .get("work")
            .and_then(Json::as_bool),
        Some(false)
    );

    // Heartbeat, known and unknown.
    let reply = client
        .request(
            "POST",
            "/v1/fleet/heartbeat",
            Some(&format!("{{\"executor\": \"{executor}\"}}")),
        )
        .expect("heartbeat");
    assert_eq!(reply.status, 200);
    let reply = client
        .request(
            "POST",
            "/v1/fleet/heartbeat",
            Some("{\"executor\": \"exec-999\"}"),
        )
        .expect("unknown heartbeat");
    assert_eq!(reply.status, 404);

    // A completion under a bogus lease is a 409, not a 500.
    let reply = client
        .request(
            "POST",
            "/v1/fleet/complete",
            Some(&format!(
                "{{\"executor\": \"{executor}\", \"lease\": \"lease-99\", \"error\": \"x\"}}"
            )),
        )
        .expect("bogus complete");
    assert_eq!(reply.status, 409);

    // Tick advances the logical clock.
    let reply = client
        .request("POST", "/v1/fleet/tick", Some(""))
        .expect("tick");
    assert_eq!(
        reply
            .json()
            .expect("json")
            .get("now")
            .and_then(Json::as_f64),
        Some(1.0)
    );

    // Cache tier: bad names rejected, misses grant claims, a second
    // claimant is held off, a publish lands and releases the claim.
    let reply = client
        .request("GET", "/v1/cache/not-hex.json", None)
        .expect("bad name");
    assert_eq!(reply.status, 400);
    let key = "00112233aabbccdd.json";
    let reply = client
        .request("GET", &format!("/v1/cache/{key}?claim=exec-1"), None)
        .expect("miss+claim");
    assert_eq!(reply.status, 404);
    assert_eq!(
        reply
            .json()
            .expect("json")
            .get("claim")
            .and_then(Json::as_str),
        Some("granted")
    );
    let reply = client
        .request("GET", &format!("/v1/cache/{key}?claim=exec-2"), None)
        .expect("held claim");
    assert_eq!(reply.status, 409);
    let entry_text = "{\"key\": {\"probe\": 1}, \"data\": {}}";
    let reply = client
        .request("PUT", &format!("/v1/cache/{key}"), Some(entry_text))
        .expect("publish");
    assert_eq!(reply.status, 200);
    let reply = client
        .request("GET", &format!("/v1/cache/{key}"), None)
        .expect("hit");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.body, entry_text, "the tier must serve exact bytes");

    // Stats surface the fleet counters.
    let stats = client.stats().expect("stats");
    let fleet = stats.get("fleet").expect("fleet block");
    assert_eq!(fleet.get("executors").and_then(Json::as_f64), Some(1.0));

    drop(server);
}

struct Proc {
    child: Child,
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_coordinator(journal_dir: &Path, cache_dir: &Path) -> (Proc, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_synts-serve"))
        .args(["--addr", "127.0.0.1:0", "--workers", "1"])
        .args(["--local-shards", "off"])
        .args(["--lease-ticks", "2", "--tick-ms", "50"])
        .args(["--journal-dir".as_ref(), journal_dir.as_os_str()])
        .args(["--cache-dir".as_ref(), cache_dir.as_os_str()])
        .env_remove("SYNTS_FAULTS")
        .env_remove("SYNTS_CACHE_DIR")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("coordinator spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("coordinator exited before listening")
            .expect("stdout line");
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .to_string();
        }
    };
    std::thread::spawn(move || for _ in lines {});
    (Proc { child }, addr)
}

fn spawn_executor(coordinator: &str, name: &str, cache_dir: &Path, faults: Option<&str>) -> Proc {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_synts-serve"));
    cmd.args(["--executor", "--coordinator", coordinator])
        .args(["--name", name, "--poll-ms", "50"])
        .args(["--cache-dir".as_ref(), cache_dir.as_os_str()])
        .env_remove("SYNTS_FAULTS")
        .env_remove("SYNTS_CACHE_DIR")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(plan) = faults {
        cmd.args(["--faults", plan]);
    }
    Proc {
        child: cmd.spawn().expect("executor spawns"),
    }
}

/// The acceptance scenario, with real processes: a coordinator in fleet
/// mode, two executors, one aborted mid-shard by an armed `exec.kill`.
/// The dead executor's lease expires, its shard is reassigned to the
/// survivor, and the fetched report is byte-identical to the committed
/// golden fixture.
#[test]
fn killed_executor_process_is_reassigned_and_report_matches_golden() {
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let spec_src = std::fs::read_to_string(repo_root.join("crates/bench/specs/fig-6-12.json"))
        .expect("committed spec");
    let mut spec = ScenarioSpec::from_json_str(&spec_src).expect("spec parses");
    spec.quality = Quality::Quick;
    let golden =
        std::fs::read_to_string(repo_root.join("tests/fixtures/fig-6-12-quick.report.golden.json"))
            .expect("golden fixture");

    let journal_dir = temp_dir("proc-journal");
    let (coordinator, addr) = spawn_coordinator(&journal_dir, &temp_dir("proc-coord-cache"));
    // The victim aborts on its first dispatched shard (any token
    // carrying its name); the survivor is unarmed.
    let mut victim = spawn_executor(
        &addr,
        "victim",
        &temp_dir("proc-victim-cache"),
        Some("seed=7;exec.kill=~@victim"),
    );
    let _survivor = spawn_executor(&addr, "survivor", &temp_dir("proc-survivor-cache"), None);

    let client = Client::new(addr.clone());
    let id = client.submit(&spec.to_json_string()).expect("submits");
    let body = client
        .wait_report(&id, false, Duration::from_secs(600))
        .expect("fleet job completes despite the killed executor");
    assert_eq!(body, golden, "fleet report drifted from the golden fixture");

    // The victim must actually have died (abort, not a clean exit) —
    // otherwise this test proved nothing about reassignment.
    let status = victim.child.wait().expect("victim observed");
    assert!(
        !status.success(),
        "the injected kill must take the victim down: {status:?}"
    );

    // The coordinator saw the fleet do the work: shards dispatched, at
    // least one lease expired (the victim's), and the fleet completed
    // shards after the kill.
    let stats = client.stats().expect("stats");
    let fleet = stats.get("fleet").expect("fleet block");
    let expired = fleet.get("expired").and_then(Json::as_f64).unwrap_or(0.0);
    let completed = fleet.get("completed").and_then(Json::as_f64).unwrap_or(0.0);
    assert!(
        expired >= 1.0,
        "the victim's lease must have expired: {stats:?}"
    );
    assert!(
        completed >= 1.0,
        "the fleet must have completed shards: {stats:?}"
    );

    let _ = client.shutdown(true);
    drop(coordinator);
}

/// `/v1/healthz` is a readiness probe, not a liveness stub: it reports
/// queue depth and fleet state, and flips to 503 the moment the journal
/// stops accepting writes.
#[test]
fn healthz_reports_readiness_and_503s_on_unwritable_journal() {
    let journal_dir = temp_dir("healthz-journal");
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 1,
        max_shards: 2,
        max_attempts: 2,
        cache: CharCache::at_dir(temp_dir("healthz-cache")),
        registry: SolverRegistry::with_defaults(),
        journal: Some(synts_serve::Journal::open(&journal_dir).expect("journal opens")),
        faults: None,
        local_shards: true,
        lease_ticks: 5,
    }));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let client = Client::new(server.addr().to_string()).with_policy(RetryPolicy::none());

    let reply = client.request("GET", "/v1/healthz", None).expect("healthz");
    assert_eq!(reply.status, 200);
    let health = reply.json().expect("json");
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        health.get("journal").and_then(Json::as_str),
        Some("writable")
    );
    assert_eq!(health.get("queue_depth").and_then(Json::as_f64), Some(0.0));
    assert!(client.healthy(), "Client::healthy reads the same probe");

    // Break the journal out from under the service: the records dir is
    // gone, so the writability probe fails and readiness flips.
    std::fs::remove_dir_all(journal_dir.join("records")).expect("break journal");
    let reply = client.request("GET", "/v1/healthz", None).expect("healthz");
    assert_eq!(reply.status, 503, "unwritable journal must fail readiness");
    let health = reply.json().expect("json");
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        health.get("journal").and_then(Json::as_str),
        Some("unwritable")
    );
    assert!(!client.healthy(), "Client::healthy must see the 503");

    drop(server);
}
