//! Shared characterization tier: request coalescing and the remote
//! read-through path.
//!
//! The process-wide [`CacheStats`] counters back every assertion, so
//! the tests in this binary serialize on one mutex and measure deltas.

use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex, OnceLock, PoisonError};
use std::time::Duration;

use circuits::StageKind;
use synts_core::cache::{characterize_cached, CacheStats, CharCache, RemoteCacheTier, RemoteFetch};
use synts_core::experiments::HarnessConfig;
use synts_core::{FaultPlan, ThreadPool};
use workloads::Benchmark;

fn stats_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synts-coalesce-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An in-memory stand-in for the coordinator's cache endpoints: entries
/// live in a map, every probe is counted, and `fetch` can be slowed to
/// hold the coalescing window open deterministically.
#[derive(Debug, Default)]
struct MapTier {
    entries: Mutex<std::collections::BTreeMap<String, String>>,
    fetches: Mutex<u64>,
    publishes: Mutex<u64>,
    fetch_delay: Option<Duration>,
}

impl MapTier {
    fn fetches(&self) -> u64 {
        *self.fetches.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn publishes(&self) -> u64 {
        *self
            .publishes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl RemoteCacheTier for MapTier {
    fn fetch(&self, name: &str) -> RemoteFetch {
        *self.fetches.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        if let Some(delay) = self.fetch_delay {
            std::thread::sleep(delay);
        }
        match self
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            Some(text) => RemoteFetch::Hit(text.clone()),
            None => RemoteFetch::Compute,
        }
    }

    fn publish(&self, name: &str, entry: &str) -> bool {
        *self
            .publishes
            .lock()
            .unwrap_or_else(PoisonError::into_inner) += 1;
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), entry.to_string());
        true
    }
}

/// N threads cold-miss the same key at once: exactly ONE
/// characterization runs (one miss), every other thread coalesces onto
/// it and then reads the stored entry as a hit.
#[test]
fn concurrent_cold_misses_coalesce_to_one_characterization() {
    let _guard = stats_lock();
    const THREADS: usize = 4;
    let dir = tmp_dir("herd");
    // The slow remote probe runs inside the leader's admission, holding
    // the in-flight window open long enough that the barrier-released
    // followers reliably coalesce instead of racing past it.
    let tier = Arc::new(MapTier {
        fetch_delay: Some(Duration::from_millis(300)),
        ..MapTier::default()
    });
    let cache = CharCache::at_dir(&dir).with_remote(Some(tier.clone() as Arc<dyn RemoteCacheTier>));
    let before = CacheStats::snapshot();
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = cache.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let cfg = HarnessConfig::quick();
                barrier.wait();
                characterize_cached(
                    Benchmark::Fmm,
                    StageKind::Decode,
                    &cfg,
                    &cache,
                    ThreadPool::sequential(),
                )
                .expect("characterization")
            })
        })
        .collect();
    for h in handles {
        h.join().expect("thread");
    }
    let delta = CacheStats::snapshot().since(before);
    assert_eq!(
        delta.misses, 1,
        "exactly one characterization may run: {delta:?}"
    );
    assert_eq!(
        delta.hits,
        (THREADS - 1) as u64,
        "every follower reads the leader's entry: {delta:?}"
    );
    assert!(
        delta.coalesced >= (THREADS - 1) as u64,
        "followers must have waited on the in-flight leader: {delta:?}"
    );
    assert_eq!(tier.fetches(), 1, "only the leader consults the tier");
    assert_eq!(tier.publishes(), 1, "the leader publishes its result");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The read-through path: a second node (cold local dir, same tier)
/// resolves the key remotely — counted as a remote hit, not a miss —
/// and the fetched entry is written locally so the next probe is a
/// plain local hit.
#[test]
fn remote_tier_turns_cold_local_misses_into_remote_hits() {
    let _guard = stats_lock();
    let tier = Arc::new(MapTier::default());
    let cfg = HarnessConfig::quick();

    // Node A characterizes and publishes.
    let dir_a = tmp_dir("node-a");
    let cache_a =
        CharCache::at_dir(&dir_a).with_remote(Some(tier.clone() as Arc<dyn RemoteCacheTier>));
    let before = CacheStats::snapshot();
    let data_a = characterize_cached(
        Benchmark::Radix,
        StageKind::Decode,
        &cfg,
        &cache_a,
        ThreadPool::sequential(),
    )
    .expect("node A characterizes");
    let delta = CacheStats::snapshot().since(before);
    assert_eq!(delta.misses, 1);
    assert_eq!(tier.publishes(), 1, "A must publish to the shared tier");

    // Node B, cold local dir: remote hit, zero characterizations.
    let dir_b = tmp_dir("node-b");
    let cache_b =
        CharCache::at_dir(&dir_b).with_remote(Some(tier.clone() as Arc<dyn RemoteCacheTier>));
    let before = CacheStats::snapshot();
    let data_b = characterize_cached(
        Benchmark::Radix,
        StageKind::Decode,
        &cfg,
        &cache_b,
        ThreadPool::sequential(),
    )
    .expect("node B reads through");
    let delta = CacheStats::snapshot().since(before);
    assert_eq!(delta.remote_hits, 1, "B resolves remotely: {delta:?}");
    assert_eq!(delta.misses, 0, "B must not recompute: {delta:?}");
    assert_eq!(
        data_a.tnom_v1.to_bits(),
        data_b.tnom_v1.to_bits(),
        "both nodes see identical data"
    );

    // B's local copy landed: the next probe never leaves the node.
    let fetches_before = tier.fetches();
    let before = CacheStats::snapshot();
    characterize_cached(
        Benchmark::Radix,
        StageKind::Decode,
        &cfg,
        &cache_b,
        ThreadPool::sequential(),
    )
    .expect("node B warm");
    let delta = CacheStats::snapshot().since(before);
    assert_eq!(delta.hits, 1, "warm probe is a local hit: {delta:?}");
    assert_eq!(tier.fetches(), fetches_before, "no remote round trip");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// `cache.remote` faults sever the tier deterministically: the lookup
/// degrades to a local recompute (correct data, no remote counters) and
/// the publish is dropped.
#[test]
fn remote_faults_degrade_to_local_computation() {
    let _guard = stats_lock();
    let tier = Arc::new(MapTier::default());
    // Seed the tier via an unfaulted node so a hit WOULD be available.
    let cfg = HarnessConfig::quick();
    let dir_seed = tmp_dir("fault-seed");
    let cache_seed =
        CharCache::at_dir(&dir_seed).with_remote(Some(tier.clone() as Arc<dyn RemoteCacheTier>));
    characterize_cached(
        Benchmark::Fft,
        StageKind::Decode,
        &cfg,
        &cache_seed,
        ThreadPool::sequential(),
    )
    .expect("seed characterization");
    assert_eq!(tier.publishes(), 1);

    // A fully severed node: every remote consult is faulted away.
    let plan = Arc::new(FaultPlan::parse("seed=3;cache.remote=1/1").expect("plan"));
    let dir_cut = tmp_dir("fault-cut");
    let cache_cut = CharCache::at_dir(&dir_cut)
        .with_faults(Some(Arc::clone(&plan)))
        .with_remote(Some(tier.clone() as Arc<dyn RemoteCacheTier>));
    let fetches_before = tier.fetches();
    let before = CacheStats::snapshot();
    characterize_cached(
        Benchmark::Fft,
        StageKind::Decode,
        &cfg,
        &cache_cut,
        ThreadPool::sequential(),
    )
    .expect("severed node still computes");
    let delta = CacheStats::snapshot().since(before);
    assert_eq!(delta.misses, 1, "severed node recomputes: {delta:?}");
    assert_eq!(delta.remote_hits, 0, "no remote traffic: {delta:?}");
    assert_eq!(
        tier.fetches(),
        fetches_before,
        "fetch never reached the tier"
    );
    assert_eq!(tier.publishes(), 1, "publish was dropped too");
    assert!(
        plan.fired_counts()
            .get("cache.remote")
            .copied()
            .unwrap_or(0)
            >= 2,
        "both the fetch and the publish consults must have fired"
    );
    let _ = std::fs::remove_dir_all(&dir_seed);
    let _ = std::fs::remove_dir_all(&dir_cut);
}
