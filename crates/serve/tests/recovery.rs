//! Crash-safety integration tests for the durable job journal.
//!
//! Two escalation levels:
//!
//! 1. **In-process**: a journaled service is stopped mid-job
//!    (`Shutdown::Now` with shards still queued); a fresh service on the
//!    same journal directory resumes from the completed shards and
//!    produces a report byte-identical to the uninterrupted monolithic
//!    run.
//! 2. **Real process**: `synts-serve` is launched with an armed
//!    `exec.kill` fault plan that `abort()`s the worker mid-shard — an
//!    honest `kill -9` equivalent. A clean restart on the same journal
//!    directory recovers the job and serves the exact bytes of the
//!    committed golden fixture.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use circuits::StageKind;
use synts_core::scenario::{Experiment, Json, Quality, ScenarioSpec, ThetaSpec};
use synts_core::{CharCache, SolverRegistry};
use synts_serve::{Client, Journal, ReportOutcome, Service, ServiceConfig, Shutdown};
use workloads::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synts-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn quick_spec(name: &str) -> ScenarioSpec {
    ScenarioSpec::new(name, Benchmark::Radix, StageKind::Decode)
        .schemes(["synts_poly", "per_core_ts", "no_ts"])
        .thetas(ThetaSpec::LogAroundEqualWeight {
            points: 6,
            decades: 1.0,
        })
        .normalize_to("nominal")
        .verify_model(true)
        .workers(1)
}

fn journaled_service(journal_dir: &PathBuf, cache_dir: &PathBuf, workers: usize) -> Arc<Service> {
    Arc::new(Service::start(ServiceConfig {
        workers,
        max_shards: 3,
        max_attempts: 2,
        cache: CharCache::at_dir(cache_dir),
        registry: SolverRegistry::with_defaults(),
        journal: Some(Journal::open(journal_dir).expect("journal opens")),
        faults: None,
        ..ServiceConfig::default()
    }))
}

fn count_records(journal_dir: &Path, kind: &str) -> usize {
    let records = journal_dir.join("records");
    let Ok(dir) = std::fs::read_dir(records) else {
        return 0;
    };
    dir.flatten()
        .filter(|e| {
            std::fs::read_to_string(e.path())
                .ok()
                .and_then(|text| Json::parse(&text).ok())
                .and_then(|json| json.get("record").and_then(Json::as_str).map(String::from))
                .is_some_and(|k| k == kind)
        })
        .count()
}

/// Kill a journaled service mid-job (in-process), restart on the same
/// journal directory, and the resumed report is byte-identical to the
/// uninterrupted run.
#[test]
fn interrupted_service_resumes_to_byte_identical_report() {
    let journal_dir = temp_dir("inproc-journal");
    let cache_dir = temp_dir("inproc-cache");
    let spec = quick_spec("resume-me");
    let monolithic = Experiment::new(spec.clone())
        .run()
        .expect("monolithic run")
        .to_json_string();

    // Phase 1: run until at least one shard has been journaled, then
    // pull the plug before the job can finish (single worker, so at
    // most one more shard completes during Shutdown::Now).
    let service = journaled_service(&journal_dir, &cache_dir, 1);
    let id = service.submit(spec).expect("submits").id;
    let deadline = Instant::now() + Duration::from_secs(120);
    while count_records(&journal_dir, "shard_done") == 0 {
        assert!(Instant::now() < deadline, "no shard ever finished");
        std::thread::sleep(Duration::from_millis(10));
    }
    service.shutdown(Shutdown::Now);
    let done_before = count_records(&journal_dir, "done");
    let shards_before = count_records(&journal_dir, "shard_done");
    drop(service);
    assert!(shards_before >= 1, "the interruption must be mid-job");

    // Phase 2: a fresh service on the same journal resumes the job.
    let service = journaled_service(&journal_dir, &cache_dir, 2);
    let deadline = Instant::now() + Duration::from_secs(300);
    let report = loop {
        match service.report(&id) {
            ReportOutcome::Ready(report) => break report,
            ReportOutcome::Pending(_) => {
                assert!(Instant::now() < deadline, "recovered job never finished");
                std::thread::sleep(Duration::from_millis(25));
            }
            other => panic!("recovered job went sideways: {other:?}"),
        }
    };
    assert_eq!(
        report.to_json_string(),
        monolithic,
        "resumed report drifted from the uninterrupted run"
    );
    // If the first run had already journaled `done`, recovery served it
    // verbatim; otherwise it finished the job and journaled it now.
    if done_before == 0 {
        assert_eq!(count_records(&journal_dir, "done"), 1);
    }
    service.shutdown(Shutdown::Now);
}

struct ServeProc {
    child: Child,
    addr: String,
}

fn spawn_serve(journal_dir: &Path, cache_dir: &Path, faults: Option<&str>) -> ServeProc {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_synts-serve"));
    cmd.args(["--addr", "127.0.0.1:0", "--workers", "1"])
        .args(["--journal-dir".as_ref(), journal_dir.as_os_str()])
        .args(["--cache-dir".as_ref(), cache_dir.as_os_str()])
        .env_remove("SYNTS_FAULTS")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(plan) = faults {
        cmd.args(["--faults", plan]);
    }
    let mut child = cmd.spawn().expect("synts-serve spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("synts-serve exited before listening")
            .expect("stdout line");
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    ServeProc { child, addr }
}

/// The full crash story, with a real process: an `exec.kill` fault
/// aborts `synts-serve` mid-shard; a clean restart on the same journal
/// recovers and serves the byte-exact committed golden fixture.
#[test]
fn killed_process_recovers_to_the_golden_fixture() {
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let spec_src = std::fs::read_to_string(repo_root.join("crates/bench/specs/fig-6-12.json"))
        .expect("committed spec");
    let mut spec = ScenarioSpec::from_json_str(&spec_src).expect("spec parses");
    spec.quality = Quality::Quick;
    let golden =
        std::fs::read_to_string(repo_root.join("tests/fixtures/fig-6-12-quick.report.golden.json"))
            .expect("golden fixture");

    let journal_dir = temp_dir("proc-journal");
    let cache_dir = temp_dir("proc-cache");

    // Phase 1: armed process. The plan aborts the worker on shard 1's
    // first attempt — after shard 0's `shard_done` record is on disk.
    let mut armed = spawn_serve(
        &journal_dir,
        &cache_dir,
        Some("seed=7;exec.kill=~@shard1#a0"),
    );
    let client = Client::new(armed.addr.clone());
    let id = client.submit(&spec.to_json_string()).expect("submits");
    let status = armed.child.wait().expect("child observed");
    assert!(
        !status.success(),
        "the injected kill must take the process down: {status:?}"
    );
    assert!(
        count_records(&journal_dir, "done") == 0,
        "the job must not have finished before the kill"
    );
    assert!(
        count_records(&journal_dir, "submitted") == 1,
        "the submission must have been journaled before the kill"
    );

    // Phase 2: clean restart on the same journal. The job resumes from
    // its journaled shards and serves the exact golden bytes.
    let mut clean = spawn_serve(&journal_dir, &cache_dir, None);
    let client = Client::new(clean.addr.clone());
    let body = client
        .wait_report(&id, false, Duration::from_secs(600))
        .expect("recovered job completes");
    assert_eq!(
        body, golden,
        "recovered report drifted from the golden fixture"
    );

    let _ = client.shutdown(true);
    let _ = clean.child.wait();
}

/// Counts payload files in the journal.
fn count_payloads(journal_dir: &Path) -> usize {
    std::fs::read_dir(journal_dir.join("payloads"))
        .map(|dir| dir.flatten().count())
        .unwrap_or(0)
}

/// Journal compaction: once a job is terminal its `shard_done` records
/// are superseded by the `done` record, so compaction drops them and
/// GCs the now-orphaned shard payloads — and replay of the compacted
/// journal still serves the byte-identical report.
#[test]
fn compaction_prunes_terminal_jobs_and_replays_byte_identically() {
    let journal_dir = temp_dir("compact-journal");
    let cache_dir = temp_dir("compact-cache");
    let spec = quick_spec("compact-me");

    // Run a job to completion through a journaled service.
    let service = journaled_service(&journal_dir, &cache_dir, 2);
    let id = service.submit(spec).expect("submits").id;
    let deadline = Instant::now() + Duration::from_secs(300);
    let report = loop {
        match service.report(&id) {
            ReportOutcome::Ready(report) => break report.to_json_string(),
            ReportOutcome::Pending(_) => {
                assert!(Instant::now() < deadline, "job never finished");
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("job went sideways: {other:?}"),
        }
    };
    service.shutdown(Shutdown::Now);
    drop(service);

    let shards_before = count_records(&journal_dir, "shard_done");
    let payloads_before = count_payloads(&journal_dir);
    assert!(shards_before >= 1, "the job must have journaled shards");
    // Plant an orphaned payload (a crash between payload write and
    // record write leaves exactly this) — compaction must collect it.
    std::fs::write(
        journal_dir.join("payloads").join("deadbeefdeadbeef.json"),
        "{}",
    )
    .expect("orphan payload");

    let journal = Journal::open(&journal_dir).expect("journal reopens");
    let compaction = journal.compact().expect("compaction runs");
    assert_eq!(
        compaction.records_removed, shards_before,
        "every shard_done of the terminal job is superseded"
    );
    assert!(
        compaction.payloads_removed >= 1,
        "the planted orphan (at least) must be collected"
    );
    assert_eq!(count_records(&journal_dir, "shard_done"), 0);
    assert_eq!(count_records(&journal_dir, "done"), 1);
    assert!(
        count_payloads(&journal_dir) < payloads_before + 1,
        "payload set must have shrunk"
    );
    // Idempotent: a second pass finds nothing.
    let again = journal.compact().expect("second compaction");
    assert!(again.is_noop(), "compaction must converge: {again:?}");
    drop(journal);

    // Replay of the compacted journal serves the exact bytes.
    let service = journaled_service(&journal_dir, &cache_dir, 2);
    match service.report(&id) {
        ReportOutcome::Ready(recovered) => assert_eq!(
            recovered.to_json_string(),
            report,
            "compacted replay drifted"
        ),
        other => panic!("compacted journal must still serve the report: {other:?}"),
    }
    service.shutdown(Shutdown::Now);
}

/// A crash mid-append leaves a torn trailing record. Replay must not
/// refuse the journal (that would strand every earlier job): it
/// truncates the torn suffix with a warning and recovers everything
/// before it — while torn records *before* good ones (real corruption)
/// are skipped, never silently deleted.
#[test]
fn torn_trailing_record_is_truncated_and_earlier_jobs_survive() {
    let journal_dir = temp_dir("torn-journal");
    let cache_dir = temp_dir("torn-cache");

    // A finished job, fully journaled.
    let service = journaled_service(&journal_dir, &cache_dir, 2);
    let id = service.submit(quick_spec("torn")).expect("submits").id;
    let deadline = Instant::now() + Duration::from_secs(300);
    let report = loop {
        match service.report(&id) {
            ReportOutcome::Ready(report) => break report.to_json_string(),
            ReportOutcome::Pending(_) => {
                assert!(Instant::now() < deadline, "job never finished");
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("job went sideways: {other:?}"),
        }
    };
    service.shutdown(Shutdown::Now);
    drop(service);

    // Simulate the crash: a half-written record lands after the last
    // good one (highest sequence number wins the "trailing" position).
    let records = journal_dir.join("records");
    let max_seq = std::fs::read_dir(&records)
        .expect("records dir")
        .flatten()
        .filter_map(|e| {
            e.file_name()
                .to_string_lossy()
                .strip_suffix(".json")?
                .parse::<u64>()
                .ok()
        })
        .max()
        .expect("at least one record");
    let torn = records.join(format!("{}.json", max_seq + 1));
    std::fs::write(&torn, "{\"record\": \"submitted\", \"job\": 9").expect("torn record");

    let journal = Journal::open(&journal_dir).expect("journal reopens");
    let replay = journal.replay();
    assert_eq!(replay.truncated, 1, "the torn suffix must be truncated");
    assert_eq!(replay.skipped, 0, "nothing before it was damaged");
    assert!(!torn.exists(), "the torn file must be gone");
    assert_eq!(replay.jobs.len(), 1, "the finished job survives");
    drop(journal);

    // A torn record *before* good ones is not the append crash pattern:
    // it is skipped (and kept on disk) so a human can look at it.
    let early = records.join("0.json");
    std::fs::write(&early, "not json at all").expect("early garbage");
    let journal = Journal::open(&journal_dir).expect("journal reopens");
    let replay = journal.replay();
    assert_eq!(replay.truncated, 0);
    assert_eq!(replay.skipped, 1, "mid-stream damage is skipped");
    assert!(early.exists(), "mid-stream damage is preserved");
    std::fs::remove_file(&early).expect("cleanup");
    drop(journal);

    // And the service still serves the exact bytes through it all.
    let service = journaled_service(&journal_dir, &cache_dir, 2);
    match service.report(&id) {
        ReportOutcome::Ready(recovered) => {
            assert_eq!(recovered.to_json_string(), report, "recovery drifted");
        }
        other => panic!("journal must still serve the report: {other:?}"),
    }
    service.shutdown(Shutdown::Now);
}
