//! Durable job journal: the crash-safety substrate of the service.
//!
//! The queue keeps jobs in memory; this module makes them survive a
//! `kill -9`. The journal is a **directory of append-only records** —
//! one canonical-JSON file per event, written atomically (temp file →
//! `fsync` → rename → directory `fsync`) so a record either exists whole
//! or not at all. Partial shard reports are **content-addressed**: the
//! payload lands under `payloads/<fnv64>.json` once, and records refer
//! to it by hash, so a shard retried after recovery costs no duplicate
//! bytes.
//!
//! Layout under the journal root:
//!
//! ```text
//! journal/
//!   records/0000000000000000001.json   {"record":"submitted", "job":1, "key":null, "spec":{...}}
//!   records/0000000000000000002.json   {"record":"shard_done", "job":1, "shard":0, "payload":"9f3a..."}
//!   records/0000000000000000003.json   {"record":"done", "job":1, "payload":"c41b..."}
//!   payloads/9f3a....json              canonical report JSON
//! ```
//!
//! Record kinds: `submitted` (spec + optional idempotency key),
//! `shard_done` (partial report by payload hash), and the terminal
//! `done` / `failed` / `cancelled`. There is deliberately **no planned
//! record**: shard planning is a deterministic function of the spec, the
//! shard cap and the cache, so recovery re-plans and the shard indices
//! line up by construction.
//!
//! [`Journal::replay`] folds the record stream into per-job
//! [`RecoveredJob`]s. Torn or unparseable records (a crash mid-`rename`
//! can leave a stale temp file; a payload may be missing) are *skipped
//! and counted*, never fatal — losing a shard record only costs its
//! recompute.
//!
//! The journal assumes a single writer (one service process per
//! directory), matching the one-listener-per-`--journal-dir` deployment.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use synts_core::scenario::Json;
use synts_core::{Report, ScenarioSpec};

/// Terminal state of a recovered job.
#[derive(Debug)]
pub enum Terminal {
    /// The merged report was journaled; the job serves it immediately.
    Done(Box<Report>),
    /// The job failed with this error.
    Failed(String),
    /// The job was cancelled.
    Cancelled,
}

/// Everything the journal knows about one job after replay.
#[derive(Debug)]
pub struct RecoveredJob {
    /// The job's sequence number (its id is `job-<seq>`).
    pub seq: u64,
    /// The submitted spec.
    pub spec: ScenarioSpec,
    /// The client-supplied idempotency key, if any.
    pub key: Option<String>,
    /// The terminal state, or `None` for a job that must resume.
    pub terminal: Option<Terminal>,
    /// Completed shard reports by shard index, for resumed jobs.
    pub shards: BTreeMap<usize, Report>,
}

/// The outcome of replaying a journal directory.
#[derive(Debug)]
pub struct Replay {
    /// Jobs by sequence number, in submission order.
    pub jobs: BTreeMap<u64, RecoveredJob>,
    /// Records (or payloads) that were present but unusable — torn
    /// writes mid-stream, missing payload files, unknown kinds. Never
    /// fatal.
    pub skipped: usize,
    /// Torn records at the *tail* of the stream (a crash mid-append can
    /// leave at most a trailing prefix of a record): these are deleted —
    /// truncate-and-warn — so the journal is clean for the next writer.
    pub truncated: usize,
}

/// What a single journal record did during replay.
enum RecordOutcome {
    /// Parsed and folded into a job.
    Applied,
    /// Structurally valid JSON, but unusable (unknown kind, missing
    /// payload, reference to an unknown job): skipped and counted.
    Skipped,
    /// Unreadable or not valid JSON — the shape a crash mid-append
    /// leaves behind.
    Torn,
}

/// The result of [`Journal::compact`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Compaction {
    /// `shard_done` records dropped because their job reached a terminal
    /// record (the terminal payload supersedes the partials).
    pub records_removed: usize,
    /// Content-addressed payload files no longer referenced by any
    /// surviving record.
    pub payloads_removed: usize,
}

impl Compaction {
    /// True when compaction removed nothing.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.records_removed == 0 && self.payloads_removed == 0
    }
}

/// An open journal directory (see the module docs for the layout).
#[derive(Debug)]
pub struct Journal {
    records: PathBuf,
    payloads: PathBuf,
    /// Next record file sequence number. Records are globally ordered by
    /// this counter so replay sees events in write order.
    next: Mutex<u64>,
}

impl Journal {
    /// Opens (creating if needed) a journal rooted at `dir` and scans
    /// existing records so new ones append after them.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or listing the directories — an unusable
    /// journal directory must stop service startup loudly, not silently
    /// run without durability.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Journal> {
        let root = dir.into();
        let records = root.join("records");
        let payloads = root.join("payloads");
        fs::create_dir_all(&records)?;
        fs::create_dir_all(&payloads)?;
        let mut max = 0u64;
        for entry in fs::read_dir(&records)? {
            let name = entry?.file_name();
            if let Some(seq) = record_seq(&name.to_string_lossy()) {
                max = max.max(seq);
            }
        }
        Ok(Journal {
            records,
            payloads,
            next: Mutex::new(max + 1),
        })
    }

    /// Journals a job submission. Written *before* the job is queued so
    /// an accepted job is always recoverable.
    ///
    /// # Errors
    ///
    /// Propagates write failures — the caller refuses the submission
    /// rather than accept work it could lose.
    pub fn record_submitted(
        &self,
        job: u64,
        key: Option<&str>,
        spec: &ScenarioSpec,
    ) -> io::Result<()> {
        self.append(
            Json::obj()
                .field("record", Json::str("submitted"))
                .field("job", Json::num(job as f64))
                .field(
                    "key",
                    match key {
                        Some(k) => Json::str(k),
                        None => Json::Null,
                    },
                )
                .field("spec", spec.to_json()),
        )
    }

    /// Journals one completed shard: stores the partial report
    /// content-addressed, then the record referencing it.
    ///
    /// # Errors
    ///
    /// Propagates write failures (the caller logs and carries on — a
    /// lost shard record only costs a recompute after a crash).
    pub fn record_shard_done(&self, job: u64, shard: usize, report: &Report) -> io::Result<()> {
        let payload = self.store_payload(report)?;
        self.append(
            Json::obj()
                .field("record", Json::str("shard_done"))
                .field("job", Json::num(job as f64))
                .field("shard", Json::num(shard as f64))
                .field("payload", Json::str(&payload)),
        )
    }

    /// Journals successful completion with the merged report, so a
    /// restarted service serves the byte-identical result without
    /// recomputing anything.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn record_done(&self, job: u64, report: &Report) -> io::Result<()> {
        let payload = self.store_payload(report)?;
        self.append(
            Json::obj()
                .field("record", Json::str("done"))
                .field("job", Json::num(job as f64))
                .field("payload", Json::str(&payload)),
        )
    }

    /// Journals terminal failure.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn record_failed(&self, job: u64, error: &str) -> io::Result<()> {
        self.append(
            Json::obj()
                .field("record", Json::str("failed"))
                .field("job", Json::num(job as f64))
                .field("error", Json::str(error)),
        )
    }

    /// Journals cancellation.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn record_cancelled(&self, job: u64) -> io::Result<()> {
        self.append(
            Json::obj()
                .field("record", Json::str("cancelled"))
                .field("job", Json::num(job as f64)),
        )
    }

    /// Replays the record stream into per-job recovery state. Later
    /// records win (a `done` after `shard_done`s supersedes them);
    /// unusable records are skipped and counted. Torn records at the
    /// tail of the stream — the footprint of a crash mid-append — are
    /// deleted (truncate-and-warn) instead of failing startup.
    #[must_use]
    pub fn replay(&self) -> Replay {
        let mut names: Vec<(u64, PathBuf)> = Vec::new();
        if let Ok(dir) = fs::read_dir(&self.records) {
            for entry in dir.flatten() {
                let path = entry.path();
                if let Some(seq) = record_seq(&entry.file_name().to_string_lossy()) {
                    names.push((seq, path));
                }
            }
        }
        names.sort();
        let mut jobs: BTreeMap<u64, RecoveredJob> = BTreeMap::new();
        let mut outcomes: Vec<(PathBuf, RecordOutcome)> = Vec::with_capacity(names.len());
        for (_, path) in names {
            let outcome = self.apply_record(&path, &mut jobs);
            outcomes.push((path, outcome));
        }
        let mut skipped = 0usize;
        let mut truncated = 0usize;
        // Only a contiguous *suffix* of torn records can be a crash
        // mid-append; anything torn before a good record is damage the
        // write path cannot produce, so it is skipped, not deleted.
        let mut trailing = true;
        for (path, outcome) in outcomes.iter().rev() {
            match outcome {
                RecordOutcome::Applied => trailing = false,
                RecordOutcome::Skipped => {
                    trailing = false;
                    skipped += 1;
                }
                RecordOutcome::Torn if trailing => {
                    eprintln!(
                        "journal: truncating torn trailing record {} (crash mid-append)",
                        path.display()
                    );
                    let _ = fs::remove_file(path);
                    truncated += 1;
                }
                RecordOutcome::Torn => skipped += 1,
            }
        }
        Replay {
            jobs,
            skipped,
            truncated,
        }
    }

    fn apply_record(&self, path: &Path, jobs: &mut BTreeMap<u64, RecoveredJob>) -> RecordOutcome {
        let Ok(src) = fs::read_to_string(path) else {
            return RecordOutcome::Torn;
        };
        let Ok(record) = Json::parse(&src) else {
            return RecordOutcome::Torn;
        };
        match self.apply_parsed(&record, jobs) {
            Some(()) => RecordOutcome::Applied,
            None => RecordOutcome::Skipped,
        }
    }

    fn apply_parsed(&self, record: &Json, jobs: &mut BTreeMap<u64, RecoveredJob>) -> Option<()> {
        let kind = record.get("record")?.as_str()?;
        let job = record.get("job")?.as_usize()? as u64;
        match kind {
            "submitted" => {
                let spec = ScenarioSpec::from_json(record.get("spec")?).ok()?;
                let key = record.get("key").and_then(Json::as_str).map(str::to_string);
                jobs.insert(
                    job,
                    RecoveredJob {
                        seq: job,
                        spec,
                        key,
                        terminal: None,
                        shards: BTreeMap::new(),
                    },
                );
            }
            "shard_done" => {
                let shard = record.get("shard")?.as_usize()?;
                let report = self.load_payload(record.get("payload")?.as_str()?)?;
                jobs.get_mut(&job)?.shards.insert(shard, report);
            }
            "done" => {
                let report = self.load_payload(record.get("payload")?.as_str()?)?;
                jobs.get_mut(&job)?.terminal = Some(Terminal::Done(Box::new(report)));
            }
            "failed" => {
                let error = record.get("error")?.as_str()?.to_string();
                jobs.get_mut(&job)?.terminal = Some(Terminal::Failed(error));
            }
            "cancelled" => {
                jobs.get_mut(&job)?.terminal = Some(Terminal::Cancelled);
            }
            _ => return None,
        }
        Some(())
    }

    /// Bounds journal growth: drops `shard_done` records of jobs that
    /// have reached a terminal record (their partial reports are
    /// superseded by the journaled terminal payload), then garbage-
    /// collects payload files no longer referenced by any surviving
    /// record. Replay before and after compaction recovers byte-identical
    /// job state. Records are removed before payloads, so a crash between
    /// the two passes only leaves orphans for the next compaction.
    ///
    /// Single-writer rule applies: call while no other thread appends.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures; individual file removals
    /// are best-effort (a leftover file is re-candidate next time).
    pub fn compact(&self) -> io::Result<Compaction> {
        let mut compaction = Compaction::default();
        // Pass 1: find terminal jobs and each record's (kind, job).
        let mut parsed: Vec<(PathBuf, String, u64)> = Vec::new();
        let mut terminal: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for entry in fs::read_dir(&self.records)? {
            let entry = entry?;
            let path = entry.path();
            if record_seq(&entry.file_name().to_string_lossy()).is_none() {
                continue;
            }
            let Some(record) = fs::read_to_string(&path)
                .ok()
                .and_then(|src| Json::parse(&src).ok())
            else {
                continue;
            };
            let (Some(kind), Some(job)) = (
                record
                    .get("record")
                    .and_then(Json::as_str)
                    .map(str::to_string),
                record.get("job").and_then(Json::as_usize),
            ) else {
                continue;
            };
            if matches!(kind.as_str(), "done" | "failed" | "cancelled") {
                terminal.insert(job as u64);
            }
            parsed.push((path, kind, job as u64));
        }
        // Pass 2: drop superseded shard_done records.
        for (path, kind, job) in &parsed {
            if kind == "shard_done" && terminal.contains(job) && fs::remove_file(path).is_ok() {
                compaction.records_removed += 1;
            }
        }
        // Pass 3: GC payloads unreferenced by the surviving records.
        // Re-scan rather than trust `parsed` — removals may have failed,
        // and payloads can be shared across records.
        let mut referenced: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for entry in fs::read_dir(&self.records)? {
            let entry = entry?;
            if record_seq(&entry.file_name().to_string_lossy()).is_none() {
                continue;
            }
            if let Some(record) = fs::read_to_string(entry.path())
                .ok()
                .and_then(|src| Json::parse(&src).ok())
            {
                if let Some(hash) = record.get("payload").and_then(Json::as_str) {
                    referenced.insert(hash.to_string());
                }
            }
        }
        for entry in fs::read_dir(&self.payloads)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(hash) = name.strip_suffix(".json") else {
                continue;
            };
            if !referenced.contains(hash) && fs::remove_file(entry.path()).is_ok() {
                compaction.payloads_removed += 1;
            }
        }
        Ok(compaction)
    }

    /// Readiness probe: can this journal still land records? Writes and
    /// removes a probe file in the records directory (`.probe-*` names
    /// never parse as record sequence numbers, so replay ignores a
    /// leftover probe from a crash mid-check).
    #[must_use]
    pub fn writable(&self) -> bool {
        static PROBE_SEQ: AtomicU64 = AtomicU64::new(0);
        let unique = PROBE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = self
            .records
            .join(format!(".probe-{}-{unique}", std::process::id()));
        let ok = fs::write(&path, b"probe").is_ok();
        let _ = fs::remove_file(&path);
        ok
    }

    /// Stores a report payload content-addressed; returns its hash name.
    /// An already-present payload (same bytes, same hash) is reused.
    fn store_payload(&self, report: &Report) -> io::Result<String> {
        let text = report.to_json_string();
        let hash = format!("{:016x}", fnv64(text.as_bytes()));
        let path = self.payloads.join(format!("{hash}.json"));
        if !path.exists() {
            write_atomic(&path, text.as_bytes())?;
        }
        Ok(hash)
    }

    fn load_payload(&self, hash: &str) -> Option<Report> {
        let text = fs::read_to_string(self.payloads.join(format!("{hash}.json"))).ok()?;
        Report::from_json_str(&text).ok()
    }

    fn append(&self, record: Json) -> io::Result<()> {
        let seq = {
            let mut next = self
                .next
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let seq = *next;
            *next += 1;
            seq
        };
        let path = self.records.join(format!("{seq:019}.json"));
        write_atomic(&path, record.render_pretty().as_bytes())
    }
}

/// Parses `<seq>.json` record file names; anything else (temp files,
/// strays) is ignored.
fn record_seq(name: &str) -> Option<u64> {
    name.strip_suffix(".json")?.parse().ok()
}

/// Atomic durable write: temp file in the same directory → flush +
/// `fsync` → rename over the target → `fsync` the directory so the
/// rename itself survives power loss.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "journal path has no parent"))?;
    // The temp name carries pid *and* a process-wide counter: two worker
    // threads storing the same payload hash concurrently must not share
    // a temp path, or one rename could publish the other's half-written
    // file (`store_payload`'s exists() check is advisory, not a lock).
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let unique = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{unique}", std::process::id()));
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Directory fsync makes the rename durable; non-fatal where the
    // platform refuses to open a directory for writing metadata.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// FNV-1a, matching the cache's content-addressing (stable across
/// platforms and Rust versions).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
