//! The in-process sharded work queue and executor pool.
//!
//! One submitted [`ScenarioSpec`] becomes one job. A job's lifecycle:
//!
//! 1. **queued** — accepted, waiting for a worker;
//! 2. **planning** — a worker characterizes the benchmark/stage (through
//!    the shared [`CharCache`], warming it for every shard) and splits
//!    the resolved θ grid into a [`ShardPlan`];
//! 3. **running** — shards execute independently on the executor pool,
//!    each a complete [`Experiment::run`]; a failed shard is retried up
//!    to a bounded attempt count before it fails the job;
//! 4. **done** — the partial reports are merged ([`Report::merge`])
//!    into a report bit-identical to a monolithic run of the original
//!    spec — or **failed** / **cancelled**.
//!
//! The queue is a plain FIFO over (plan | shard) tasks guarded by one
//! mutex + condvar; workers are long-lived threads claiming tasks until
//! shutdown. [`Service::shutdown`] offers the two fleet-standard exits:
//! [`Shutdown::Drain`] (stop accepting, run everything queued, then
//! join) and [`Shutdown::Now`] (finish only in-flight tasks, leave the
//! rest queued, then join) — either way no work is torn down mid-shard.

use std::collections::{BTreeMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use synts_core::faults::FaultPlan;
use synts_core::scenario::{Experiment, Json, Report, ScenarioSpec, Shard, ShardPlan};
use synts_core::{CacheStats, CharCache, OptError, SolverRegistry};
use timing::ErrorCurve;

use crate::fleet::FleetStore;
use crate::journal::{Journal, Terminal};

/// Configuration of one [`Service`] instance.
pub struct ServiceConfig {
    /// Executor threads (each runs one plan/shard task at a time; the
    /// task itself may fan further across `SYNTS_THREADS`).
    pub workers: usize,
    /// Maximum shards one job's θ grid is split into.
    pub max_shards: usize,
    /// Attempts per shard before the job fails (>= 1).
    pub max_attempts: u32,
    /// The characterization cache every task shares.
    pub cache: CharCache,
    /// The solver registry specs resolve their scheme keys against.
    pub registry: SolverRegistry<ErrorCurve>,
    /// Durable job journal (pre-opened so an unusable directory fails
    /// startup loudly). `None` runs fully in-memory, as before.
    pub journal: Option<Journal>,
    /// Service-wide fault plan; per-spec `faults` fields override it.
    pub faults: Option<Arc<FaultPlan>>,
    /// Whether the in-process pool runs shard tasks. `false` reserves
    /// shards for registered fleet executors — except when none are
    /// live, when local workers take them anyway (graceful degradation,
    /// flagged in stats/healthz). Plan tasks always run locally.
    pub local_shards: bool,
    /// Logical ticks a fleet lease (and executor registration) stays
    /// valid without renewal; see [`Service::fleet_tick`].
    pub lease_ticks: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            max_shards: 4,
            max_attempts: 2,
            cache: CharCache::from_env(),
            registry: SolverRegistry::with_defaults(),
            journal: None,
            faults: None,
            local_shards: true,
            lease_ticks: 5,
        }
    }
}

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, not yet picked up.
    Queued,
    /// A worker is characterizing and planning the shards.
    Planning,
    /// Shards are queued/executing.
    Running,
    /// Merged report available.
    Done,
    /// A shard (or the planner) exhausted its attempts.
    Failed,
    /// Cancelled by the client; remaining shards are skipped.
    Cancelled,
}

impl JobState {
    /// Canonical wire name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Planning => "planning",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can still make progress.
    #[must_use]
    pub const fn is_live(self) -> bool {
        matches!(
            self,
            JobState::Queued | JobState::Planning | JobState::Running
        )
    }
}

/// Per-state shard counts of one job (all zero until planning finishes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardCounts {
    /// Shards planned in total.
    pub total: usize,
    /// Waiting in the queue.
    pub queued: usize,
    /// Claimed by a worker.
    pub running: usize,
    /// Completed with a partial report.
    pub done: usize,
    /// Out of attempts.
    pub failed: usize,
}

/// A snapshot of one job, cheap to clone and serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Service-assigned id (`job-<n>`).
    pub id: String,
    /// The submitted spec's name.
    pub spec_name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Shard progress.
    pub shards: ShardCounts,
    /// Retry attempts consumed beyond each shard's first.
    pub retries: u32,
    /// The failure message, for failed/cancelled jobs.
    pub error: Option<String>,
    /// The client-supplied idempotency key, when one was submitted.
    pub key: Option<String>,
}

impl JobStatus {
    /// The wire representation (`GET /v1/jobs/<id>`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("job", Json::str(&self.id))
            .field("spec", Json::str(&self.spec_name))
            .field("state", Json::str(self.state.name()))
            .field(
                "shards",
                Json::obj()
                    .field("total", Json::num(self.shards.total as f64))
                    .field("queued", Json::num(self.shards.queued as f64))
                    .field("running", Json::num(self.shards.running as f64))
                    .field("done", Json::num(self.shards.done as f64))
                    .field("failed", Json::num(self.shards.failed as f64)),
            )
            .field("retries", Json::num(f64::from(self.retries)))
            .field(
                "error",
                match &self.error {
                    Some(e) => Json::str(e),
                    None => Json::Null,
                },
            )
            .field(
                "key",
                match &self.key {
                    Some(k) => Json::str(k),
                    None => Json::Null,
                },
            )
    }
}

/// Service-wide counters (`GET /v1/stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Executor threads.
    pub workers: usize,
    /// Jobs accepted since start.
    pub submitted: u64,
    /// Jobs that reached `done`.
    pub done: u64,
    /// Jobs that reached `failed`.
    pub failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Tasks waiting in the queue right now.
    pub queue_depth: usize,
    /// Tasks claimed by workers right now.
    pub in_flight: usize,
    /// Shard retry attempts consumed since start.
    pub shard_retries: u64,
    /// Process-wide characterization cache counters.
    pub cache: CacheStats,
    /// Fleet coordinator counters (all zero when no executor ever
    /// registered).
    pub fleet: crate::fleet::FleetSnapshot,
}

impl ServiceStats {
    /// The wire representation.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("workers", Json::num(self.workers as f64))
            .field(
                "jobs",
                Json::obj()
                    .field("submitted", Json::num(self.submitted as f64))
                    .field("done", Json::num(self.done as f64))
                    .field("failed", Json::num(self.failed as f64))
                    .field("cancelled", Json::num(self.cancelled as f64)),
            )
            .field("queue_depth", Json::num(self.queue_depth as f64))
            .field("in_flight", Json::num(self.in_flight as f64))
            .field("shard_retries", Json::num(self.shard_retries as f64))
            .field(
                "cache",
                Json::obj()
                    .field("hits", Json::num(self.cache.hits as f64))
                    .field("misses", Json::num(self.cache.misses as f64))
                    .field("remote_hits", Json::num(self.cache.remote_hits as f64))
                    .field("coalesced", Json::num(self.cache.coalesced as f64))
                    .field("write_errors", Json::num(self.cache.write_errors as f64)),
            )
            .field("fleet", self.fleet.to_json())
    }
}

/// What `GET /v1/jobs/<id>/report` resolves to.
#[derive(Debug, Clone)]
pub enum ReportOutcome {
    /// No such job.
    Unknown,
    /// Still queued/planning/running — poll again.
    Pending(JobStatus),
    /// The job failed or was cancelled; no report will appear.
    Unavailable(JobStatus),
    /// The merged report.
    Ready(Arc<Report>),
}

/// How [`Service::shutdown`] winds the executor down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shutdown {
    /// Stop accepting, run everything already queued, then join.
    Drain,
    /// Stop accepting, finish only in-flight tasks (queued work stays
    /// queued and is reported as such), then join.
    Now,
}

/// Parses a wire job id (`job-<n>`) back to its store key.
fn job_seq(id: &str) -> Option<u64> {
    id.strip_prefix("job-")?.parse().ok()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Task {
    Plan { job: u64 },
    Shard { job: u64, idx: usize },
}

pub(crate) enum ShardState {
    Queued,
    Running,
    Done(Box<Report>),
    Failed,
}

pub(crate) struct ShardSlot {
    pub(crate) shard: Shard,
    pub(crate) state: ShardState,
    pub(crate) attempts: u32,
}

pub(crate) struct Job {
    id: String,
    spec: ScenarioSpec,
    pub(crate) state: JobState,
    plan: Option<ShardPlan>,
    pub(crate) slots: Vec<ShardSlot>,
    pub(crate) retries: u32,
    pub(crate) error: Option<String>,
    merged: Option<Arc<Report>>,
    /// Client-supplied idempotency key, when submitted with one.
    key: Option<String>,
    /// The fault plan this job's tasks run under (per-spec plan, else
    /// the service-wide one, else none).
    pub(crate) faults: Option<Arc<FaultPlan>>,
    /// Journal-recovered shard reports, spliced into the slots once the
    /// (deterministic) plan is rebuilt.
    recovered: BTreeMap<usize, Report>,
}

impl Job {
    fn status(&self) -> JobStatus {
        let mut shards = ShardCounts {
            total: self.slots.len(),
            ..ShardCounts::default()
        };
        for slot in &self.slots {
            match slot.state {
                ShardState::Queued => shards.queued += 1,
                ShardState::Running => shards.running += 1,
                ShardState::Done(_) => shards.done += 1,
                ShardState::Failed => shards.failed += 1,
            }
        }
        JobStatus {
            id: self.id.clone(),
            spec_name: self.spec.name.clone(),
            state: self.state,
            shards,
            retries: self.retries,
            error: self.error.clone(),
            key: self.key.clone(),
        }
    }
}

pub(crate) struct Store {
    // Keyed by numeric sequence (not the `job-<n>` string, which would
    // sort job-10 before job-2): iteration is submission order, so
    // listings and merged snapshots are deterministic.
    pub(crate) jobs: BTreeMap<u64, Job>,
    pub(crate) queue: VecDeque<Task>,
    /// Idempotency key -> job sequence; a keyed resubmission returns the
    /// existing job instead of enqueueing a duplicate.
    keys: BTreeMap<String, u64>,
    next_seq: u64,
    pub(crate) shutdown: Option<Shutdown>,
    pub(crate) in_flight: usize,
    submitted: u64,
    done: u64,
    pub(crate) failed: u64,
    cancelled: u64,
    pub(crate) shard_retries: u64,
    /// Fleet coordinator state (executors, leases, cache claims) — one
    /// mutex guards the queue and the fleet so lease transitions and
    /// task transitions can never interleave inconsistently.
    pub(crate) fleet: FleetStore,
}

pub(crate) enum Claimed {
    Plan {
        job: u64,
        spec: ScenarioSpec,
        faults: Option<Arc<FaultPlan>>,
    },
    Shard {
        job: u64,
        idx: usize,
        spec: ScenarioSpec,
        /// Zero-based attempt number, baked into the fault-injection
        /// identity token so plans can target first attempts only.
        attempt: u32,
        faults: Option<Arc<FaultPlan>>,
    },
}

/// A terminal journal record staged under the store lock and written
/// after it drops, so the fsync never serializes the request path. The
/// gap is crash-safe: a lost terminal record only means replay resumes
/// the job from its (already journaled) shard records and re-derives
/// the same terminal state deterministically.
pub(crate) enum TerminalRecord {
    Done { job: u64, report: Arc<Report> },
    Failed { job: u64, msg: String },
}

pub(crate) struct SvcState {
    max_shards: usize,
    pub(crate) max_attempts: u32,
    pub(crate) cache: CharCache,
    registry: SolverRegistry<ErrorCurve>,
    worker_total: usize,
    pub(crate) journal: Option<Journal>,
    faults: Option<Arc<FaultPlan>>,
    /// Whether local workers may claim shard tasks while fleet
    /// executors are live (see [`ServiceConfig::local_shards`]).
    pub(crate) local_shards: bool,
    store: Mutex<Store>,
    pub(crate) cv: Condvar,
}

/// The scenario service: a [`ServiceConfig`]-sized executor pool over an
/// in-process job store. Protocol front ends ([`crate::http`]) and
/// in-process callers (tests, `synts-cli bench`) share this one API.
pub struct Service {
    pub(crate) state: Arc<SvcState>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Service {
    /// Starts the executor pool and returns the running service.
    ///
    /// With a journal configured, the journal is replayed first
    /// (recovery): terminal jobs are restored verbatim — a `done` job
    /// serves the byte-identical journaled report — and unfinished jobs
    /// are re-queued, reusing every journaled shard report so only the
    /// interrupted remainder recomputes. Workers spawn after the store
    /// is rebuilt, so recovered tasks are simply first in line.
    #[must_use]
    pub fn start(cfg: ServiceConfig) -> Service {
        let mut store = Store {
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            keys: BTreeMap::new(),
            next_seq: 1,
            shutdown: None,
            in_flight: 0,
            submitted: 0,
            done: 0,
            failed: 0,
            cancelled: 0,
            shard_retries: 0,
            fleet: FleetStore::new(cfg.lease_ticks.max(1)),
        };
        if let Some(journal) = &cfg.journal {
            recover(&mut store, journal, cfg.faults.as_ref());
            // Recovery replayed everything the journal holds; compact it
            // before workers (the single-writer window) so terminal-job
            // shard records and orphaned payloads stop accumulating.
            match journal.compact() {
                Ok(c) if !c.is_noop() => eprintln!(
                    "synts-serve: journal: compacted {} record(s), {} payload(s)",
                    c.records_removed, c.payloads_removed
                ),
                Ok(_) => {}
                Err(e) => eprintln!("synts-serve: journal: compaction failed: {e}"),
            }
        }
        let state = Arc::new(SvcState {
            max_shards: cfg.max_shards.max(1),
            max_attempts: cfg.max_attempts.max(1),
            cache: cfg.cache,
            registry: cfg.registry,
            worker_total: cfg.workers.max(1),
            journal: cfg.journal,
            faults: cfg.faults,
            local_shards: cfg.local_shards,
            store: Mutex::new(store),
            cv: Condvar::new(),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();
        Service {
            state,
            workers: Mutex::new(workers),
        }
    }

    /// Accepts a spec as a new job. Scheme keys are resolved against the
    /// registry here so a typo fails at submission, not minutes later on
    /// a worker.
    ///
    /// # Errors
    ///
    /// [`OptError::UnknownSolver`] for unregistered scheme keys;
    /// [`OptError::Spec`] when the spec names no schemes or the service
    /// is shutting down.
    pub fn submit(&self, spec: ScenarioSpec) -> Result<JobStatus, OptError> {
        self.submit_keyed(spec, None)
    }

    /// [`Service::submit`] with an optional client-supplied idempotency
    /// key: resubmitting the same key returns the existing job's status
    /// instead of enqueueing a duplicate, which is what makes a client's
    /// retried `POST /v1/jobs` safe.
    ///
    /// # Errors
    ///
    /// Everything [`Service::submit`] rejects, plus a malformed per-spec
    /// fault plan and a failed journal write (a job the journal cannot
    /// make durable is refused, not half-accepted).
    pub fn submit_keyed(
        &self,
        spec: ScenarioSpec,
        key: Option<&str>,
    ) -> Result<JobStatus, OptError> {
        if spec.schemes.is_empty() {
            return Err(OptError::Spec(
                "scenario spec: schemes: must name at least one registry key".to_string(),
            ));
        }
        for key in spec.schemes.iter().chain(&spec.normalize_to) {
            self.state.registry.get(key)?;
        }
        // Parse the per-spec fault plan up front so a typo is a 4xx at
        // submission, not a planning failure minutes later.
        let faults = match spec.faults.as_deref() {
            Some(src) => Some(Arc::new(FaultPlan::parse(src)?)),
            None => self.state.faults.clone(),
        };
        let mut store = self.state.locked();
        let seq = loop {
            if store.shutdown.is_some() {
                return Err(OptError::Spec(
                    "service: shutting down, not accepting jobs".to_string(),
                ));
            }
            match key.and_then(|k| store.keys.get(k).copied()) {
                Some(seq) => {
                    if let Some(job) = store.jobs.get(&seq) {
                        return Ok(job.status());
                    }
                    // The key is reserved by a concurrent submit that is
                    // journaling its record outside the lock; wait for
                    // it to publish (or roll back on a failed write).
                    store = self
                        .state
                        .cv
                        .wait(store)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                None => {
                    let seq = store.next_seq;
                    store.next_seq += 1;
                    // Reserve the key now so a concurrent same-key
                    // submit cannot also allocate a job while the lock
                    // is down for the journal write.
                    if let Some(k) = key {
                        store.keys.insert(k.to_string(), seq);
                    }
                    break seq;
                }
            }
        };
        drop(store);
        // Write-ahead, but outside the lock (the fsync is the slow
        // path; status/stats requests must not stall behind it): the
        // submission record lands before the job is visible, so every
        // accepted job is recoverable, and a journal that cannot take
        // the record refuses the job (the client retries).
        let journaled = self
            .state
            .journal
            .as_ref()
            .map_or(Ok(()), |journal| journal.record_submitted(seq, key, &spec));
        let mut store = self.state.locked();
        if let Err(e) = journaled {
            if let Some(k) = key {
                store.keys.remove(k);
            }
            drop(store);
            // Wake same-key submitters waiting on the reservation.
            self.state.cv.notify_all();
            return Err(OptError::Spec(format!(
                "service: journal write failed, job refused: {e}"
            )));
        }
        store.submitted += 1;
        let job = Job {
            id: format!("job-{seq}"),
            spec,
            state: JobState::Queued,
            plan: None,
            slots: Vec::new(),
            retries: 0,
            error: None,
            merged: None,
            key: key.map(str::to_string),
            faults,
            recovered: BTreeMap::new(),
        };
        let status = job.status();
        store.jobs.insert(seq, job);
        store.queue.push_back(Task::Plan { job: seq });
        drop(store);
        // notify_all, not notify_one: a worker must pick up the task,
        // and any same-key submitter parked on the reservation must
        // re-check and return this job.
        self.state.cv.notify_all();
        Ok(status)
    }

    /// The status snapshot of a job.
    #[must_use]
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        let seq = job_seq(id)?;
        self.state.locked().jobs.get(&seq).map(Job::status)
    }

    /// Status snapshots of every job the service knows, in submission
    /// order (`job-1`, `job-2`, ... — the store is keyed by numeric
    /// sequence, so the listing is deterministic).
    #[must_use]
    pub fn jobs(&self) -> Vec<JobStatus> {
        self.state.locked().jobs.values().map(Job::status).collect()
    }

    /// The merged report of a job, or why there isn't one (yet).
    #[must_use]
    pub fn report(&self, id: &str) -> ReportOutcome {
        let Some(seq) = job_seq(id) else {
            return ReportOutcome::Unknown;
        };
        let store = self.state.locked();
        let Some(job) = store.jobs.get(&seq) else {
            return ReportOutcome::Unknown;
        };
        match (&job.merged, job.state) {
            (Some(report), JobState::Done) => ReportOutcome::Ready(Arc::clone(report)),
            (_, state) if state.is_live() => ReportOutcome::Pending(job.status()),
            _ => ReportOutcome::Unavailable(job.status()),
        }
    }

    /// Cancels a live job (done/failed jobs are left as-is); queued
    /// shards are skipped, in-flight ones finish and are discarded.
    #[must_use]
    pub fn cancel(&self, id: &str) -> Option<JobStatus> {
        let seq = job_seq(id)?;
        let mut store = self.state.locked();
        let job = store.jobs.get_mut(&seq)?;
        let newly_cancelled = job.state.is_live();
        if newly_cancelled {
            job.state = JobState::Cancelled;
            job.error = Some("cancelled by client".to_string());
            store.cancelled += 1;
        }
        let status = store.jobs.get(&seq).map(Job::status);
        drop(store);
        // The journal fsync runs after the lock drops; a crash in the
        // gap loses only the cancellation (the job resumes on restart),
        // never consistency.
        if newly_cancelled {
            if let Some(journal) = &self.state.journal {
                if let Err(e) = journal.record_cancelled(seq) {
                    eprintln!("synts-serve: journal: cancel record for job-{seq} failed: {e}");
                }
            }
        }
        status
    }

    /// Service-wide counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let store = self.state.locked();
        ServiceStats {
            workers: self.state.worker_total,
            submitted: store.submitted,
            done: store.done,
            failed: store.failed,
            cancelled: store.cancelled,
            queue_depth: store.queue.len(),
            in_flight: store.in_flight,
            shard_retries: store.shard_retries,
            cache: CacheStats::snapshot(),
            fleet: store.fleet.snapshot(self.state.local_shards),
        }
    }

    /// Stops the executor pool and joins every worker. Idempotent; safe
    /// to call from any thread holding the service behind an [`Arc`].
    ///
    /// With [`Shutdown::Drain`] every queued task runs first; with
    /// [`Shutdown::Now`] only in-flight tasks finish (a shard is never
    /// torn down mid-run) and the rest stay queued.
    pub fn shutdown(&self, mode: Shutdown) {
        {
            let mut store = self.state.locked();
            // Escalate Drain -> Now if asked twice; never de-escalate.
            store.shutdown = match (store.shutdown, mode) {
                (Some(Shutdown::Now), _) | (_, Shutdown::Now) => Some(Shutdown::Now),
                _ => Some(Shutdown::Drain),
            };
        }
        self.state.cv.notify_all();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown(Shutdown::Now);
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.state.worker_total)
            .finish()
    }
}

impl SvcState {
    // Poisoning is recovered, not propagated: the store is only ever
    // mutated through small invariant-preserving transactions (the heavy
    // compute — characterization, shard runs, merges — happens outside
    // the lock behind catch_unwind), so a poisoned guard still holds a
    // consistent Store and the request path must keep answering.
    pub(crate) fn locked(&self) -> MutexGuard<'_, Store> {
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks for the next runnable task; `None` means "exit the worker".
    ///
    /// In fleet mode (`local_shards == false`) local workers claim only
    /// plan tasks and leave shards to registered executors — unless no
    /// executor is live, in which case they take shards anyway so a
    /// fully-dead fleet degrades to single-node execution instead of
    /// stalling.
    fn next_task(&self) -> Option<Claimed> {
        let mut store = self.locked();
        loop {
            if store.shutdown == Some(Shutdown::Now) {
                return None;
            }
            let take_shards = self.local_shards || store.fleet.live_executors() == 0;
            let mut idx = 0;
            while idx < store.queue.len() {
                let leave_for_fleet = !take_shards
                    && store
                        .queue
                        .get(idx)
                        .is_some_and(|t| matches!(t, Task::Shard { .. }));
                if leave_for_fleet {
                    idx += 1;
                    continue;
                }
                let Some(task) = store.queue.remove(idx) else {
                    break;
                };
                if let Some(claimed) = claim(&mut store, &task) {
                    if !self.local_shards && matches!(task, Task::Shard { .. }) {
                        eprintln!(
                            "synts-serve: fleet degraded: no live executors, \
                             running shard locally"
                        );
                    }
                    return Some(claimed);
                }
                // Dissolved task: the element at `idx` is already the
                // next candidate, so don't advance.
            }
            if store.shutdown == Some(Shutdown::Drain) && store.queue.is_empty() {
                return None;
            }
            store = self.cv.wait(store).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The shared cache, with the job's fault plan (if any) armed on a
    /// clone so cache-site injection follows the job, not the service.
    fn task_cache(&self, faults: Option<&Arc<FaultPlan>>) -> CharCache {
        match faults {
            Some(plan) => self.cache.clone().with_faults(Some(Arc::clone(plan))),
            None => self.cache.clone(),
        }
    }

    fn run_plan(&self, job_id: u64, spec: &ScenarioSpec, faults: Option<&Arc<FaultPlan>>) {
        let cache = self.task_cache(faults);
        let planned = std::panic::catch_unwind(AssertUnwindSafe(|| {
            ShardPlan::plan_cached_with(spec, self.max_shards, &cache)
        }))
        .unwrap_or_else(|panic| Err(panic_error("shard planning", &panic)));
        let mut store = self.locked();
        store.in_flight -= 1;
        let Some(job) = store.jobs.get_mut(&job_id) else {
            return;
        };
        if job.state != JobState::Planning {
            return; // cancelled while planning
        }
        let staged = match planned {
            Ok(plan) => {
                job.slots = plan
                    .shards()
                    .iter()
                    .map(|shard| ShardSlot {
                        shard: shard.clone(),
                        state: ShardState::Queued,
                        attempts: 0,
                    })
                    .collect();
                job.plan = Some(plan);
                job.state = JobState::Running;
                // Splice journal-recovered shard reports into their
                // slots. Planning is deterministic, so the indices line
                // up; the spec comparison guards against a payload from
                // a different plan shape (it just reruns instead).
                let recovered = std::mem::take(&mut job.recovered);
                for (idx, report) in recovered {
                    if let Some(slot) = job.slots.get_mut(idx) {
                        if report.spec == slot.shard.spec {
                            slot.state = ShardState::Done(Box::new(report));
                        }
                    }
                }
                let tasks: Vec<Task> = job
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, slot)| matches!(slot.state, ShardState::Queued))
                    .map(|(idx, _)| Task::Shard { job: job_id, idx })
                    .collect();
                if tasks.is_empty() {
                    // Every shard was recovered: merge immediately.
                    self.finish_if_complete(&mut store, job_id)
                } else {
                    store.queue.extend(tasks);
                    None
                }
            }
            Err(e) => {
                let msg = format!("planning failed: {e}");
                job.state = JobState::Failed;
                job.error = Some(msg.clone());
                store.failed += 1;
                Some(TerminalRecord::Failed { job: job_id, msg })
            }
        };
        drop(store);
        self.cv.notify_all();
        self.write_terminal(staged);
    }

    fn run_shard(
        &self,
        job_id: u64,
        idx: usize,
        spec: ScenarioSpec,
        attempt: u32,
        faults: Option<&Arc<FaultPlan>>,
    ) {
        // Identity token for fault decisions: the shard spec's name is
        // already `<job-spec>@shard<idx>`, so `~@shard1#a0` targets one
        // shard's first attempt and nothing else.
        let token = format!("{}#a{attempt}", spec.name);
        let cache = self.task_cache(faults);
        let injected = faults.map(Arc::clone);
        let result = std::panic::catch_unwind(AssertUnwindSafe(move || {
            if let Some(plan) = &injected {
                plan.maybe_kill(&token);
                plan.maybe_slow(&token);
                plan.maybe_panic(&token);
            }
            Experiment::new(spec).with_cache(cache).run()
        }))
        .unwrap_or_else(|panic| Err(panic_error("shard execution", &panic)));
        // Journal the completed shard before publishing it, outside the
        // lock (payload writes are the journal's slowest path). An
        // orphan record for a since-cancelled job is harmless.
        if let (Some(journal), Ok(report)) = (&self.journal, &result) {
            if let Err(e) = journal.record_shard_done(job_id, idx, report) {
                eprintln!("synts-serve: journal: shard record for job-{job_id}/{idx} failed: {e}");
            }
        }
        let mut store = self.locked();
        store.in_flight -= 1;
        let Some(job) = store.jobs.get_mut(&job_id) else {
            return;
        };
        if job.state != JobState::Running {
            return; // cancelled (or already failed) while executing
        }
        match result {
            Ok(report) => {
                let Some(slot) = job.slots.get_mut(idx) else {
                    return; // stale task for a slot that no longer exists
                };
                slot.state = ShardState::Done(Box::new(report));
                let staged = self.finish_if_complete(&mut store, job_id);
                drop(store);
                self.write_terminal(staged);
            }
            Err(e) => {
                let Some(slot) = job.slots.get_mut(idx) else {
                    return; // stale task for a slot that no longer exists
                };
                slot.attempts += 1;
                let attempts = slot.attempts;
                if attempts < self.max_attempts {
                    slot.state = ShardState::Queued;
                    job.retries += 1;
                    store.shard_retries += 1;
                    store.queue.push_back(Task::Shard { job: job_id, idx });
                    drop(store);
                    self.cv.notify_one();
                } else {
                    let msg = format!("shard {idx} failed after {attempts} attempt(s): {e}");
                    slot.state = ShardState::Failed;
                    job.state = JobState::Failed;
                    job.error = Some(msg.clone());
                    store.failed += 1;
                    drop(store);
                    self.write_terminal(Some(TerminalRecord::Failed { job: job_id, msg }));
                }
            }
        }
    }

    /// When every slot of a running job is `Done`, merges under the lock
    /// (cheap — record concatenation + front recomputation, so
    /// cancellation cannot race a half-published report) and publishes
    /// the result. The terminal journal record is *staged*, not written:
    /// the caller hands it to [`SvcState::write_terminal`] once the lock
    /// is dropped, so the fsync never stalls status/submit requests.
    /// No-op (`None`) while shards are outstanding.
    pub(crate) fn finish_if_complete(
        &self,
        store: &mut Store,
        job_id: u64,
    ) -> Option<TerminalRecord> {
        let job = store.jobs.get_mut(&job_id)?;
        if job.state != JobState::Running || job.slots.is_empty() {
            return None;
        }
        // `collect` over Options doubles as the all-done check.
        let parts: Option<Vec<Report>> = job
            .slots
            .iter()
            .map(|s| match &s.state {
                ShardState::Done(r) => Some((**r).clone()),
                _ => None,
            })
            .collect();
        let parts = parts?; // shards still outstanding
        let merged = job.plan.as_ref().map_or_else(
            || {
                Err(OptError::Spec(
                    "service: job ran without a plan".to_string(),
                ))
            },
            |plan| {
                std::panic::catch_unwind(AssertUnwindSafe(|| plan.merge(&parts, &self.registry)))
                    .unwrap_or_else(|panic| Err(panic_error("report merge", &panic)))
            },
        );
        match merged {
            Ok(merged) => {
                let merged = Arc::new(merged);
                job.merged = Some(Arc::clone(&merged));
                job.state = JobState::Done;
                store.done += 1;
                Some(TerminalRecord::Done {
                    job: job_id,
                    report: merged,
                })
            }
            Err(e) => {
                let msg = format!("merge failed: {e}");
                job.state = JobState::Failed;
                job.error = Some(msg.clone());
                store.failed += 1;
                Some(TerminalRecord::Failed { job: job_id, msg })
            }
        }
    }

    /// Writes a staged terminal record (outside the store lock). A
    /// failed write only costs a recompute after a crash, so it is
    /// logged, never propagated.
    pub(crate) fn write_terminal(&self, staged: Option<TerminalRecord>) {
        let Some(journal) = &self.journal else { return };
        match staged {
            Some(TerminalRecord::Done { job, report }) => {
                if let Err(e) = journal.record_done(job, &report) {
                    eprintln!("synts-serve: journal: done record for job-{job} failed: {e}");
                }
            }
            Some(TerminalRecord::Failed { job, msg }) => {
                if let Err(e) = journal.record_failed(job, &msg) {
                    eprintln!("synts-serve: journal: failed record for job-{job} failed: {e}");
                }
            }
            None => {}
        }
    }
}

/// Rebuilds the store from a journal replay: terminal jobs restore
/// verbatim (a `done` job serves its journaled report byte-identically),
/// live jobs re-queue with their recovered shard reports attached.
fn recover(store: &mut Store, journal: &Journal, service_faults: Option<&Arc<FaultPlan>>) {
    let replay = journal.replay();
    if replay.skipped > 0 {
        eprintln!(
            "synts-serve: journal: skipped {} unusable record(s) during recovery",
            replay.skipped
        );
    }
    if replay.truncated > 0 {
        eprintln!(
            "synts-serve: journal: truncated {} torn trailing record(s) (crash mid-append)",
            replay.truncated
        );
    }
    for (seq, rec) in replay.jobs {
        store.next_seq = store.next_seq.max(seq + 1);
        store.submitted += 1;
        if let Some(k) = &rec.key {
            store.keys.insert(k.clone(), seq);
        }
        // A spec that journaled with a fault plan was validated at
        // submission; a plan that no longer parses just disarms.
        let faults = rec
            .spec
            .faults
            .as_deref()
            .and_then(|src| FaultPlan::parse(src).ok())
            .map(Arc::new)
            .or_else(|| service_faults.map(Arc::clone));
        let mut job = Job {
            id: format!("job-{seq}"),
            spec: rec.spec,
            state: JobState::Queued,
            plan: None,
            slots: Vec::new(),
            retries: 0,
            error: None,
            merged: None,
            key: rec.key,
            faults,
            recovered: rec.shards,
        };
        match rec.terminal {
            Some(Terminal::Done(report)) => {
                job.state = JobState::Done;
                job.merged = Some(Arc::new(*report));
                store.done += 1;
            }
            Some(Terminal::Failed(error)) => {
                job.state = JobState::Failed;
                job.error = Some(error);
                store.failed += 1;
            }
            Some(Terminal::Cancelled) => {
                job.state = JobState::Cancelled;
                job.error = Some("cancelled by client".to_string());
                store.cancelled += 1;
            }
            None => {
                store.queue.push_back(Task::Plan { job: seq });
            }
        }
        store.jobs.insert(seq, job);
    }
}

/// Marks a popped task as claimed (state transitions + `in_flight`),
/// returning what the worker needs to run it lock-free. Tasks of
/// cancelled/failed jobs dissolve here.
pub(crate) fn claim(store: &mut Store, task: &Task) -> Option<Claimed> {
    match task {
        Task::Plan { job } => {
            let j = store.jobs.get_mut(job)?;
            if j.state != JobState::Queued {
                return None;
            }
            j.state = JobState::Planning;
            store.in_flight += 1;
            Some(Claimed::Plan {
                job: *job,
                spec: j.spec.clone(),
                faults: j.faults.clone(),
            })
        }
        Task::Shard { job, idx } => {
            let j = store.jobs.get_mut(job)?;
            if j.state != JobState::Running {
                return None;
            }
            let faults = j.faults.clone();
            let slot = j.slots.get_mut(*idx)?;
            if !matches!(slot.state, ShardState::Queued) {
                return None;
            }
            slot.state = ShardState::Running;
            let spec = slot.shard.spec.clone();
            let attempt = slot.attempts;
            store.in_flight += 1;
            Some(Claimed::Shard {
                job: *job,
                idx: *idx,
                spec,
                attempt,
                faults,
            })
        }
    }
}

fn worker_loop(state: &SvcState) {
    while let Some(claimed) = state.next_task() {
        match claimed {
            Claimed::Plan { job, spec, faults } => state.run_plan(job, &spec, faults.as_ref()),
            Claimed::Shard {
                job,
                idx,
                spec,
                attempt,
                faults,
            } => state.run_shard(job, idx, spec, attempt, faults.as_ref()),
        }
    }
}

pub(crate) fn panic_error(stage: &str, panic: &(dyn std::any::Any + Send)) -> OptError {
    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string());
    OptError::Spec(format!("service: {stage} panicked: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::StageKind;
    use synts_core::scenario::ThetaSpec;
    use workloads::Benchmark;

    fn quick_spec(name: &str) -> ScenarioSpec {
        ScenarioSpec::new(name, Benchmark::Radix, StageKind::Decode)
            .thetas(ThetaSpec::Grid(vec![0.5, 1.0, 2.0, 4.0]))
            .workers(1)
    }

    fn wait_done(service: &Service, id: &str) -> JobStatus {
        for _ in 0..600 {
            let status = service.status(id).expect("job exists");
            if !status.state.is_live() {
                return status;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        panic!("job {id} did not settle");
    }

    fn test_service(workers: usize) -> Service {
        let dir = std::env::temp_dir().join(format!(
            "synts-serve-queue-test-{}-{workers}",
            std::process::id()
        ));
        Service::start(ServiceConfig {
            workers,
            max_shards: 3,
            max_attempts: 2,
            cache: CharCache::at_dir(dir),
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn submit_rejects_unknown_schemes_before_queueing() {
        let service = test_service(1);
        let err = service
            .submit(quick_spec("bad").schemes(["synts_poly", "warp_drive"]))
            .expect_err("unknown scheme");
        assert!(err.to_string().contains("warp_drive"), "{err}");
        assert_eq!(service.stats().submitted, 0, "nothing was queued");
        service.shutdown(Shutdown::Now);
    }

    #[test]
    fn job_runs_to_done_and_merged_report_matches_monolithic() {
        let service = test_service(2);
        let spec = quick_spec("roundtrip");
        let status = service.submit(spec.clone()).expect("submits");
        assert_eq!(status.state, JobState::Queued);
        let settled = wait_done(&service, &status.id);
        assert_eq!(settled.state, JobState::Done, "{:?}", settled.error);
        assert_eq!(settled.shards.done, settled.shards.total);
        let ReportOutcome::Ready(report) = service.report(&status.id) else {
            panic!("report not ready");
        };
        let monolithic = Experiment::new(spec)
            .with_cache(CharCache::disabled())
            .run()
            .expect("monolithic run");
        assert_eq!(report.to_json_string(), monolithic.to_json_string());
        service.shutdown(Shutdown::Drain);
    }

    #[test]
    fn cancel_skips_remaining_shards() {
        let service = test_service(1);
        let status = service.submit(quick_spec("doomed")).expect("submits");
        let cancelled = service.cancel(&status.id).expect("job exists");
        assert_eq!(cancelled.state, JobState::Cancelled);
        let settled = wait_done(&service, &status.id);
        assert_eq!(settled.state, JobState::Cancelled);
        assert!(matches!(
            service.report(&status.id),
            ReportOutcome::Unavailable(_)
        ));
        service.shutdown(Shutdown::Now);
    }

    #[test]
    fn drain_completes_queued_jobs_and_rejects_new_ones() {
        let service = test_service(2);
        let a = service.submit(quick_spec("drain-a")).expect("submits");
        let b = service.submit(quick_spec("drain-b")).expect("submits");
        service.shutdown(Shutdown::Drain);
        for id in [&a.id, &b.id] {
            let status = service.status(id).expect("job exists");
            assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        }
        let err = service
            .submit(quick_spec("late"))
            .expect_err("post-shutdown submit");
        assert!(err.to_string().contains("shutting down"), "{err}");
    }

    #[test]
    fn job_listing_is_submission_ordered_numerically() {
        let service = test_service(1);
        let mut ids = Vec::new();
        for i in 0..12 {
            let status = service
                .submit(quick_spec(&format!("list-{i}")))
                .expect("submits");
            ids.push(status.id);
        }
        let _ = service.cancel(&ids[3]);
        // 12 jobs so a lexicographic store would list job-10..job-12
        // before job-2; the numeric key must keep submission order.
        let listed: Vec<String> = service.jobs().into_iter().map(|s| s.id).collect();
        assert_eq!(listed, ids);
        service.shutdown(Shutdown::Now);
    }

    #[test]
    fn keyed_resubmission_returns_the_existing_job() {
        let service = test_service(1);
        let a = service
            .submit_keyed(quick_spec("idem"), Some("key-1"))
            .expect("submits");
        let b = service
            .submit_keyed(quick_spec("idem"), Some("key-1"))
            .expect("idempotent resubmit");
        assert_eq!(a.id, b.id, "same key must reuse the job");
        assert_eq!(service.stats().submitted, 1, "no duplicate enqueue");
        let c = service
            .submit_keyed(quick_spec("idem-other"), Some("key-2"))
            .expect("submits");
        assert_ne!(a.id, c.id);
        service.shutdown(Shutdown::Now);
    }

    #[test]
    fn injected_first_attempt_panics_retry_to_done() {
        // Every shard's first attempt panics (`~#a0`); with two attempts
        // per shard the retries succeed and the job completes normally.
        let dir = std::env::temp_dir().join(format!(
            "synts-serve-queue-test-faults-{}",
            std::process::id()
        ));
        let plan = Arc::new(FaultPlan::parse("exec.panic=~#a0").expect("parses"));
        let service = Service::start(ServiceConfig {
            workers: 2,
            max_shards: 3,
            max_attempts: 2,
            cache: CharCache::at_dir(dir),
            faults: Some(Arc::clone(&plan)),
            ..ServiceConfig::default()
        });
        let status = service.submit(quick_spec("chaotic")).expect("submits");
        let settled = wait_done(&service, &status.id);
        assert_eq!(settled.state, JobState::Done, "{:?}", settled.error);
        assert_eq!(
            settled.retries as usize, settled.shards.total,
            "every shard should have retried exactly once"
        );
        let fired = plan.fired_counts();
        assert_eq!(
            fired.get("exec.panic").copied().unwrap_or(0) as usize,
            settled.shards.total
        );
        service.shutdown(Shutdown::Now);
    }

    #[test]
    fn unknown_job_ids_resolve_to_unknown() {
        let service = test_service(1);
        assert!(service.status("job-999").is_none());
        assert!(matches!(service.report("job-999"), ReportOutcome::Unknown));
        assert!(service.cancel("job-999").is_none());
        service.shutdown(Shutdown::Now);
    }
}
