//! `synts-serve` — the SynTS scenario service.
//!
//! The paper's figures sweep one (benchmark, stage) pair over a θ grid;
//! the repo's [`Experiment`](synts_core::scenario::Experiment) engine
//! runs one such sweep monolithically. This crate turns that engine
//! into a **service**: specs go in over HTTP, a shard planner splits
//! the θ grid ([`ShardPlan`](synts_core::scenario::ShardPlan)), an
//! executor pool runs the shards against the shared characterization
//! cache, and the partial reports are merged back into a report
//! **byte-identical** (canonical JSON) to the monolithic run.
//!
//! Four layers, separable on purpose:
//!
//! * [`queue`] — the job model, FIFO task queue and executor pool
//!   ([`Service`]): submission, per-shard bounded retries, cancellation,
//!   and drain-on-shutdown. Usable fully in-process (the tests and
//!   `synts-cli bench` do).
//! * [`journal`] — the durable job journal ([`Journal`]): append-only
//!   canonical-JSON records with content-addressed shard payloads, so a
//!   service killed mid-job replays the journal on restart and resumes
//!   to a byte-identical report.
//! * [`http`] — a hand-rolled `std::net` HTTP/1.1 front end
//!   ([`Server`]): `POST /v1/jobs`, `GET /v1/jobs/<id>[/report]`,
//!   `GET /v1/healthz`, `GET /v1/stats`, `POST /v1/shutdown`.
//! * [`client`] — the matching std-only client ([`Client`]), behind
//!   `synts-cli submit|status|fetch`.
//!
//! No external dependencies: sockets, threads and the repo's own
//! canonical-JSON tree are the whole stack.
#![forbid(unsafe_code)]

pub mod client;
pub mod fleet;
pub mod http;
pub mod journal;
pub mod queue;

pub use client::{Client, HttpReply, RetryPolicy};
pub use fleet::{
    run_executor, CompleteOutcome, Dispatch, ExecutorConfig, FleetSnapshot, Health,
    HeartbeatOutcome, HttpCacheTier, JournalHealth, PollOutcome, RegisterOutcome, SimExecutor,
    SimStep, TickOutcome,
};
pub use http::{Server, ServerConfig};
pub use journal::{Journal, RecoveredJob, Replay, Terminal};
pub use queue::{
    JobState, JobStatus, ReportOutcome, Service, ServiceConfig, ServiceStats, ShardCounts, Shutdown,
};
