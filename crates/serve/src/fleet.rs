//! Fault-tolerant fleet layer: lease-based remote executors with shard
//! reassignment, plus the coordinator side of the shared
//! characterization tier.
//!
//! # Topology
//!
//! One **coordinator** (an ordinary [`Service`] behind [`crate::http`])
//! owns the job store, the journal and the authoritative cache
//! directory. Any number of **executors** (`synts-serve --executor
//! --coordinator <addr>`) register over HTTP and pull `Shard` work:
//!
//! ```text
//!   client ──POST /v1/jobs──▶ coordinator ◀──register/poll/complete── executor A
//!                             │  plan tasks run locally               executor B
//!                             │  shard tasks dispatch under leases    ...
//!                             └─ GET/PUT /v1/cache/<key>  (shared characterization tier)
//! ```
//!
//! # Leases, in logical time
//!
//! Every dispatched shard carries a **lease** measured in logical ticks,
//! not wall-clock: [`Service::fleet_tick`] advances the clock, and a
//! lease (or executor registration) not renewed within
//! [`ServiceConfig::lease_ticks`] ticks expires. Polls, heartbeats and
//! completions renew. The `synts-serve` binary drives ticks from a
//! wall-clock reaper thread (`--tick-ms`); tests drive them directly,
//! which is what makes lease expiry and shard reassignment fully
//! deterministic — no decision in this module ever reads a clock.
//!
//! An expired lease charges the shard one attempt and requeues it, so a
//! killed executor's work is reassigned with the same bounded-attempt
//! discipline as a local crash, journaled through the same records:
//! coordinator restart recovers fleet jobs byte-identically.
//!
//! # Degraded modes
//!
//! * Fleet mode (`local_shards == false`) with zero live executors:
//!   local workers take shards anyway (warned in `/v1/stats` and
//!   `/v1/healthz` as `degraded`).
//! * A partially-dead fleet converges: live executors absorb the
//!   reassigned shards of dead ones.
//! * A dead coordinator ends the fleet (executors exit after bounded
//!   offline polls); its journal replays on restart.
//!
//! # Fault sites
//!
//! `fleet.dispatch` (coordinator: a granted dispatch is lost in
//! flight), `fleet.heartbeat` (executor: a due heartbeat is dropped)
//! and `cache.remote` (the shared tier is unreachable) plug the layer
//! into the same deterministic chaos harness as everything else.

use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Duration;

use synts_core::cache::{RemoteCacheTier, RemoteFetch};
use synts_core::faults::{site, FaultPlan};
use synts_core::scenario::{Experiment, Json, Report, ScenarioSpec};
use synts_core::{CharCache, OptError};

use crate::client::{Client, RetryPolicy};
use crate::queue::{
    claim, panic_error, JobState, Service, ShardState, Shutdown, Store, Task, TerminalRecord,
};

/// Coordinator-side fleet state, embedded in the service's one store
/// mutex so lease transitions and queue transitions never interleave
/// inconsistently.
#[derive(Debug)]
pub(crate) struct FleetStore {
    /// The logical clock. Advanced only by [`Service::fleet_tick`].
    now: u64,
    /// Ticks a lease/registration stays valid without renewal.
    lease_ticks: u64,
    next_executor: u64,
    next_lease: u64,
    executors: BTreeMap<String, ExecutorInfo>,
    leases: BTreeMap<String, Lease>,
    /// Characterization claims for the shared cache tier (per-key
    /// "I am computing this" markers with tick deadlines).
    claims: BTreeMap<String, CacheClaim>,
    dispatched: u64,
    completed: u64,
    expired: u64,
}

#[derive(Debug)]
struct ExecutorInfo {
    /// Self-reported display name (`--name`); ids are service-assigned.
    name: String,
    expires: u64,
}

#[derive(Debug)]
struct Lease {
    executor: String,
    job: u64,
    idx: usize,
    expires: u64,
}

#[derive(Debug)]
struct CacheClaim {
    owner: String,
    expires: u64,
}

impl FleetStore {
    pub(crate) fn new(lease_ticks: u64) -> FleetStore {
        FleetStore {
            now: 0,
            lease_ticks,
            next_executor: 1,
            next_lease: 1,
            executors: BTreeMap::new(),
            leases: BTreeMap::new(),
            claims: BTreeMap::new(),
            dispatched: 0,
            completed: 0,
            expired: 0,
        }
    }

    /// Executors whose registration has not lapsed.
    pub(crate) fn live_executors(&self) -> usize {
        self.executors
            .values()
            .filter(|e| e.expires > self.now)
            .count()
    }

    pub(crate) fn snapshot(&self, local_shards: bool) -> FleetSnapshot {
        let executors = self.live_executors();
        FleetSnapshot {
            executors,
            leases: self.leases.len(),
            dispatched: self.dispatched,
            completed: self.completed,
            expired: self.expired,
            degraded: !local_shards && executors == 0,
        }
    }
}

/// Fleet counters surfaced in `/v1/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetSnapshot {
    /// Executors with a live registration.
    pub executors: usize,
    /// Leases currently outstanding.
    pub leases: usize,
    /// Shards dispatched to executors since start.
    pub dispatched: u64,
    /// Shards completed by executors since start.
    pub completed: u64,
    /// Leases expired (shard reassigned or failed) since start.
    pub expired: u64,
    /// True when the service wants fleet execution but has no live
    /// executor, so shards run locally (graceful degradation).
    pub degraded: bool,
}

impl FleetSnapshot {
    /// The wire representation.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("executors", Json::num(self.executors as f64))
            .field("leases", Json::num(self.leases as f64))
            .field("dispatched", Json::num(self.dispatched as f64))
            .field("completed", Json::num(self.completed as f64))
            .field("expired", Json::num(self.expired as f64))
            .field("degraded", Json::Bool(self.degraded))
    }
}

/// Reply to a successful registration.
#[derive(Debug, Clone)]
pub struct RegisterOutcome {
    /// Service-assigned executor id (`exec-<n>`).
    pub executor: String,
    /// The lease/registration deadline, in ticks.
    pub lease_ticks: u64,
}

/// One dispatched shard, leased to one executor.
#[derive(Debug, Clone)]
pub struct Dispatch {
    /// The lease id (`lease-<n>`) the executor must heartbeat and
    /// complete under.
    pub lease: String,
    /// The owning job's wire id (`job-<n>`).
    pub job: String,
    /// The shard index within the job's plan.
    pub shard: usize,
    /// Zero-based attempt number (for fault-identity tokens).
    pub attempt: u32,
    /// The complete shard spec — executors need nothing else.
    pub spec: ScenarioSpec,
}

/// Reply to an executor's poll.
#[derive(Debug)]
pub enum PollOutcome {
    /// A shard, under a fresh lease.
    Dispatch(Box<Dispatch>),
    /// Nothing claimable right now; poll again.
    Idle,
    /// The coordinator is shutting down; exit cleanly.
    Stop,
    /// The registration lapsed (or the coordinator restarted):
    /// re-register and poll again.
    UnknownExecutor,
}

/// Reply to a heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatOutcome {
    /// Registration renewed. `lease_held` reports the named lease:
    /// `Some(false)` warns the executor its lease expired (the shard
    /// has been reassigned; its result will be rejected).
    Renewed { lease_held: Option<bool> },
    /// The registration lapsed; re-register.
    UnknownExecutor,
}

/// Reply to a shard completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompleteOutcome {
    /// The result was accepted (a failure report is also "accepted" —
    /// it charges the attempt).
    Accepted,
    /// The lease was unknown, expired, or owned by someone else; the
    /// executor discards the result.
    Rejected(String),
}

/// Reply to a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickOutcome {
    /// The logical clock after the tick.
    pub now: u64,
    /// Leases expired by this tick.
    pub expired: usize,
}

/// Journal health for the readiness probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalHealth {
    /// Running without a journal (in-memory only).
    Disabled,
    /// The probe write landed.
    Writable,
    /// The probe write failed — accepted jobs could be lost.
    Unwritable,
}

impl JournalHealth {
    /// Canonical wire name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            JournalHealth::Disabled => "disabled",
            JournalHealth::Writable => "writable",
            JournalHealth::Unwritable => "unwritable",
        }
    }
}

/// The readiness probe (`GET /v1/healthz`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Health {
    /// False when the journal is unwritable (the probe answers 503).
    pub ok: bool,
    /// Tasks waiting in the queue.
    pub queue_depth: usize,
    /// Tasks claimed by local workers.
    pub in_flight: usize,
    /// Live fleet executors.
    pub executors: usize,
    /// Outstanding fleet leases.
    pub leases: usize,
    /// Fleet mode with zero live executors (shards running locally).
    pub degraded: bool,
    /// Journal writability.
    pub journal: JournalHealth,
}

impl Health {
    /// The wire representation.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("ok", Json::Bool(self.ok))
            .field("queue_depth", Json::num(self.queue_depth as f64))
            .field("in_flight", Json::num(self.in_flight as f64))
            .field("executors", Json::num(self.executors as f64))
            .field("leases", Json::num(self.leases as f64))
            .field("degraded", Json::Bool(self.degraded))
            .field("journal", Json::str(self.journal.name()))
    }
}

/// Outcome of a shared-tier cache lookup on the coordinator.
#[derive(Debug)]
pub enum CacheFetchOutcome {
    /// The entry text (the client verifies it against its own key).
    Hit(String),
    /// Absent; the caller's claim was granted — it should characterize
    /// and `PUT` the result.
    MissClaimGranted,
    /// Absent, and another executor holds the characterization claim —
    /// the caller should wait for the publish instead of recomputing.
    MissClaimHeld,
    /// Absent; no claim was requested.
    Miss,
    /// The coordinator runs without a cache directory.
    Disabled,
}

/// Entry names are content-addressed `<16 hex>.json`; anything else is
/// rejected before it can touch the filesystem.
#[must_use]
pub fn valid_entry_name(name: &str) -> bool {
    name.strip_suffix(".json")
        .is_some_and(|stem| stem.len() == 16 && stem.chars().all(|c| c.is_ascii_hexdigit()))
}

/// Charges one attempt to a leased (Running) shard whose executor lost
/// it — lease expiry, a dispatch lost in flight, or a failure report.
/// Requeues below the attempt bound; fails the job at it. Returns a
/// staged terminal record for the caller to write outside the lock.
fn charge_lost_attempt(
    store: &mut Store,
    job_seq: u64,
    idx: usize,
    err: &str,
    max_attempts: u32,
) -> Option<TerminalRecord> {
    let job = store.jobs.get_mut(&job_seq)?;
    if job.state != JobState::Running {
        return None;
    }
    let slot = job.slots.get_mut(idx)?;
    if !matches!(slot.state, ShardState::Running) {
        return None;
    }
    slot.attempts += 1;
    if slot.attempts < max_attempts {
        slot.state = ShardState::Queued;
        job.retries += 1;
        store.shard_retries += 1;
        store.queue.push_back(Task::Shard { job: job_seq, idx });
        None
    } else {
        let msg = format!(
            "shard {idx} failed after {} attempt(s): {err}",
            slot.attempts
        );
        slot.state = ShardState::Failed;
        job.state = JobState::Failed;
        job.error = Some(msg.clone());
        store.failed += 1;
        Some(TerminalRecord::Failed { job: job_seq, msg })
    }
}

impl Service {
    /// Registers an executor; ids are assigned in registration order
    /// (`exec-1`, `exec-2`, ...) so fleets are deterministic to drive.
    #[must_use]
    pub fn fleet_register(&self, name: &str) -> RegisterOutcome {
        let mut store = self.state.locked();
        let n = store.fleet.next_executor;
        store.fleet.next_executor += 1;
        let id = format!("exec-{n}");
        let expires = store.fleet.now + store.fleet.lease_ticks;
        store.fleet.executors.insert(
            id.clone(),
            ExecutorInfo {
                name: name.to_string(),
                expires,
            },
        );
        let lease_ticks = store.fleet.lease_ticks;
        drop(store);
        RegisterOutcome {
            executor: id,
            lease_ticks,
        }
    }

    /// An executor asks for work. Renews its registration; claims the
    /// first claimable shard task in the queue and leases it. A
    /// `fleet.dispatch` fault on the job's plan loses the grant in
    /// flight: the shard is charged an attempt and requeued, and the
    /// poll keeps scanning.
    #[must_use]
    pub fn fleet_poll(&self, executor: &str) -> PollOutcome {
        let mut staged = Vec::new();
        let outcome = {
            let mut store = self.state.locked();
            if store.shutdown == Some(Shutdown::Now) {
                return PollOutcome::Stop;
            }
            let now = store.fleet.now;
            let lease_ticks = store.fleet.lease_ticks;
            match store.fleet.executors.get_mut(executor) {
                Some(info) if info.expires > now => info.expires = now + lease_ticks,
                _ => return PollOutcome::UnknownExecutor,
            }
            let mut outcome = PollOutcome::Idle;
            let mut idx = 0;
            while idx < store.queue.len() {
                let is_shard = store
                    .queue
                    .get(idx)
                    .is_some_and(|t| matches!(t, Task::Shard { .. }));
                if !is_shard {
                    idx += 1;
                    continue;
                }
                let Some(task) = store.queue.remove(idx) else {
                    break;
                };
                let Some(crate::queue::Claimed::Shard {
                    job,
                    idx: shard_idx,
                    spec,
                    attempt,
                    faults,
                }) = claim(&mut store, &task)
                else {
                    // Dissolved (cancelled job / stale slot): the next
                    // candidate is already at `idx`.
                    continue;
                };
                // `claim` charged the local in-flight gauge; leased
                // work is tracked by the lease table instead.
                store.in_flight -= 1;
                let token = format!("{}#a{attempt}@{executor}", spec.name);
                if let Some(plan) = &faults {
                    if plan.should(site::FLEET_DISPATCH, &token) {
                        // The grant is lost in flight: charge the
                        // attempt and keep scanning for other work.
                        store.fleet.expired += 1;
                        staged.extend(charge_lost_attempt(
                            &mut store,
                            job,
                            shard_idx,
                            "dispatch lost in flight (injected)",
                            self.state.max_attempts,
                        ));
                        continue;
                    }
                }
                let n = store.fleet.next_lease;
                store.fleet.next_lease += 1;
                let lease = format!("lease-{n}");
                store.fleet.leases.insert(
                    lease.clone(),
                    Lease {
                        executor: executor.to_string(),
                        job,
                        idx: shard_idx,
                        expires: now + lease_ticks,
                    },
                );
                store.fleet.dispatched += 1;
                outcome = PollOutcome::Dispatch(Box::new(Dispatch {
                    lease,
                    job: format!("job-{job}"),
                    shard: shard_idx,
                    attempt,
                    spec,
                }));
                break;
            }
            outcome
        };
        for t in staged {
            self.state.write_terminal(Some(t));
        }
        // Requeued shards (dispatch faults) may now be claimable by
        // local workers in degraded mode.
        self.state.cv.notify_all();
        outcome
    }

    /// Renews an executor's registration and (optionally) one lease.
    #[must_use]
    pub fn fleet_heartbeat(&self, executor: &str, lease: Option<&str>) -> HeartbeatOutcome {
        let mut store = self.state.locked();
        let now = store.fleet.now;
        let lease_ticks = store.fleet.lease_ticks;
        match store.fleet.executors.get_mut(executor) {
            Some(info) if info.expires > now => info.expires = now + lease_ticks,
            _ => return HeartbeatOutcome::UnknownExecutor,
        }
        let lease_held = lease.map(|id| match store.fleet.leases.get_mut(id) {
            Some(l) if l.executor == executor => {
                l.expires = now + lease_ticks;
                true
            }
            _ => false,
        });
        HeartbeatOutcome::Renewed { lease_held }
    }

    /// An executor reports a leased shard's outcome: `Ok(report)` lands
    /// the partial result (journaled, merged when the job completes);
    /// `Err(msg)` charges the attempt immediately — same policy as a
    /// lease expiry, without waiting for one.
    #[must_use]
    pub fn fleet_complete(
        &self,
        executor: &str,
        lease_id: &str,
        result: Result<Report, String>,
    ) -> CompleteOutcome {
        // Phase 1: validate ownership and detach the lease under the
        // lock. The slot stays `Running`, and with the lease gone
        // neither a tick nor another poll can touch it, so the journal
        // write below is race-free.
        let (job_seq, idx, report) = {
            let mut store = self.state.locked();
            let now = store.fleet.now;
            let lease_ticks = store.fleet.lease_ticks;
            let Some(lease) = store.fleet.leases.remove(lease_id) else {
                return CompleteOutcome::Rejected(format!(
                    "lease {lease_id} unknown or expired; shard was reassigned"
                ));
            };
            if lease.executor != executor {
                store.fleet.leases.insert(lease_id.to_string(), lease);
                return CompleteOutcome::Rejected(format!(
                    "lease {lease_id} is not held by {executor}"
                ));
            }
            if let Some(info) = store.fleet.executors.get_mut(executor) {
                info.expires = now + lease_ticks;
            }
            match result {
                Ok(report) => {
                    // Validate the slot is still this lease's to fill.
                    let valid = store.jobs.get(&lease.job).is_some_and(|job| {
                        job.state == JobState::Running
                            && job.slots.get(lease.idx).is_some_and(|slot| {
                                matches!(slot.state, ShardState::Running)
                                    && slot.shard.spec == report.spec
                            })
                    });
                    if !valid {
                        return CompleteOutcome::Rejected(format!(
                            "job-{} is no longer expecting shard {}",
                            lease.job, lease.idx
                        ));
                    }
                    (lease.job, lease.idx, report)
                }
                Err(msg) => {
                    let staged = charge_lost_attempt(
                        &mut store,
                        lease.job,
                        lease.idx,
                        &msg,
                        self.state.max_attempts,
                    );
                    store.fleet.completed += 1;
                    drop(store);
                    self.state.write_terminal(staged);
                    self.state.cv.notify_all();
                    return CompleteOutcome::Accepted;
                }
            }
        };
        // Phase 2: journal outside the lock (same discipline as local
        // shard completion), then publish the slot and maybe finish.
        if let Some(journal) = &self.state.journal {
            if let Err(e) = journal.record_shard_done(job_seq, idx, &report) {
                eprintln!("synts-serve: journal: shard record for job-{job_seq}/{idx} failed: {e}");
            }
        }
        let staged = {
            let mut store = self.state.locked();
            store.fleet.completed += 1;
            let publishable = store.jobs.get_mut(&job_seq).and_then(|job| {
                if job.state != JobState::Running {
                    return None;
                }
                job.slots.get_mut(idx)
            });
            match publishable {
                Some(slot) if matches!(slot.state, ShardState::Running) => {
                    slot.state = ShardState::Done(Box::new(report));
                    self.state.finish_if_complete(&mut store, job_seq)
                }
                // Cancelled/failed while we journaled: drop the result.
                _ => None,
            }
        };
        self.state.write_terminal(staged);
        self.state.cv.notify_all();
        CompleteOutcome::Accepted
    }

    /// Advances the logical clock one tick: expired leases charge their
    /// shard an attempt and requeue it (reassignment), lapsed executor
    /// registrations and cache claims are evicted. Driven by the
    /// binary's reaper thread, `POST /v1/fleet/tick`, or tests.
    #[must_use]
    pub fn fleet_tick(&self) -> TickOutcome {
        let mut staged = Vec::new();
        let outcome = {
            let mut store = self.state.locked();
            store.fleet.now += 1;
            let now = store.fleet.now;
            let due: Vec<String> = store
                .fleet
                .leases
                .iter()
                .filter(|(_, l)| l.expires <= now)
                .map(|(id, _)| id.clone())
                .collect();
            for id in &due {
                let Some(lease) = store.fleet.leases.remove(id) else {
                    continue;
                };
                store.fleet.expired += 1;
                eprintln!(
                    "synts-serve: fleet: lease {id} (executor {}, job-{} shard {}) expired; \
                     reassigning",
                    lease.executor, lease.job, lease.idx
                );
                staged.extend(charge_lost_attempt(
                    &mut store,
                    lease.job,
                    lease.idx,
                    &format!("lease expired on executor {}", lease.executor),
                    self.state.max_attempts,
                ));
            }
            store.fleet.executors.retain(|id, info| {
                let live = info.expires > now;
                if !live {
                    eprintln!(
                        "synts-serve: fleet: executor {id} ({}) lapsed; evicting",
                        info.name
                    );
                }
                live
            });
            store.fleet.claims.retain(|_, c| c.expires > now);
            TickOutcome {
                now,
                expired: due.len(),
            }
        };
        for t in staged {
            self.state.write_terminal(Some(t));
        }
        // Requeued shards need a worker (or a polling executor) to
        // notice; local workers also re-check the degraded predicate.
        self.state.cv.notify_all();
        outcome
    }

    /// The readiness probe behind `GET /v1/healthz`.
    #[must_use]
    pub fn health(&self) -> Health {
        // Probe the journal before taking the lock — it is real I/O.
        let journal = match &self.state.journal {
            None => JournalHealth::Disabled,
            Some(j) if j.writable() => JournalHealth::Writable,
            Some(_) => JournalHealth::Unwritable,
        };
        let store = self.state.locked();
        let executors = store.fleet.live_executors();
        Health {
            ok: journal != JournalHealth::Unwritable,
            queue_depth: store.queue.len(),
            in_flight: store.in_flight,
            executors,
            leases: store.fleet.leases.len(),
            degraded: !self.state.local_shards && executors == 0,
            journal,
        }
    }

    /// Coordinator side of the shared tier: look up an entry, optionally
    /// claiming the characterization on a miss. Claims expire after
    /// `lease_ticks` ticks, so a claimant that dies never wedges the
    /// key — a waiting executor's poll loop runs out and it computes
    /// locally anyway.
    #[must_use]
    pub fn cache_fetch(&self, name: &str, claimant: Option<&str>) -> CacheFetchOutcome {
        if !self.state.cache.is_enabled() {
            return CacheFetchOutcome::Disabled;
        }
        // Read without the store lock: entries are immutable and
        // rename-published, so a concurrent PUT is invisible or whole.
        let path = self.state.cache.dir().join(name);
        if let Ok(text) = std::fs::read_to_string(&path) {
            return CacheFetchOutcome::Hit(text);
        }
        let Some(who) = claimant else {
            return CacheFetchOutcome::Miss;
        };
        let mut store = self.state.locked();
        let now = store.fleet.now;
        let expires = now + store.fleet.lease_ticks;
        match store.fleet.claims.get(name) {
            Some(c) if c.expires > now && c.owner != who => CacheFetchOutcome::MissClaimHeld,
            _ => {
                store.fleet.claims.insert(
                    name.to_string(),
                    CacheClaim {
                        owner: who.to_string(),
                        expires,
                    },
                );
                CacheFetchOutcome::MissClaimGranted
            }
        }
    }

    /// Coordinator side of a tier publish: lands the entry atomically in
    /// the coordinator's cache directory and releases any claim on it.
    ///
    /// # Errors
    ///
    /// The I/O failure message (the HTTP layer answers 500; the
    /// executor's run is unaffected — publishes are best-effort).
    pub fn cache_publish(&self, name: &str, entry: &str) -> Result<(), String> {
        if !self.state.cache.is_enabled() {
            return Err("cache disabled on this coordinator".to_string());
        }
        let dir = self.state.cache.dir();
        std::fs::create_dir_all(dir).map_err(|e| format!("cache dir: {e}"))?;
        let path = dir.join(name);
        let tmp = path.with_extension(format!("tmp.put.{}", std::process::id()));
        std::fs::write(&tmp, entry)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| format!("cache write: {e}"))?;
        self.state.locked().fleet.claims.remove(name);
        Ok(())
    }
}

/// The executor-side view of the coordinator's shared cache tier:
/// `GET /v1/cache/<key>?claim=<self>` on a local miss, `PUT` after a
/// local store. A held claim polls (bounded) for the other executor's
/// publish; any transport trouble degrades to local computation.
#[derive(Debug)]
pub struct HttpCacheTier {
    client: Client,
    claimant: String,
    poll: Duration,
    max_polls: u32,
}

impl HttpCacheTier {
    /// A tier talking to `coordinator` (`host:port`), identifying as
    /// `claimant` in characterization claims.
    #[must_use]
    pub fn new(coordinator: &str, claimant: &str) -> HttpCacheTier {
        HttpCacheTier {
            client: Client::new(coordinator).with_policy(RetryPolicy::none()),
            claimant: claimant.to_string(),
            poll: Duration::from_millis(100),
            max_polls: 300,
        }
    }

    /// Tunes the held-claim wait loop (interval between re-probes and
    /// the probe budget before giving up and computing locally).
    #[must_use]
    pub fn with_wait(mut self, poll: Duration, max_polls: u32) -> HttpCacheTier {
        self.poll = poll;
        self.max_polls = max_polls;
        self
    }
}

impl RemoteCacheTier for HttpCacheTier {
    fn fetch(&self, name: &str) -> RemoteFetch {
        if !valid_entry_name(name) {
            return RemoteFetch::Compute;
        }
        let claimed = format!("/v1/cache/{name}?claim={}", self.claimant);
        match self.client.request("GET", &claimed, None) {
            Ok(r) if r.status == 200 => RemoteFetch::Hit(r.body),
            Ok(r) if r.status == 409 => {
                // Another executor holds the characterization claim:
                // wait (bounded) for its publish instead of duplicating
                // the work. Claims expire server-side, so a dead
                // claimant cannot wedge this loop past its budget.
                let plain = format!("/v1/cache/{name}");
                for _ in 0..self.max_polls {
                    std::thread::sleep(self.poll);
                    match self.client.request("GET", &plain, None) {
                        Ok(r) if r.status == 200 => return RemoteFetch::Hit(r.body),
                        Ok(r) if r.status == 404 => {}
                        _ => return RemoteFetch::Compute,
                    }
                }
                RemoteFetch::Compute
            }
            _ => RemoteFetch::Compute,
        }
    }

    fn publish(&self, name: &str, entry: &str) -> bool {
        valid_entry_name(name)
            && self
                .client
                .request("PUT", &format!("/v1/cache/{name}"), Some(entry))
                .is_ok_and(|r| r.status == 200)
    }
}

/// What one [`SimExecutor::step`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimStep {
    /// The executor was killed earlier and does nothing.
    Dead,
    /// No work was dispatched.
    Idle,
    /// A shard ran and its report was submitted.
    Completed { shard: usize },
    /// An injected `exec.kill` halted the executor mid-shard: it holds
    /// a lease it will never complete — expiry must reassign it.
    Killed { shard: usize },
    /// The shard errored and the failure was reported.
    FailedShard { shard: usize },
}

/// A deterministic in-process executor for tests: drives the real
/// coordinator API ([`Service::fleet_poll`] / [`Service::fleet_complete`])
/// synchronously, with `exec.kill` modelled as *silently halting* (the
/// lease is abandoned, exactly like an aborted process) instead of
/// aborting the test process. Round-robin stepping + explicit
/// [`Service::fleet_tick`]s make whole fleet schedules reproducible.
#[derive(Debug)]
pub struct SimExecutor {
    service: Arc<Service>,
    name: String,
    id: String,
    cache: CharCache,
    faults: Option<Arc<FaultPlan>>,
    dead: bool,
}

impl SimExecutor {
    /// Registers a fresh executor with the coordinator.
    #[must_use]
    pub fn register(
        service: &Arc<Service>,
        name: &str,
        cache: CharCache,
        faults: Option<Arc<FaultPlan>>,
    ) -> SimExecutor {
        let r = service.fleet_register(name);
        SimExecutor {
            service: Arc::clone(service),
            name: name.to_string(),
            id: r.executor,
            cache,
            faults,
            dead: false,
        }
    }

    /// The service-assigned executor id.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// True once an injected kill halted this executor.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// One poll→execute→complete round.
    pub fn step(&mut self) -> SimStep {
        if self.dead {
            return SimStep::Dead;
        }
        match self.service.fleet_poll(&self.id) {
            PollOutcome::UnknownExecutor => {
                let r = self.service.fleet_register(&self.name);
                self.id = r.executor;
                SimStep::Idle
            }
            PollOutcome::Stop | PollOutcome::Idle => SimStep::Idle,
            PollOutcome::Dispatch(d) => {
                let token = format!("{}#a{}@{}", d.spec.name, d.attempt, self.name);
                if let Some(plan) = &self.faults {
                    // The in-process stand-in for `maybe_kill`: halt
                    // forever with the lease still held.
                    if plan.should(site::EXEC_KILL, &token) {
                        self.dead = true;
                        return SimStep::Killed { shard: d.shard };
                    }
                }
                let faults = self.faults.clone();
                let spec = d.spec.clone();
                let cache = self.cache.clone();
                let result = std::panic::catch_unwind(AssertUnwindSafe(move || {
                    if let Some(plan) = &faults {
                        plan.maybe_slow(&token);
                        plan.maybe_panic(&token);
                    }
                    Experiment::new(spec).with_cache(cache).run()
                }))
                .unwrap_or_else(|panic| Err(panic_error("shard execution", &panic)));
                match result {
                    Ok(report) => {
                        let _ = self.service.fleet_complete(&self.id, &d.lease, Ok(report));
                        SimStep::Completed { shard: d.shard }
                    }
                    Err(e) => {
                        let _ = self
                            .service
                            .fleet_complete(&self.id, &d.lease, Err(e.to_string()));
                        SimStep::FailedShard { shard: d.shard }
                    }
                }
            }
        }
    }
}

/// Configuration of one remote executor process
/// (`synts-serve --executor`).
#[derive(Debug)]
pub struct ExecutorConfig {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// Self-reported display name (also the `@<name>` component of
    /// executor-side fault tokens).
    pub name: String,
    /// Local characterization cache; [`run_executor`] attaches the
    /// coordinator's shared tier behind it.
    pub cache: CharCache,
    /// Process-level fault plan (`--faults` / `SYNTS_FAULTS`).
    pub faults: Option<Arc<FaultPlan>>,
    /// Idle-poll and heartbeat interval.
    pub poll: Duration,
    /// Consecutive failed polls before the executor gives the
    /// coordinator up for dead and exits.
    pub max_offline_polls: u32,
}

impl Default for ExecutorConfig {
    fn default() -> ExecutorConfig {
        ExecutorConfig {
            coordinator: "127.0.0.1:7070".to_string(),
            name: "executor".to_string(),
            cache: CharCache::from_env(),
            faults: None,
            poll: Duration::from_millis(200),
            max_offline_polls: 50,
        }
    }
}

/// Runs the remote-executor loop: register, poll for shards, execute
/// them with the shared cache tier attached, heartbeat while running,
/// report completions. Returns when the coordinator says stop, or after
/// `max_offline_polls` consecutive failed polls.
///
/// # Errors
///
/// [`OptError::Spec`] when the coordinator never answered registration
/// or went away for good.
pub fn run_executor(cfg: &ExecutorConfig) -> Result<(), OptError> {
    let client = Client::new(cfg.coordinator.clone()).with_policy(RetryPolicy::none());
    let tier: Arc<dyn RemoteCacheTier> =
        Arc::new(HttpCacheTier::new(&cfg.coordinator, &cfg.name).with_wait(cfg.poll, 300));
    let cache = cfg
        .cache
        .clone()
        .with_faults(cfg.faults.clone())
        .with_remote(Some(tier));
    let register =
        |offline_budget: u32| -> Result<String, OptError> {
            let body = Json::obj()
                .field("name", Json::str(&cfg.name))
                .render_pretty();
            let mut last = None;
            for _ in 0..offline_budget.max(1) {
                match client.request("POST", "/v1/fleet/register", Some(&body)) {
                    Ok(r) if r.status == 200 => {
                        if let Some(id) = r.json().ok().and_then(|j| {
                            j.get("executor").and_then(Json::as_str).map(String::from)
                        }) {
                            return Ok(id);
                        }
                        last = Some(OptError::Spec(
                            "executor: register reply names no executor id".to_string(),
                        ));
                    }
                    Ok(r) => {
                        last = Some(OptError::Spec(format!(
                            "executor: register rejected: HTTP {}",
                            r.status
                        )));
                    }
                    Err(e) => last = Some(e),
                }
                std::thread::sleep(cfg.poll);
            }
            Err(last.unwrap_or_else(|| OptError::Spec("executor: register never ran".to_string())))
        };
    let mut id = register(cfg.max_offline_polls)?;
    eprintln!(
        "synts-serve: executor {} registered as {id} with {}",
        cfg.name, cfg.coordinator
    );
    let mut offline = 0u32;
    loop {
        let poll_body = Json::obj()
            .field("executor", Json::str(&id))
            .render_pretty();
        let reply = match client.request("POST", "/v1/fleet/poll", Some(&poll_body)) {
            Ok(r) => r,
            Err(e) => {
                offline += 1;
                if offline >= cfg.max_offline_polls {
                    return Err(OptError::Spec(format!(
                        "executor {id}: coordinator unreachable after {offline} poll(s): {e}"
                    )));
                }
                std::thread::sleep(cfg.poll);
                continue;
            }
        };
        offline = 0;
        if reply.status == 404 {
            // Coordinator restarted (or our registration lapsed).
            id = register(cfg.max_offline_polls)?;
            continue;
        }
        let Ok(json) = reply.json() else {
            std::thread::sleep(cfg.poll);
            continue;
        };
        if json.get("stop").and_then(Json::as_bool) == Some(true) {
            eprintln!("synts-serve: executor {id}: coordinator shutting down; exiting");
            return Ok(());
        }
        if json.get("work").and_then(Json::as_bool) != Some(true) {
            std::thread::sleep(cfg.poll);
            continue;
        }
        let (Some(lease), Some(shard), Some(attempt), Some(spec_json)) = (
            json.get("lease").and_then(Json::as_str).map(String::from),
            json.get("shard").and_then(Json::as_usize),
            json.get("attempt").and_then(Json::as_usize),
            json.get("spec"),
        ) else {
            std::thread::sleep(cfg.poll);
            continue;
        };
        let spec = match ScenarioSpec::from_json(spec_json) {
            Ok(spec) => spec,
            Err(e) => {
                let _ = complete(
                    &client,
                    &id,
                    &lease,
                    &Err(format!("bad dispatched spec: {e}")),
                );
                continue;
            }
        };
        let token = format!("{}#a{attempt}@{}", spec.name, cfg.name);
        eprintln!("synts-serve: executor {id}: running shard {shard} ({token})");
        // Heartbeat while the shard runs, on the poll cadence. An
        // injected fleet.heartbeat fault drops individual beats — on a
        // tight lease that is how the chaos suite forces reassignment
        // of a *live* executor's shard.
        let hb_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hb = {
            let stop = Arc::clone(&hb_stop);
            let client = client.clone();
            let id = id.clone();
            let lease = lease.clone();
            let faults = cfg.faults.clone();
            let interval = cfg.poll;
            std::thread::spawn(move || {
                let mut beat = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    beat += 1;
                    let dropped = faults.as_ref().is_some_and(|plan| {
                        plan.should(site::FLEET_HEARTBEAT, &format!("{lease}#h{beat}@{id}"))
                    });
                    if dropped {
                        continue;
                    }
                    let body = Json::obj()
                        .field("executor", Json::str(&id))
                        .field("lease", Json::str(&lease))
                        .render_pretty();
                    let _ = client.request("POST", "/v1/fleet/heartbeat", Some(&body));
                }
            })
        };
        let run_faults = cfg.faults.clone();
        let run_spec = spec;
        let run_cache = cache.clone();
        let run_token = token;
        let result = std::panic::catch_unwind(AssertUnwindSafe(move || {
            if let Some(plan) = &run_faults {
                // The real kill: abort mid-shard, lease still held.
                plan.maybe_kill(&run_token);
                plan.maybe_slow(&run_token);
                plan.maybe_panic(&run_token);
            }
            Experiment::new(run_spec).with_cache(run_cache).run()
        }))
        .unwrap_or_else(|panic| Err(panic_error("shard execution", &panic)))
        .map_err(|e| e.to_string());
        hb_stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = hb.join();
        match complete(&client, &id, &lease, &result) {
            Ok(true) => {}
            Ok(false) => eprintln!(
                "synts-serve: executor {id}: completion for {lease} rejected \
                 (lease expired; shard was reassigned)"
            ),
            Err(e) => eprintln!("synts-serve: executor {id}: completion for {lease} lost: {e}"),
        }
    }
}

/// Reports a shard outcome; `Ok(accepted)` distinguishes a rejected
/// (expired) lease from a delivered result.
fn complete(
    client: &Client,
    id: &str,
    lease: &str,
    result: &Result<Report, String>,
) -> Result<bool, OptError> {
    let body = match result {
        Ok(report) => Json::obj()
            .field("executor", Json::str(id))
            .field("lease", Json::str(lease))
            .field("report", Json::parse(&report.to_json_string())?)
            .render_pretty(),
        Err(msg) => Json::obj()
            .field("executor", Json::str(id))
            .field("lease", Json::str(lease))
            .field("error", Json::str(msg))
            .render_pretty(),
    };
    let reply = client.request("POST", "/v1/fleet/complete", Some(&body))?;
    Ok(reply.status == 200)
}
