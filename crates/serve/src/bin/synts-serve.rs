//! `synts-serve` — run the SynTS scenario service.
//!
//! ```text
//! synts-serve [--addr 127.0.0.1:7070] [--workers N] [--max-shards N]
//!             [--max-attempts N] [--cache-dir DIR | --no-cache]
//!             [--journal-dir DIR] [--faults PLAN]
//!             [--local-shards on|off] [--lease-ticks N] [--tick-ms MS]
//! synts-serve --executor --coordinator HOST:PORT [--name NAME]
//!             [--poll-ms MS] [--cache-dir DIR | --no-cache] [--faults PLAN]
//! ```
//!
//! Coordinator mode binds the HTTP front end, prints the resolved
//! address, and serves until `POST /v1/shutdown` (or Ctrl-C, which
//! skips the drain). Executor mode registers with a coordinator and
//! pulls shard work over HTTP until the coordinator shuts down.
//!
//! With `--journal-dir` the service journals every job durably and, on
//! startup, replays the directory: finished jobs serve their journaled
//! reports, interrupted jobs resume from their completed shards.
//! `--faults` (or the `SYNTS_FAULTS` environment variable) arms the
//! deterministic fault-injection harness — see `synts_core::faults`.
//!
//! Fleet leases live in logical ticks: `--lease-ticks` sets how many a
//! lease survives without renewal, and the reaper thread advances one
//! tick every `--tick-ms` milliseconds (0 disables it — tests tick via
//! `POST /v1/fleet/tick` instead). `--local-shards off` reserves shard
//! tasks for fleet executors (falling back to local execution, with a
//! warning, while none are live).
#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use synts_core::{CharCache, FaultPlan, SolverRegistry};
use synts_serve::{
    run_executor, ExecutorConfig, Journal, Server, Service, ServiceConfig, Shutdown,
};

#[derive(Debug)]
struct Args {
    addr: String,
    workers: usize,
    max_shards: usize,
    max_attempts: u32,
    cache: CharCache,
    journal_dir: Option<String>,
    faults: Option<String>,
    executor: bool,
    coordinator: Option<String>,
    name: Option<String>,
    poll_ms: u64,
    local_shards: bool,
    lease_ticks: u64,
    tick_ms: u64,
}

const USAGE: &str = "usage: synts-serve [--addr HOST:PORT] [--workers N] [--max-shards N] \
[--max-attempts N] [--cache-dir DIR | --no-cache] [--journal-dir DIR] [--faults PLAN] \
[--local-shards on|off] [--lease-ticks N] [--tick-ms MS]
       synts-serve --executor --coordinator HOST:PORT [--name NAME] [--poll-ms MS] \
[--cache-dir DIR | --no-cache] [--faults PLAN]

Serves the SynTS scenario API (POST /v1/jobs[?key=..], GET /v1/jobs/<id>[/report],
GET /v1/healthz, GET /v1/stats, POST /v1/shutdown). Defaults: --addr
127.0.0.1:7070, --workers 2, --max-shards 4, --max-attempts 2, cache per
SYNTS_CACHE_DIR (target/synts-cache). --journal-dir enables the durable
job journal (replayed on startup); --faults arms deterministic fault
injection (grammar: 'seed=N;site=NUM/DEN;site=~substr', overriding the
SYNTS_FAULTS environment variable).

Fleet: --executor turns this process into a remote executor for the
coordinator at --coordinator (required), polling every --poll-ms (200).
On the coordinator, --local-shards off reserves shards for executors
(local fallback while none are live), --lease-ticks (5) bounds how many
logical ticks a lease survives without renewal, and --tick-ms (500)
paces the reaper thread that advances the lease clock (0 disables it).";

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7070".to_string(),
        workers: 2,
        max_shards: 4,
        max_attempts: 2,
        cache: CharCache::from_env(),
        journal_dir: None,
        faults: None,
        executor: false,
        coordinator: None,
        name: None,
        poll_ms: 200,
        local_shards: true,
        lease_ticks: 5,
        tick_ms: 500,
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} expects {what}; see --help"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("HOST:PORT")?,
            "--workers" => {
                args.workers = value("a thread count")?
                    .parse()
                    .map_err(|_| "--workers expects an integer >= 1".to_string())?;
            }
            "--max-shards" => {
                args.max_shards = value("a shard count")?
                    .parse()
                    .map_err(|_| "--max-shards expects an integer >= 1".to_string())?;
            }
            "--max-attempts" => {
                args.max_attempts = value("an attempt count")?
                    .parse()
                    .map_err(|_| "--max-attempts expects an integer >= 1".to_string())?;
            }
            "--cache-dir" => args.cache = CharCache::at_dir(value("a directory")?),
            "--no-cache" => args.cache = CharCache::disabled(),
            "--journal-dir" => args.journal_dir = Some(value("a directory")?),
            "--faults" => args.faults = Some(value("a fault plan")?),
            "--executor" => args.executor = true,
            "--coordinator" => args.coordinator = Some(value("HOST:PORT")?),
            "--name" => args.name = Some(value("an executor name")?),
            "--poll-ms" => {
                args.poll_ms = value("milliseconds")?
                    .parse()
                    .map_err(|_| "--poll-ms expects an integer >= 1".to_string())?;
                if args.poll_ms == 0 {
                    return Err("--poll-ms expects an integer >= 1".to_string());
                }
            }
            "--local-shards" => {
                args.local_shards = match value("on|off")?.as_str() {
                    "on" => true,
                    "off" => false,
                    _ => return Err("--local-shards expects 'on' or 'off'".to_string()),
                };
            }
            "--lease-ticks" => {
                args.lease_ticks = value("a tick count")?
                    .parse()
                    .map_err(|_| "--lease-ticks expects an integer >= 1".to_string())?;
                if args.lease_ticks == 0 {
                    return Err("--lease-ticks expects an integer >= 1".to_string());
                }
            }
            "--tick-ms" => {
                args.tick_ms = value("milliseconds (0 disables the reaper)")?
                    .parse()
                    .map_err(|_| "--tick-ms expects an integer >= 0".to_string())?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'; see --help")),
        }
    }
    if args.executor && args.coordinator.is_none() {
        return Err("--executor requires --coordinator HOST:PORT; see --help".to_string());
    }
    if !args.executor && args.coordinator.is_some() {
        return Err("--coordinator only makes sense with --executor; see --help".to_string());
    }
    Ok(args)
}

/// Resolves the armed fault plan: the `--faults` flag wins, otherwise
/// the `SYNTS_FAULTS` environment variable, otherwise unarmed.
fn resolve_faults(flag: Option<&str>) -> Result<Option<Arc<FaultPlan>>, String> {
    let plan = match flag {
        Some(src) => FaultPlan::parse(src).map(Some),
        None => FaultPlan::from_env(),
    };
    plan.map(|p| p.filter(FaultPlan::is_armed).map(Arc::new))
        .map_err(|e| format!("synts-serve: invalid fault plan: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let faults = match resolve_faults(args.faults.as_deref()) {
        Ok(faults) => faults,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.executor {
        let coordinator = args
            .coordinator
            .clone()
            .expect("parse_args enforces --coordinator with --executor");
        let name = args
            .name
            .clone()
            .unwrap_or_else(|| format!("executor-{}", std::process::id()));
        if let Some(plan) = &faults {
            println!("synts-serve: fault injection armed: {}", plan.source());
        }
        println!("synts-serve: executor {name} joining fleet at {coordinator}");
        return match run_executor(&ExecutorConfig {
            coordinator,
            name,
            cache: args.cache,
            faults,
            poll: Duration::from_millis(args.poll_ms),
            max_offline_polls: 50,
        }) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("synts-serve: executor: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let journal = match args.journal_dir.as_deref().map(Journal::open).transpose() {
        Ok(journal) => journal,
        Err(e) => {
            eprintln!(
                "synts-serve: cannot open journal dir {}: {e}",
                args.journal_dir.as_deref().unwrap_or_default()
            );
            return ExitCode::FAILURE;
        }
    };
    if let Some(plan) = &faults {
        println!("synts-serve: fault injection armed: {}", plan.source());
    }
    let service = Arc::new(Service::start(ServiceConfig {
        workers: args.workers,
        max_shards: args.max_shards,
        max_attempts: args.max_attempts,
        cache: args.cache,
        registry: SolverRegistry::with_defaults(),
        journal,
        faults,
        local_shards: args.local_shards,
        lease_ticks: args.lease_ticks,
    }));
    if args.tick_ms > 0 {
        // The reaper: the only place wall-clock meets the lease clock.
        // Every lease/expiry *decision* happens inside fleet_tick, in
        // logical ticks, so tests that tick explicitly are exact.
        let reaper = Arc::clone(&service);
        let interval = Duration::from_millis(args.tick_ms);
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            let _ = reaper.fleet_tick();
        });
    }
    let mut server = match Server::bind(&args.addr, service) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("synts-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "synts-serve: listening on {} ({} worker(s), up to {} shard(s)/job{})",
        server.addr(),
        args.workers,
        args.max_shards,
        if args.local_shards {
            ""
        } else {
            ", fleet shards"
        }
    );
    let mode = server.wait_shutdown();
    println!(
        "synts-serve: shutting down ({})",
        match mode {
            Shutdown::Drain => "draining queued jobs",
            Shutdown::Now => "finishing in-flight shards only",
        }
    );
    server.shutdown(mode);
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        parse_args(words.iter().map(|w| (*w).to_string()))
    }

    #[test]
    fn defaults_and_new_flags_parse() {
        let args = parse(&[]).expect("defaults");
        assert_eq!(args.addr, "127.0.0.1:7070");
        assert!(args.journal_dir.is_none());
        assert!(args.faults.is_none());

        let args = parse(&[
            "--journal-dir",
            "target/j",
            "--faults",
            "seed=7;exec.panic=~#a0",
        ])
        .expect("new flags");
        assert_eq!(args.journal_dir.as_deref(), Some("target/j"));
        assert_eq!(args.faults.as_deref(), Some("seed=7;exec.panic=~#a0"));
    }

    #[test]
    fn flag_errors_are_one_clear_line() {
        let err = parse(&["--journal-dir"]).expect_err("missing value");
        assert!(err.contains("--journal-dir expects"), "{err}");
        let err = parse(&["--bogus"]).expect_err("unknown flag");
        assert!(err.contains("unknown flag '--bogus'"), "{err}");
    }

    #[test]
    fn bad_fault_plan_is_rejected_with_the_parse_error() {
        let err = resolve_faults(Some("seed=7;nope.site=1/2")).expect_err("bad site");
        assert!(err.starts_with("synts-serve: invalid fault plan:"), "{err}");
        let armed = resolve_faults(Some("seed=1;cache.write=1/2")).expect("valid plan");
        assert!(armed.is_some());
        let inert = resolve_faults(Some("")).expect("empty plan is inert");
        assert!(inert.is_none());
    }

    #[test]
    fn bind_failure_is_a_clear_error_not_a_panic() {
        // Occupy a port, then confirm a second bind to it fails with an
        // ordinary error (main() turns this into the one-line message).
        let holder = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe port");
        let addr = holder.local_addr().expect("probe addr").to_string();
        let service = Arc::new(Service::start(ServiceConfig {
            workers: 1,
            cache: CharCache::disabled(),
            ..ServiceConfig::default()
        }));
        let err = Server::bind(&addr, Arc::clone(&service)).expect_err("port is taken");
        let line = format!("synts-serve: cannot bind {addr}: {err}");
        assert!(line.contains(&addr), "{line}");
        assert!(!line.contains('\n'), "error must be one line: {line}");
        service.shutdown(Shutdown::Now);
    }

    #[test]
    fn bad_addr_is_a_clear_error() {
        let service = Arc::new(Service::start(ServiceConfig {
            workers: 1,
            cache: CharCache::disabled(),
            ..ServiceConfig::default()
        }));
        let err = Server::bind("not-an-addr", Arc::clone(&service)).expect_err("unparseable addr");
        assert!(!err.to_string().is_empty());
        service.shutdown(Shutdown::Now);
    }
}
