//! `synts-serve` — run the SynTS scenario service.
//!
//! ```text
//! synts-serve [--addr 127.0.0.1:7070] [--workers N] [--max-shards N]
//!             [--max-attempts N] [--cache-dir DIR | --no-cache]
//! ```
//!
//! Binds the HTTP front end, prints the resolved address, and serves
//! until `POST /v1/shutdown` (or Ctrl-C, which skips the drain).
#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::sync::Arc;

use synts_core::{CharCache, SolverRegistry};
use synts_serve::{Server, Service, ServiceConfig, Shutdown};

struct Args {
    addr: String,
    workers: usize,
    max_shards: usize,
    max_attempts: u32,
    cache: CharCache,
}

const USAGE: &str = "usage: synts-serve [--addr HOST:PORT] [--workers N] [--max-shards N] \
[--max-attempts N] [--cache-dir DIR | --no-cache]

Serves the SynTS scenario API (POST /v1/jobs, GET /v1/jobs/<id>[/report],
GET /v1/healthz, GET /v1/stats, POST /v1/shutdown). Defaults: --addr
127.0.0.1:7070, --workers 2, --max-shards 4, --max-attempts 2, cache per
SYNTS_CACHE_DIR (target/synts-cache).";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7070".to_string(),
        workers: 2,
        max_shards: 4,
        max_attempts: 2,
        cache: CharCache::from_env(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} expects {what}; see --help"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("HOST:PORT")?,
            "--workers" => {
                args.workers = value("a thread count")?
                    .parse()
                    .map_err(|_| "--workers expects an integer >= 1".to_string())?;
            }
            "--max-shards" => {
                args.max_shards = value("a shard count")?
                    .parse()
                    .map_err(|_| "--max-shards expects an integer >= 1".to_string())?;
            }
            "--max-attempts" => {
                args.max_attempts = value("an attempt count")?
                    .parse()
                    .map_err(|_| "--max-attempts expects an integer >= 1".to_string())?;
            }
            "--cache-dir" => args.cache = CharCache::at_dir(value("a directory")?),
            "--no-cache" => args.cache = CharCache::disabled(),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'; see --help")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let service = Arc::new(Service::start(ServiceConfig {
        workers: args.workers,
        max_shards: args.max_shards,
        max_attempts: args.max_attempts,
        cache: args.cache,
        registry: SolverRegistry::with_defaults(),
    }));
    let mut server = match Server::bind(&args.addr, service) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("synts-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "synts-serve: listening on {} ({} worker(s), up to {} shard(s)/job)",
        server.addr(),
        args.workers,
        args.max_shards
    );
    let mode = server.wait_shutdown();
    println!(
        "synts-serve: shutting down ({})",
        match mode {
            Shutdown::Drain => "draining queued jobs",
            Shutdown::Now => "finishing in-flight shards only",
        }
    );
    server.shutdown(mode);
    ExitCode::SUCCESS
}
