//! `synts-serve` — run the SynTS scenario service.
//!
//! ```text
//! synts-serve [--addr 127.0.0.1:7070] [--workers N] [--max-shards N]
//!             [--max-attempts N] [--cache-dir DIR | --no-cache]
//!             [--journal-dir DIR] [--faults PLAN]
//! ```
//!
//! Binds the HTTP front end, prints the resolved address, and serves
//! until `POST /v1/shutdown` (or Ctrl-C, which skips the drain).
//!
//! With `--journal-dir` the service journals every job durably and, on
//! startup, replays the directory: finished jobs serve their journaled
//! reports, interrupted jobs resume from their completed shards.
//! `--faults` (or the `SYNTS_FAULTS` environment variable) arms the
//! deterministic fault-injection harness — see `synts_core::faults`.
#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::sync::Arc;

use synts_core::{CharCache, FaultPlan, SolverRegistry};
use synts_serve::{Journal, Server, Service, ServiceConfig, Shutdown};

#[derive(Debug)]
struct Args {
    addr: String,
    workers: usize,
    max_shards: usize,
    max_attempts: u32,
    cache: CharCache,
    journal_dir: Option<String>,
    faults: Option<String>,
}

const USAGE: &str = "usage: synts-serve [--addr HOST:PORT] [--workers N] [--max-shards N] \
[--max-attempts N] [--cache-dir DIR | --no-cache] [--journal-dir DIR] [--faults PLAN]

Serves the SynTS scenario API (POST /v1/jobs[?key=..], GET /v1/jobs/<id>[/report],
GET /v1/healthz, GET /v1/stats, POST /v1/shutdown). Defaults: --addr
127.0.0.1:7070, --workers 2, --max-shards 4, --max-attempts 2, cache per
SYNTS_CACHE_DIR (target/synts-cache). --journal-dir enables the durable
job journal (replayed on startup); --faults arms deterministic fault
injection (grammar: 'seed=N;site=NUM/DEN;site=~substr', overriding the
SYNTS_FAULTS environment variable).";

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7070".to_string(),
        workers: 2,
        max_shards: 4,
        max_attempts: 2,
        cache: CharCache::from_env(),
        journal_dir: None,
        faults: None,
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} expects {what}; see --help"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("HOST:PORT")?,
            "--workers" => {
                args.workers = value("a thread count")?
                    .parse()
                    .map_err(|_| "--workers expects an integer >= 1".to_string())?;
            }
            "--max-shards" => {
                args.max_shards = value("a shard count")?
                    .parse()
                    .map_err(|_| "--max-shards expects an integer >= 1".to_string())?;
            }
            "--max-attempts" => {
                args.max_attempts = value("an attempt count")?
                    .parse()
                    .map_err(|_| "--max-attempts expects an integer >= 1".to_string())?;
            }
            "--cache-dir" => args.cache = CharCache::at_dir(value("a directory")?),
            "--no-cache" => args.cache = CharCache::disabled(),
            "--journal-dir" => args.journal_dir = Some(value("a directory")?),
            "--faults" => args.faults = Some(value("a fault plan")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'; see --help")),
        }
    }
    Ok(args)
}

/// Resolves the armed fault plan: the `--faults` flag wins, otherwise
/// the `SYNTS_FAULTS` environment variable, otherwise unarmed.
fn resolve_faults(flag: Option<&str>) -> Result<Option<Arc<FaultPlan>>, String> {
    let plan = match flag {
        Some(src) => FaultPlan::parse(src).map(Some),
        None => FaultPlan::from_env(),
    };
    plan.map(|p| p.filter(FaultPlan::is_armed).map(Arc::new))
        .map_err(|e| format!("synts-serve: invalid fault plan: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let faults = match resolve_faults(args.faults.as_deref()) {
        Ok(faults) => faults,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let journal = match args.journal_dir.as_deref().map(Journal::open).transpose() {
        Ok(journal) => journal,
        Err(e) => {
            eprintln!(
                "synts-serve: cannot open journal dir {}: {e}",
                args.journal_dir.as_deref().unwrap_or_default()
            );
            return ExitCode::FAILURE;
        }
    };
    if let Some(plan) = &faults {
        println!("synts-serve: fault injection armed: {}", plan.source());
    }
    let service = Arc::new(Service::start(ServiceConfig {
        workers: args.workers,
        max_shards: args.max_shards,
        max_attempts: args.max_attempts,
        cache: args.cache,
        registry: SolverRegistry::with_defaults(),
        journal,
        faults,
    }));
    let mut server = match Server::bind(&args.addr, service) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("synts-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "synts-serve: listening on {} ({} worker(s), up to {} shard(s)/job)",
        server.addr(),
        args.workers,
        args.max_shards
    );
    let mode = server.wait_shutdown();
    println!(
        "synts-serve: shutting down ({})",
        match mode {
            Shutdown::Drain => "draining queued jobs",
            Shutdown::Now => "finishing in-flight shards only",
        }
    );
    server.shutdown(mode);
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        parse_args(words.iter().map(|w| (*w).to_string()))
    }

    #[test]
    fn defaults_and_new_flags_parse() {
        let args = parse(&[]).expect("defaults");
        assert_eq!(args.addr, "127.0.0.1:7070");
        assert!(args.journal_dir.is_none());
        assert!(args.faults.is_none());

        let args = parse(&[
            "--journal-dir",
            "target/j",
            "--faults",
            "seed=7;exec.panic=~#a0",
        ])
        .expect("new flags");
        assert_eq!(args.journal_dir.as_deref(), Some("target/j"));
        assert_eq!(args.faults.as_deref(), Some("seed=7;exec.panic=~#a0"));
    }

    #[test]
    fn flag_errors_are_one_clear_line() {
        let err = parse(&["--journal-dir"]).expect_err("missing value");
        assert!(err.contains("--journal-dir expects"), "{err}");
        let err = parse(&["--bogus"]).expect_err("unknown flag");
        assert!(err.contains("unknown flag '--bogus'"), "{err}");
    }

    #[test]
    fn bad_fault_plan_is_rejected_with_the_parse_error() {
        let err = resolve_faults(Some("seed=7;nope.site=1/2")).expect_err("bad site");
        assert!(err.starts_with("synts-serve: invalid fault plan:"), "{err}");
        let armed = resolve_faults(Some("seed=1;cache.write=1/2")).expect("valid plan");
        assert!(armed.is_some());
        let inert = resolve_faults(Some("")).expect("empty plan is inert");
        assert!(inert.is_none());
    }

    #[test]
    fn bind_failure_is_a_clear_error_not_a_panic() {
        // Occupy a port, then confirm a second bind to it fails with an
        // ordinary error (main() turns this into the one-line message).
        let holder = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe port");
        let addr = holder.local_addr().expect("probe addr").to_string();
        let service = Arc::new(Service::start(ServiceConfig {
            workers: 1,
            cache: CharCache::disabled(),
            ..ServiceConfig::default()
        }));
        let err = Server::bind(&addr, Arc::clone(&service)).expect_err("port is taken");
        let line = format!("synts-serve: cannot bind {addr}: {err}");
        assert!(line.contains(&addr), "{line}");
        assert!(!line.contains('\n'), "error must be one line: {line}");
        service.shutdown(Shutdown::Now);
    }

    #[test]
    fn bad_addr_is_a_clear_error() {
        let service = Arc::new(Service::start(ServiceConfig {
            workers: 1,
            cache: CharCache::disabled(),
            ..ServiceConfig::default()
        }));
        let err = Server::bind("not-an-addr", Arc::clone(&service)).expect_err("unparseable addr");
        assert!(!err.to_string().is_empty());
        service.shutdown(Shutdown::Now);
    }
}
