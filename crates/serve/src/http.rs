//! A minimal, dependency-free HTTP/1.1 front end for the scenario
//! [`Service`].
//!
//! Scope is deliberately narrow — this is a lab fleet endpoint, not a
//! general web server: one request per connection (`Connection: close`),
//! thread-per-connection, bounded header/body sizes, read timeouts, and
//! canonical-JSON bodies throughout (the same [`Json`] renderer the
//! golden fixtures pin, so a fetched report is byte-identical to
//! `synts-cli run` output).
//!
//! Routes:
//!
//! | method & path                  | reply                                        |
//! |--------------------------------|----------------------------------------------|
//! | `POST /v1/jobs[?key=<token>]`  | 202 + job status (body: a `ScenarioSpec`; `key` makes the submit idempotent — a retried POST returns the existing job) |
//! | `GET /v1/jobs`                 | 200 + all job statuses, submission order     |
//! | `GET /v1/jobs/<id>`            | 200 + job status                             |
//! | `GET /v1/jobs/<id>/report`     | 200 + merged report (`?format=csv` for CSV); 202 while pending; 410 if failed/cancelled |
//! | `DELETE /v1/jobs/<id>`         | 200 + job status (cancels a live job)        |
//! | `GET /v1/healthz`              | readiness probe: 200 while serving, 503 once the journal stops accepting writes (body carries queue depth, live executors, lease count, degraded flag) |
//! | `GET /v1/stats`                | 200 + service counters                       |
//! | `POST /v1/shutdown`            | 200, then winds the server down (`{"mode": "drain"\|"now"}`) |
//! | `POST /v1/fleet/register`      | 200 + assigned executor id and lease ticks (body: `{"name": ..}`) |
//! | `POST /v1/fleet/poll`          | 200 + a leased shard dispatch, or idle/stop; 404 if the registration lapsed |
//! | `POST /v1/fleet/heartbeat`     | 200 renews the registration (and the named lease); 404 if lapsed |
//! | `POST /v1/fleet/complete`      | 200 lands a shard result; 409 if the lease expired (shard reassigned) |
//! | `POST /v1/fleet/tick`          | 200, advances the logical lease clock one tick |
//! | `GET /v1/cache/<key>[?claim=who]` | shared characterization tier: 200 + entry, 404 miss (`claim` granted on miss), 409 while another executor computes the key |
//! | `PUT /v1/cache/<key>`          | 200, publishes an entry into the shared tier |
//!
//! Malformed requests (bad request line, oversized headers/bodies,
//! invalid JSON, unknown routes) get 4xx JSON errors; a connection that
//! stalls past the [`ServerConfig::read_deadline`] gets a 408; nothing a
//! client sends can panic the server ([`std::panic::catch_unwind`]
//! backstops every connection thread).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use synts_core::faults::{site, FaultPlan};
use synts_core::scenario::{Json, ScenarioSpec};

use crate::queue::{JobStatus, ReportOutcome, Service, Shutdown};

/// Longest accepted request head (request line + headers), bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted request body, bytes. Sized for fleet completions —
/// an executor POSTs a whole shard report, which dwarfs any spec.
const MAX_BODY: usize = 8 * 1024 * 1024;
/// Per-connection socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Tunables of one [`Server`] instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Total budget for reading one request (line, headers and body).
    /// A connection that stalls past it — slow-loris, torn body — gets
    /// a 408 and is closed; it can never pin a handler thread.
    pub read_deadline: Duration,
    /// Deterministic fault plan for the `net.*` server sites (torn
    /// writes, mid-body disconnects). `None` serves faithfully.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_deadline: IO_TIMEOUT,
            faults: None,
        }
    }
}

struct Inner {
    service: Arc<Service>,
    cfg: ServerConfig,
    /// Requests handled so far — the identity token for server-side
    /// fault decisions (`#r<n>`).
    requests: AtomicU64,
    stopping: AtomicBool,
    requested: Mutex<Option<Shutdown>>,
    cv: Condvar,
}

/// The running HTTP front end. Owns the accept loop; the wrapped
/// [`Service`] does the actual work.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts accepting connections against `service`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, service: Arc<Service>) -> std::io::Result<Server> {
        Server::bind_with(addr, service, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit tunables (read deadline, faults).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with(
        addr: &str,
        service: Arc<Service>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::new(Inner {
            service,
            cfg,
            requests: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            requested: Mutex::new(None),
            cv: Condvar::new(),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_inner));
        Ok(Server {
            inner,
            addr: local,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a `POST /v1/shutdown` arrives (or [`Server::stop`]
    /// is called from another thread) and returns the requested mode.
    #[must_use]
    pub fn wait_shutdown(&self) -> Shutdown {
        // The guarded value is a plain Option<Shutdown>; a poisoned
        // guard is still consistent, so recover instead of propagating.
        let mut requested = self
            .inner
            .requested
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(mode) = *requested {
                return mode;
            }
            requested = self
                .inner
                .cv
                .wait(requested)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Requests shutdown from in-process (same effect as the endpoint).
    pub fn stop(&self, mode: Shutdown) {
        self.inner.request_stop(mode);
    }

    /// Stops accepting connections, winds the service down per `mode`
    /// (drain first, then the workers are joined), and joins the accept
    /// loop. Idempotent.
    pub fn shutdown(&mut self, mode: Shutdown) {
        self.inner.request_stop(mode);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.inner.service.shutdown(mode);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown(Shutdown::Now);
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Inner {
    fn request_stop(&self, mode: Shutdown) {
        self.stopping.store(true, Ordering::SeqCst);
        let mut requested = self
            .requested
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *requested = match (*requested, mode) {
            (Some(Shutdown::Now), _) | (_, Shutdown::Now) => Some(Shutdown::Now),
            _ => Some(Shutdown::Drain),
        };
        drop(requested);
        self.cv.notify_all();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if inner.stopping.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent accept failure (EMFILE once
                // thread-per-connection exhausts fds) must not busy-spin
                // a core; back off and retry — the condition clears when
                // connections finish.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if inner.stopping.load(Ordering::SeqCst) {
            return;
        }
        let conn_inner = Arc::clone(inner);
        std::thread::spawn(move || {
            // A panic in a handler must kill only this connection.
            let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                handle_connection(stream, &conn_inner);
            }));
        });
    }
}

struct Request {
    method: String,
    path: String,
    query: Option<String>,
    body: String,
}

enum ReadError {
    Malformed(&'static str),
    TooLarge(&'static str),
    Timeout,
    Io,
}

/// Tracks the per-connection read budget. The clock is read only to
/// *bound* how long a client may take, never to shape a result.
struct ReadBudget {
    started: Instant,
    deadline: Duration,
}

impl ReadBudget {
    fn new(deadline: Duration) -> ReadBudget {
        // synts-lint: allow(wall-clock) — read-deadline enforcement: the clock bounds client I/O, results never depend on it
        let started = Instant::now();
        ReadBudget { started, deadline }
    }

    /// Time left before the 408, `None` once exhausted.
    fn remaining(&self) -> Option<Duration> {
        self.deadline.checked_sub(self.started.elapsed())
    }

    /// Classifies a failed read: past the deadline it was the stall
    /// (408); otherwise a genuine transport error (drop silently).
    fn classify(&self) -> ReadError {
        if self.remaining().is_none() {
            ReadError::Timeout
        } else {
            ReadError::Io
        }
    }

    /// Arms the socket timeout with what's left of the budget so a
    /// stalled peer wakes the read at the deadline, not 10 s later.
    fn arm(&self, reader: &BufReader<TcpStream>) -> Result<(), ReadError> {
        let Some(remaining) = self.remaining() else {
            return Err(ReadError::Timeout);
        };
        reader
            .get_ref()
            .set_read_timeout(Some(remaining))
            .map_err(|_| ReadError::Io)
    }
}

fn handle_connection(stream: TcpStream, inner: &Inner) {
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let budget = ReadBudget::new(inner.cfg.read_deadline);
    let request_n = inner.requests.fetch_add(1, Ordering::SeqCst);
    let response = match read_request(&mut reader, &budget) {
        Ok(req) => route(&req, inner),
        Err(ReadError::Malformed(what)) => error_response(400, what),
        Err(ReadError::TooLarge(what)) => error_response(413, what),
        Err(ReadError::Timeout) => error_response(408, "request read deadline exceeded"),
        Err(ReadError::Io) => return,
    };
    write_response(
        stream,
        &response,
        inner.cfg.faults.as_deref(),
        &format!("#r{request_n}"),
    );
}

/// Reads one head line through a [`Read::take`] capped at the remaining
/// head budget, so a peer streaming an endless line (no newline) can
/// never grow the buffer past [`MAX_HEAD`] — the size check must fire
/// *during* the read, not after a complete line lands.
fn read_head_line(
    reader: &mut BufReader<TcpStream>,
    budget: &ReadBudget,
    remaining: &mut usize,
) -> Result<String, ReadError> {
    budget.arm(reader)?;
    let mut line = String::new();
    // +1 so a line that exactly fills the budget keeps its newline and
    // an over-budget one is detectable by length.
    (&mut *reader)
        .take(*remaining as u64 + 1)
        .read_line(&mut line)
        .map_err(|_| budget.classify())?;
    if line.len() > *remaining {
        return Err(ReadError::TooLarge("request head exceeds 16 KiB"));
    }
    *remaining -= line.len();
    Ok(line)
}

fn read_request(
    reader: &mut BufReader<TcpStream>,
    budget: &ReadBudget,
) -> Result<Request, ReadError> {
    let mut head_remaining = MAX_HEAD;
    let line = read_head_line(reader, budget, &mut head_remaining)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ReadError::Malformed("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(ReadError::Malformed("request line names no path"))?;
    let version = parts
        .next()
        .ok_or(ReadError::Malformed("request line names no HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut content_length = 0usize;
    loop {
        let header = read_head_line(reader, budget, &mut head_remaining)?;
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("unparseable Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(ReadError::TooLarge("request body exceeds 8 MiB"));
    }
    let mut body = vec![0u8; content_length];
    budget.arm(reader)?;
    reader
        .read_exact(&mut body)
        .map_err(|_| budget.classify())?;
    let body = String::from_utf8(body).map_err(|_| ReadError::Malformed("body is not UTF-8"))?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

fn json_response(status: u16, body: &Json) -> Response {
    Response {
        status,
        content_type: "application/json",
        body: body.render_pretty(),
    }
}

fn error_response(status: u16, message: &str) -> Response {
    json_response(status, &Json::obj().field("error", Json::str(message)))
}

fn route(req: &Request, inner: &Inner) -> Response {
    let service = &inner.service;
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => {
            // A real readiness probe: 503 once the journal stops
            // accepting writes (a 200 with a sick body would keep
            // load balancers routing jobs into a black hole).
            let health = service.health();
            json_response(if health.ok { 200 } else { 503 }, &health.to_json())
        }
        ("GET", ["v1", "stats"]) => json_response(200, &service.stats().to_json()),
        ("POST", ["v1", "fleet", "register"]) => match Json::parse(&req.body) {
            Ok(json) => {
                let name = json
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("executor");
                let r = service.fleet_register(name);
                json_response(
                    200,
                    &Json::obj()
                        .field("executor", Json::str(&r.executor))
                        .field("lease_ticks", Json::num(r.lease_ticks as f64)),
                )
            }
            Err(e) => error_response(400, &e.to_string()),
        },
        ("POST", ["v1", "fleet", "poll"]) => fleet_poll_route(req, service),
        ("POST", ["v1", "fleet", "heartbeat"]) => match Json::parse(&req.body) {
            Ok(json) => {
                let Some(executor) = json.get("executor").and_then(Json::as_str) else {
                    return error_response(400, "heartbeat names no executor");
                };
                let lease = json.get("lease").and_then(Json::as_str);
                match service.fleet_heartbeat(executor, lease) {
                    crate::fleet::HeartbeatOutcome::Renewed { lease_held } => {
                        let mut body = Json::obj().field("ok", Json::Bool(true));
                        if let Some(held) = lease_held {
                            body = body.field("lease_held", Json::Bool(held));
                        }
                        json_response(200, &body)
                    }
                    crate::fleet::HeartbeatOutcome::UnknownExecutor => {
                        error_response(404, &format!("unknown executor: {executor}"))
                    }
                }
            }
            Err(e) => error_response(400, &e.to_string()),
        },
        ("POST", ["v1", "fleet", "complete"]) => fleet_complete_route(req, service),
        ("POST", ["v1", "fleet", "tick"]) => {
            let t = service.fleet_tick();
            json_response(
                200,
                &Json::obj()
                    .field("now", Json::num(t.now as f64))
                    .field("expired", Json::num(t.expired as f64)),
            )
        }
        ("GET", ["v1", "cache", name]) => cache_fetch_route(req, service, name),
        ("PUT", ["v1", "cache", name]) => {
            if !crate::fleet::valid_entry_name(name) {
                return error_response(400, "cache keys are <16 hex>.json");
            }
            match service.cache_publish(name, &req.body) {
                Ok(()) => json_response(200, &Json::obj().field("ok", Json::Bool(true))),
                Err(e) => error_response(500, &e),
            }
        }
        ("POST", ["v1", "jobs"]) => match ScenarioSpec::from_json_str(&req.body) {
            Ok(spec) => {
                // `?key=<token>` makes the submit idempotent: a client
                // retrying a dropped 202 gets the same job back. 202
                // either way, so retries cannot tell a replay apart.
                let key = query_value(req.query.as_deref(), "key");
                match service.submit_keyed(spec, key) {
                    Ok(status) => json_response(202, &status.to_json()),
                    Err(e) => error_response(400, &e.to_string()),
                }
            }
            Err(e) => error_response(400, &e.to_string()),
        },
        ("GET", ["v1", "jobs"]) => {
            let listed: Vec<Json> = service.jobs().iter().map(JobStatus::to_json).collect();
            json_response(200, &Json::obj().field("jobs", Json::arr(listed)))
        }
        ("GET", ["v1", "jobs", id]) => match service.status(id) {
            Some(status) => json_response(200, &status.to_json()),
            None => error_response(404, &format!("no such job: {id}")),
        },
        ("DELETE", ["v1", "jobs", id]) => match service.cancel(id) {
            Some(status) => json_response(200, &status.to_json()),
            None => error_response(404, &format!("no such job: {id}")),
        },
        ("GET", ["v1", "jobs", id, "report"]) => report_route(req, inner, id),
        ("POST", ["v1", "shutdown"]) => {
            let mode = match Json::parse(&req.body) {
                Ok(json) => match json.get("mode").and_then(Json::as_str) {
                    Some("now") => Shutdown::Now,
                    _ => Shutdown::Drain,
                },
                Err(_) if req.body.trim().is_empty() => Shutdown::Drain,
                Err(e) => return error_response(400, &e.to_string()),
            };
            inner.request_stop(mode);
            json_response(
                200,
                &Json::obj().field(
                    "stopping",
                    Json::str(match mode {
                        Shutdown::Drain => "drain",
                        Shutdown::Now => "now",
                    }),
                ),
            )
        }
        (_, ["v1", ..]) => error_response(404, &format!("no route: {} {}", req.method, req.path)),
        _ => error_response(404, "unknown path (the API lives under /v1/)"),
    }
}

fn fleet_poll_route(req: &Request, service: &Arc<Service>) -> Response {
    let json = match Json::parse(&req.body) {
        Ok(json) => json,
        Err(e) => return error_response(400, &e.to_string()),
    };
    let Some(executor) = json.get("executor").and_then(Json::as_str) else {
        return error_response(400, "poll names no executor");
    };
    match service.fleet_poll(executor) {
        crate::fleet::PollOutcome::Dispatch(d) => json_response(
            200,
            &Json::obj()
                .field("work", Json::Bool(true))
                .field("lease", Json::str(&d.lease))
                .field("job", Json::str(&d.job))
                .field("shard", Json::num(d.shard as f64))
                .field("attempt", Json::num(f64::from(d.attempt)))
                .field("spec", d.spec.to_json()),
        ),
        crate::fleet::PollOutcome::Idle => json_response(
            200,
            &Json::obj()
                .field("work", Json::Bool(false))
                .field("stop", Json::Bool(false)),
        ),
        crate::fleet::PollOutcome::Stop => json_response(
            200,
            &Json::obj()
                .field("work", Json::Bool(false))
                .field("stop", Json::Bool(true)),
        ),
        crate::fleet::PollOutcome::UnknownExecutor => {
            error_response(404, &format!("unknown executor: {executor}"))
        }
    }
}

fn fleet_complete_route(req: &Request, service: &Arc<Service>) -> Response {
    let json = match Json::parse(&req.body) {
        Ok(json) => json,
        Err(e) => return error_response(400, &e.to_string()),
    };
    let (Some(executor), Some(lease)) = (
        json.get("executor").and_then(Json::as_str),
        json.get("lease").and_then(Json::as_str),
    ) else {
        return error_response(400, "complete names no executor/lease");
    };
    let result = if let Some(msg) = json.get("error").and_then(Json::as_str) {
        Err(msg.to_string())
    } else if let Some(report_json) = json.get("report") {
        match synts_core::scenario::Report::from_json(report_json) {
            Ok(report) => Ok(report),
            Err(e) => return error_response(400, &format!("unparseable report: {e}")),
        }
    } else {
        return error_response(400, "complete carries neither report nor error");
    };
    match service.fleet_complete(executor, lease, result) {
        crate::fleet::CompleteOutcome::Accepted => {
            json_response(200, &Json::obj().field("accepted", Json::Bool(true)))
        }
        crate::fleet::CompleteOutcome::Rejected(why) => error_response(409, &why),
    }
}

fn cache_fetch_route(req: &Request, service: &Arc<Service>, name: &str) -> Response {
    if !crate::fleet::valid_entry_name(name) {
        return error_response(400, "cache keys are <16 hex>.json");
    }
    let claimant = query_value(req.query.as_deref(), "claim");
    match service.cache_fetch(name, claimant) {
        crate::fleet::CacheFetchOutcome::Hit(text) => Response {
            status: 200,
            content_type: "application/json",
            body: text,
        },
        crate::fleet::CacheFetchOutcome::MissClaimGranted => json_response(
            404,
            &Json::obj()
                .field("cache", Json::str("miss"))
                .field("claim", Json::str("granted")),
        ),
        crate::fleet::CacheFetchOutcome::MissClaimHeld => json_response(
            409,
            &Json::obj()
                .field("cache", Json::str("miss"))
                .field("claim", Json::str("held")),
        ),
        crate::fleet::CacheFetchOutcome::Miss => json_response(
            404,
            &Json::obj()
                .field("cache", Json::str("miss"))
                .field("claim", Json::str("none")),
        ),
        crate::fleet::CacheFetchOutcome::Disabled => {
            error_response(404, "this coordinator serves no cache tier")
        }
    }
}

fn report_route(req: &Request, inner: &Inner, id: &str) -> Response {
    let csv = req
        .query
        .as_deref()
        .is_some_and(|q| q.split('&').any(|kv| kv == "format=csv"));
    match inner.service.report(id) {
        ReportOutcome::Unknown => error_response(404, &format!("no such job: {id}")),
        ReportOutcome::Pending(status) => json_response(202, &status.to_json()),
        ReportOutcome::Unavailable(status) => json_response(410, &status.to_json()),
        ReportOutcome::Ready(report) => {
            if csv {
                let (header, rows) = report.to_csv();
                let mut body = header.join(",");
                body.push('\n');
                for row in rows {
                    body.push_str(&row.join(","));
                    body.push('\n');
                }
                Response {
                    status: 200,
                    content_type: "text/csv",
                    body,
                }
            } else {
                Response {
                    status: 200,
                    content_type: "application/json",
                    body: report.to_json_string(),
                }
            }
        }
    }
}

/// Extracts a value from a `k=v&k2=v2` query string (no percent
/// decoding — keys are restricted to plain tokens by convention).
fn query_value<'q>(query: Option<&'q str>, name: &str) -> Option<&'q str> {
    query?
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
        .filter(|v| !v.is_empty())
}

fn write_response(
    mut stream: TcpStream,
    response: &Response,
    faults: Option<&FaultPlan>,
    token: &str,
) {
    let reason = match response.status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason,
        response.content_type,
        response.body.len()
    );
    if let Some(plan) = faults {
        if plan.should(site::NET_TORN, token) {
            // Torn write: half the head, then drop the socket — the
            // client sees an unparseable reply and must retry.
            if let Some(part) = head.as_bytes().get(..head.len() / 2) {
                let _ = stream.write_all(part);
            }
            return;
        }
        if plan.should(site::NET_DISCONNECT, token) {
            // Mid-body disconnect: full head, half the body, drop.
            let _ = stream.write_all(head.as_bytes());
            if let Some(part) = response.body.as_bytes().get(..response.body.len() / 2) {
                let _ = stream.write_all(part);
            }
            return;
        }
    }
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}
