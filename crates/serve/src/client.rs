//! A std-only HTTP client for the scenario service, used by the
//! `synts-cli submit|status|fetch` subcommands and the end-to-end tests.
//!
//! Speaks exactly the dialect [`crate::http`] serves: HTTP/1.1, one
//! request per connection, `Connection: close`, JSON bodies. No TLS, no
//! redirects, no keep-alive — the service is a loopback/lab endpoint.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use synts_core::scenario::Json;
use synts_core::OptError;

/// Per-request connect/read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed HTTP reply.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// The status code.
    pub status: u16,
    /// The raw body.
    pub body: String,
}

impl HttpReply {
    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// [`OptError::Spec`] when the body is not valid JSON.
    pub fn json(&self) -> Result<Json, OptError> {
        Json::parse(&self.body)
    }

    /// The service's error message, when the body carries one.
    #[must_use]
    pub fn error_message(&self) -> Option<String> {
        let json = Json::parse(&self.body).ok()?;
        json.get("error").and_then(Json::as_str).map(String::from)
    }
}

/// A client bound to one service address (`host:port`).
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// Creates a client for `addr` (e.g. `127.0.0.1:7070`).
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// Issues one request and reads the full reply.
    ///
    /// # Errors
    ///
    /// [`OptError::Spec`] on connection failures, timeouts, or replies
    /// that are not parseable HTTP.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpReply, OptError> {
        let fail = |what: &str| OptError::Spec(format!("service client: {what} ({})", self.addr));
        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| fail(&format!("connect failed: {e}")))?;
        stream
            .set_read_timeout(Some(IO_TIMEOUT))
            .and_then(|()| stream.set_write_timeout(Some(IO_TIMEOUT)))
            .map_err(|e| fail(&format!("socket setup failed: {e}")))?;
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            payload.len()
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(payload.as_bytes()))
            .map_err(|e| fail(&format!("write failed: {e}")))?;
        let mut raw = String::new();
        stream
            .read_to_string(&mut raw)
            .map_err(|e| fail(&format!("read failed: {e}")))?;
        let (head, reply_body) = raw
            .split_once("\r\n\r\n")
            .ok_or_else(|| fail("reply carries no header/body separator"))?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| fail("reply carries no status code"))?;
        Ok(HttpReply {
            status,
            body: reply_body.to_string(),
        })
    }

    /// `GET /v1/healthz` — true when the service answers.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.request("GET", "/v1/healthz", None)
            .is_ok_and(|r| r.status == 200)
    }

    /// `POST /v1/jobs` with a spec's JSON text; returns the job id.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`OptError::Spec`] carrying the service's
    /// rejection message.
    pub fn submit(&self, spec_json: &str) -> Result<String, OptError> {
        let reply = self.request("POST", "/v1/jobs", Some(spec_json))?;
        if reply.status != 202 {
            let msg = reply
                .error_message()
                .unwrap_or_else(|| format!("HTTP {}", reply.status));
            return Err(OptError::Spec(format!("service rejected the spec: {msg}")));
        }
        reply
            .json()?
            .get("job")
            .and_then(Json::as_str)
            .map(String::from)
            .ok_or_else(|| OptError::Spec("service reply names no job id".to_string()))
    }

    /// `GET /v1/jobs/<id>` — the status JSON.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`OptError::Spec`] for unknown ids.
    pub fn status(&self, id: &str) -> Result<Json, OptError> {
        let reply = self.request("GET", &format!("/v1/jobs/{id}"), None)?;
        if reply.status != 200 {
            return Err(OptError::Spec(format!(
                "status fetch failed: HTTP {}: {}",
                reply.status,
                reply.error_message().unwrap_or_default()
            )));
        }
        reply.json()
    }

    /// `GET /v1/jobs/<id>/report` — the raw reply (200 report ready,
    /// 202 still pending, 410 failed/cancelled, 404 unknown).
    ///
    /// # Errors
    ///
    /// Transport errors only; HTTP status is the caller's to interpret.
    pub fn fetch_report(&self, id: &str, csv: bool) -> Result<HttpReply, OptError> {
        let path = if csv {
            format!("/v1/jobs/{id}/report?format=csv")
        } else {
            format!("/v1/jobs/{id}/report")
        };
        self.request("GET", &path, None)
    }

    /// Polls `GET /v1/jobs/<id>/report` until the job settles, then
    /// returns the report body (JSON or CSV per `csv`).
    ///
    /// # Errors
    ///
    /// Transport errors, [`OptError::Spec`] when the job fails, is
    /// cancelled, or `timeout` elapses first.
    pub fn wait_report(&self, id: &str, csv: bool, timeout: Duration) -> Result<String, OptError> {
        let deadline = Instant::now() + timeout;
        loop {
            let reply = self.fetch_report(id, csv)?;
            match reply.status {
                200 => return Ok(reply.body),
                202 => {}
                _ => {
                    return Err(OptError::Spec(format!(
                        "job {id} will not produce a report: HTTP {}: {}",
                        reply.status,
                        reply
                            .json()
                            .ok()
                            .and_then(|j| j.get("error").and_then(Json::as_str).map(String::from))
                            .unwrap_or_default()
                    )))
                }
            }
            if Instant::now() >= deadline {
                return Err(OptError::Spec(format!(
                    "timed out waiting for job {id} after {:.0?}",
                    timeout
                )));
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// `GET /v1/jobs` — every job's status, submission order.
    ///
    /// # Errors
    ///
    /// Transport errors, or non-200 replies.
    pub fn jobs(&self) -> Result<Json, OptError> {
        let reply = self.request("GET", "/v1/jobs", None)?;
        if reply.status != 200 {
            return Err(OptError::Spec(format!(
                "job listing failed: HTTP {}",
                reply.status
            )));
        }
        reply.json()
    }

    /// `GET /v1/stats` — the service counters.
    ///
    /// # Errors
    ///
    /// Transport errors, or non-200 replies.
    pub fn stats(&self) -> Result<Json, OptError> {
        let reply = self.request("GET", "/v1/stats", None)?;
        if reply.status != 200 {
            return Err(OptError::Spec(format!(
                "stats fetch failed: HTTP {}",
                reply.status
            )));
        }
        reply.json()
    }

    /// `POST /v1/shutdown` with the given mode.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn shutdown(&self, drain: bool) -> Result<(), OptError> {
        let body = if drain {
            r#"{"mode": "drain"}"#
        } else {
            r#"{"mode": "now"}"#
        };
        self.request("POST", "/v1/shutdown", Some(body)).map(|_| ())
    }
}
