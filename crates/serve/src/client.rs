//! A std-only HTTP client for the scenario service, used by the
//! `synts-cli submit|status|fetch` subcommands and the end-to-end tests.
//!
//! Speaks exactly the dialect [`crate::http`] serves: HTTP/1.1, one
//! request per connection, `Connection: close`, JSON bodies. No TLS, no
//! redirects, no keep-alive — the service is a loopback/lab endpoint.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use synts_core::faults::{site, FaultPlan};
use synts_core::scenario::Json;
use synts_core::OptError;

/// Default per-request connect/read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Retry discipline for idempotent requests (GETs, and keyed submits —
/// the idempotency key is what makes a retried POST safe).
///
/// Backoff is *deterministic* exponential — `base_delay * 2^attempt`
/// capped at `max_delay`, no jitter — so chaos tests replay the exact
/// same schedule every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (>= 1; 1 means no retries).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Socket read/write timeout per attempt.
    pub request_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            request_timeout: IO_TIMEOUT,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt per request).
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `attempt` (zero-based: the delay
    /// *after* attempt 0 failed).
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 2u32.saturating_pow(attempt);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }
}

/// One parsed HTTP reply.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// The status code.
    pub status: u16,
    /// The raw body.
    pub body: String,
}

impl HttpReply {
    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// [`OptError::Spec`] when the body is not valid JSON.
    pub fn json(&self) -> Result<Json, OptError> {
        Json::parse(&self.body)
    }

    /// The service's error message, when the body carries one.
    #[must_use]
    pub fn error_message(&self) -> Option<String> {
        let json = Json::parse(&self.body).ok()?;
        json.get("error").and_then(Json::as_str).map(String::from)
    }
}

/// A client bound to one service address (`host:port`).
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    policy: RetryPolicy,
    /// Deterministic fault plan for the client-side `net.refuse` site.
    faults: Option<Arc<FaultPlan>>,
}

impl Client {
    /// Creates a client for `addr` (e.g. `127.0.0.1:7070`) with the
    /// default [`RetryPolicy`].
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            policy: RetryPolicy::default(),
            faults: None,
        }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Client {
        self.policy = policy;
        self
    }

    /// Arms (or disarms) deterministic connection-fault injection.
    #[must_use]
    pub fn with_faults(mut self, faults: Option<Arc<FaultPlan>>) -> Client {
        self.faults = faults;
        self
    }

    /// The active retry policy.
    #[must_use]
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Issues one request (single attempt) and reads the full reply.
    ///
    /// # Errors
    ///
    /// [`OptError::Spec`] on connection failures, timeouts, or replies
    /// that are not parseable HTTP.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpReply, OptError> {
        self.request_once(method, path, body, 0)
    }

    /// Issues an idempotent request with bounded retries: each transport
    /// failure backs off per the [`RetryPolicy`] and tries again; the
    /// last error surfaces when attempts run out. Only transport errors
    /// retry — an HTTP status (even a 5xx) is a *reply* and is returned.
    ///
    /// # Errors
    ///
    /// The final attempt's transport error.
    pub fn request_idempotent(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpReply, OptError> {
        let mut last = None;
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff(attempt - 1));
            }
            match self.request_once(method, path, body, attempt) {
                Ok(reply) => return Ok(reply),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            OptError::Spec("service client: retry loop ran zero attempts".to_string())
        }))
    }

    fn request_once(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        attempt: u32,
    ) -> Result<HttpReply, OptError> {
        let fail = |what: &str| OptError::Spec(format!("service client: {what} ({})", self.addr));
        if let Some(plan) = &self.faults {
            // The attempt number is in the token, so `~#a0` refuses
            // exactly the first attempt and the retry goes through.
            if plan.should(site::NET_REFUSE, &format!("{method} {path}#a{attempt}")) {
                return Err(fail("connect failed: injected connection refusal"));
            }
        }
        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| fail(&format!("connect failed: {e}")))?;
        stream
            .set_read_timeout(Some(self.policy.request_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.policy.request_timeout)))
            .map_err(|e| fail(&format!("socket setup failed: {e}")))?;
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            payload.len()
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(payload.as_bytes()))
            .map_err(|e| fail(&format!("write failed: {e}")))?;
        let mut raw = String::new();
        stream
            .read_to_string(&mut raw)
            .map_err(|e| fail(&format!("read failed: {e}")))?;
        let (head, reply_body) = raw
            .split_once("\r\n\r\n")
            .ok_or_else(|| fail("reply carries no header/body separator"))?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| fail("reply carries no status code"))?;
        // A dropped connection ends `read_to_string` cleanly (FIN, not
        // an error), so a server dying mid-body would otherwise come
        // back as a short body under a 200. Hold the body to the head's
        // declared length so a torn reply is a transport error the
        // retry loop handles, never a silently truncated success.
        if let Some(declared) = content_length(head) {
            if reply_body.len() < declared {
                return Err(fail(&format!(
                    "reply body truncated: {} of {declared} declared bytes",
                    reply_body.len()
                )));
            }
        }
        Ok(HttpReply {
            status,
            body: reply_body.to_string(),
        })
    }

    /// `GET /v1/healthz` — true when the service answers.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.request_idempotent("GET", "/v1/healthz", None)
            .is_ok_and(|r| r.status == 200)
    }

    /// `POST /v1/jobs` with a spec's JSON text; returns the job id.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`OptError::Spec`] carrying the service's
    /// rejection message.
    pub fn submit(&self, spec_json: &str) -> Result<String, OptError> {
        // Unkeyed: one attempt only — retrying a plain POST could
        // double-enqueue. Use [`Client::submit_idempotent`] for retries.
        parse_submit_reply(&self.request("POST", "/v1/jobs", Some(spec_json))?)
    }

    /// `POST /v1/jobs?key=<key>` with bounded retries: the key makes the
    /// submit idempotent on the server (a replayed POST returns the same
    /// job), which is what makes retrying it safe.
    ///
    /// # Errors
    ///
    /// An invalid key, transport errors after the last retry, or
    /// [`OptError::Spec`] carrying the service's rejection message.
    pub fn submit_idempotent(&self, spec_json: &str, key: &str) -> Result<String, OptError> {
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(OptError::Spec(format!(
                "service client: idempotency key {key:?} must be non-empty [A-Za-z0-9._-]"
            )));
        }
        let path = format!("/v1/jobs?key={key}");
        parse_submit_reply(&self.request_idempotent("POST", &path, Some(spec_json))?)
    }

    /// `GET /v1/jobs/<id>` — the status JSON.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`OptError::Spec`] for unknown ids.
    pub fn status(&self, id: &str) -> Result<Json, OptError> {
        let reply = self.request_idempotent("GET", &format!("/v1/jobs/{id}"), None)?;
        if reply.status != 200 {
            return Err(OptError::Spec(format!(
                "status fetch failed: HTTP {}: {}",
                reply.status,
                reply.error_message().unwrap_or_default()
            )));
        }
        reply.json()
    }

    /// `GET /v1/jobs/<id>/report` — the raw reply (200 report ready,
    /// 202 still pending, 410 failed/cancelled, 404 unknown).
    ///
    /// # Errors
    ///
    /// Transport errors only; HTTP status is the caller's to interpret.
    pub fn fetch_report(&self, id: &str, csv: bool) -> Result<HttpReply, OptError> {
        let path = if csv {
            format!("/v1/jobs/{id}/report?format=csv")
        } else {
            format!("/v1/jobs/{id}/report")
        };
        self.request_idempotent("GET", &path, None)
    }

    /// Polls `GET /v1/jobs/<id>/report` until the job settles, then
    /// returns the report body (JSON or CSV per `csv`). Transport
    /// failures inside the deadline (server restarting, torn replies)
    /// reconnect and keep polling rather than giving up — the deadline,
    /// not the first broken socket, decides when to stop.
    ///
    /// # Errors
    ///
    /// [`OptError::Spec`] when the job fails, is cancelled, or the
    /// deadline elapses first (carrying the last transport error, if
    /// the service never answered).
    pub fn wait_report(&self, id: &str, csv: bool, timeout: Duration) -> Result<String, OptError> {
        let deadline = Instant::now() + timeout;
        let mut last_transport: Option<OptError>;
        loop {
            match self.fetch_report(id, csv) {
                Ok(reply) => match reply.status {
                    200 => return Ok(reply.body),
                    202 => last_transport = None,
                    _ => {
                        return Err(OptError::Spec(format!(
                            "job {id} will not produce a report: HTTP {}: {}",
                            reply.status,
                            reply
                                .json()
                                .ok()
                                .and_then(|j| j
                                    .get("error")
                                    .and_then(Json::as_str)
                                    .map(String::from))
                                .unwrap_or_default()
                        )))
                    }
                },
                Err(e) => last_transport = Some(e),
            }
            if Instant::now() >= deadline {
                let detail = match last_transport {
                    Some(e) => format!(" (last error: {e})"),
                    None => String::new(),
                };
                return Err(OptError::Spec(format!(
                    "timed out waiting for job {id} after {timeout:.0?}{detail}"
                )));
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// `GET /v1/jobs` — every job's status, submission order.
    ///
    /// # Errors
    ///
    /// Transport errors, or non-200 replies.
    pub fn jobs(&self) -> Result<Json, OptError> {
        let reply = self.request_idempotent("GET", "/v1/jobs", None)?;
        if reply.status != 200 {
            return Err(OptError::Spec(format!(
                "job listing failed: HTTP {}",
                reply.status
            )));
        }
        reply.json()
    }

    /// `GET /v1/stats` — the service counters.
    ///
    /// # Errors
    ///
    /// Transport errors, or non-200 replies.
    pub fn stats(&self) -> Result<Json, OptError> {
        let reply = self.request_idempotent("GET", "/v1/stats", None)?;
        if reply.status != 200 {
            return Err(OptError::Spec(format!(
                "stats fetch failed: HTTP {}",
                reply.status
            )));
        }
        reply.json()
    }

    /// `POST /v1/shutdown` with the given mode.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn shutdown(&self, drain: bool) -> Result<(), OptError> {
        let body = if drain {
            r#"{"mode": "drain"}"#
        } else {
            r#"{"mode": "now"}"#
        };
        self.request("POST", "/v1/shutdown", Some(body)).map(|_| ())
    }
}

/// The `Content-Length` a reply head declares, when present and
/// parseable.
fn content_length(head: &str) -> Option<usize> {
    head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if name.eq_ignore_ascii_case("content-length") {
            value.trim().parse().ok()
        } else {
            None
        }
    })
}

/// Extracts the job id from a submit reply (202 + `{"job": ...}`).
fn parse_submit_reply(reply: &HttpReply) -> Result<String, OptError> {
    if reply.status != 202 {
        let msg = reply
            .error_message()
            .unwrap_or_else(|| format!("HTTP {}", reply.status));
        return Err(OptError::Spec(format!("service rejected the spec: {msg}")));
    }
    reply
        .json()?
        .get("job")
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or_else(|| OptError::Spec("service reply names no job id".to_string()))
}
