//! Set-associative cache model with LRU replacement.

/// Geometry and timing of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Extra cycles paid on a miss.
    pub miss_penalty: u64,
}

impl CacheConfig {
    /// A small L1D: 32 KiB, 4-way, 64-byte lines, 18-cycle miss penalty
    /// (L2 hit latency) — Gem5's default Alpha setup, scaled down.
    #[must_use]
    pub fn l1_default() -> CacheConfig {
        CacheConfig {
            sets: 128,
            ways: 4,
            line_bytes: 64,
            miss_penalty: 18,
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; 0 for no accesses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `tags[set]` = (tag, last-use stamp) per way; `u64::MAX` tag = empty.
    tags: Vec<Vec<(u64, u64)>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if sets/line size are not powers of two or ways is zero.
    #[must_use]
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.ways > 0, "cache needs at least one way");
        Cache {
            tags: vec![vec![(u64::MAX, 0); config.ways]; config.sets],
            clock: 0,
            stats: CacheStats::default(),
            config,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses `addr`; returns `true` on hit. Stores allocate like loads
    /// (write-allocate).
    pub fn access(&mut self, addr: u64, _is_store: bool) -> bool {
        self.clock += 1;
        let line = addr / self.config.line_bytes as u64;
        let set = (line as usize) & (self.config.sets - 1);
        let tag = line >> self.config.sets.trailing_zeros();
        let ways = &mut self.tags[set];
        if let Some(way) = ways.iter_mut().find(|(t, _)| *t == tag) {
            way.1 = self.clock;
            self.stats.hits += 1;
            return true;
        }
        // Miss: evict LRU.
        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|(_, stamp)| *stamp)
            .expect("ways > 0");
        *victim = (tag, self.clock);
        false
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.tags {
            for way in set.iter_mut() {
                *way = (u64::MAX, 0);
            }
        }
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::l1_default());
        assert!(!c.access(0x40, false));
        assert!(c.access(0x40, false));
        assert!(c.access(0x41, false), "same line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 sets x 2 ways x 16-byte lines: set 0 holds lines 0, 2, 4...
        let cfg = CacheConfig {
            sets: 2,
            ways: 2,
            line_bytes: 16,
            miss_penalty: 10,
        };
        let mut c = Cache::new(cfg);
        c.access(0, false); // line 0 -> set 0
        c.access(32, false); // line 2 -> set 0
        c.access(0, false); // touch line 0 (line 2 now LRU)
        c.access(64, false); // line 4 -> set 0, evicts line 2
        assert!(c.access(0, false), "line 0 must survive");
        assert!(!c.access(32, false), "line 2 must have been evicted");
    }

    #[test]
    fn sequential_scan_exploits_spatial_locality() {
        let mut c = Cache::new(CacheConfig::l1_default());
        for addr in (0..8192u64).step_by(8) {
            c.access(addr, false);
        }
        // 64-byte lines, 8-byte stride: 1 miss per 8 accesses.
        let rate = c.stats().miss_rate();
        assert!((rate - 0.125).abs() < 0.01, "miss rate {rate}");
    }

    #[test]
    fn reset_clears_state() {
        let mut c = Cache::new(CacheConfig::l1_default());
        c.access(0x40, false);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0x40, false), "cold again after reset");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 64,
            miss_penalty: 1,
        });
    }
}
