//! Trace-driven CPI estimation: turns an instrumented workload's
//! instruction mix and memory reference stream into the `CPI_base` of
//! Eq 4.1.

use crate::cache::{Cache, CacheConfig};

/// A thread's instruction stream summary for one barrier interval.
#[derive(Debug, Clone, Copy)]
pub struct InstrStream<'a> {
    /// Simple-ALU operation count.
    pub alu_ops: u64,
    /// Multiplier operation count.
    pub mul_ops: u64,
    /// Memory references `(byte address, is_store)`, in program order.
    pub mem_refs: &'a [(u64, bool)],
    /// Dynamic branch count.
    pub branches: u64,
}

impl InstrStream<'_> {
    /// Total dynamic instructions.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.alu_ops + self.mul_ops + self.mem_refs.len() as u64 + self.branches
    }
}

/// The stall model of the in-order core (matching [`crate::Core`]).
#[derive(Debug, Clone, Copy)]
pub struct CpiModel {
    /// L1 data-cache geometry and miss penalty.
    pub cache: CacheConfig,
    /// Extra cycles per multiply.
    pub mul_extra: u64,
    /// Fraction of branches that redirect the front end.
    pub taken_rate: f64,
    /// Redirect penalty in cycles.
    pub redirect_penalty: u64,
}

impl CpiModel {
    /// The default model: default L1, 2-cycle multiplier tail, 40% taken
    /// branches, 2-cycle redirect.
    #[must_use]
    pub fn paper_default() -> CpiModel {
        CpiModel {
            cache: CacheConfig::l1_default(),
            mul_extra: 2,
            taken_rate: 0.4,
            redirect_penalty: 2,
        }
    }

    /// Estimates `CPI_base` for a stream: base 1.0 plus cache, multiplier
    /// and branch stalls. The cache is simulated reference by reference.
    ///
    /// Returns 1.0 for an empty stream (no instructions, no stalls).
    #[must_use]
    pub fn cpi(&self, stream: &InstrStream<'_>) -> f64 {
        let instr = stream.instructions();
        if instr == 0 {
            return 1.0;
        }
        let mut cache = Cache::new(self.cache);
        let mut miss_cycles = 0u64;
        for &(addr, is_store) in stream.mem_refs {
            if !cache.access(addr, is_store) {
                miss_cycles += self.cache.miss_penalty;
            }
        }
        let mul_cycles = stream.mul_ops * self.mul_extra;
        let branch_cycles =
            (stream.branches as f64 * self.taken_rate * self.redirect_penalty as f64).round()
                as u64;
        (instr + miss_cycles + mul_cycles + branch_cycles) as f64 / instr as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_alu_stream_has_cpi_one() {
        let model = CpiModel::paper_default();
        let s = InstrStream {
            alu_ops: 1000,
            mul_ops: 0,
            mem_refs: &[],
            branches: 0,
        };
        assert!((model.cpi(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cache_misses_raise_cpi() {
        let model = CpiModel::paper_default();
        // Strided far apart: every reference misses.
        let far: Vec<(u64, bool)> = (0..200).map(|i| (i * 8192, false)).collect();
        // Sequential within lines: mostly hits.
        let near: Vec<(u64, bool)> = (0..200).map(|i| (i * 8, false)).collect();
        let cpi_far = model.cpi(&InstrStream {
            alu_ops: 200,
            mul_ops: 0,
            mem_refs: &far,
            branches: 0,
        });
        let cpi_near = model.cpi(&InstrStream {
            alu_ops: 200,
            mul_ops: 0,
            mem_refs: &near,
            branches: 0,
        });
        assert!(cpi_far > cpi_near + 1.0, "{cpi_far} vs {cpi_near}");
    }

    #[test]
    fn multiplies_and_branches_raise_cpi() {
        let model = CpiModel::paper_default();
        let base = model.cpi(&InstrStream {
            alu_ops: 100,
            mul_ops: 0,
            mem_refs: &[],
            branches: 0,
        });
        let muls = model.cpi(&InstrStream {
            alu_ops: 0,
            mul_ops: 100,
            mem_refs: &[],
            branches: 0,
        });
        let branches = model.cpi(&InstrStream {
            alu_ops: 50,
            mul_ops: 0,
            mem_refs: &[],
            branches: 50,
        });
        assert!(muls > base);
        assert!(branches > base);
    }

    #[test]
    fn empty_stream_is_defined() {
        let model = CpiModel::paper_default();
        let s = InstrStream {
            alu_ops: 0,
            mul_ops: 0,
            mem_refs: &[],
            branches: 0,
        };
        assert_eq!(model.cpi(&s), 1.0);
    }
}
