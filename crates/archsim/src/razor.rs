//! Razor-style execution of a barrier interval: instruction-by-instruction
//! error injection from real sensitized-delay traces, 5-cycle replay per
//! error, per-core voltage/frequency/TSR settings.
//!
//! This is the executable counterpart of the paper's closed-form model:
//! integration tests check that `simulate_barrier` and Eq 4.1–4.3 agree,
//! which is what justifies optimizing on the closed form.

use timing::Voltage;

/// The Razor recovery mechanism of one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RazorCore {
    /// Pipeline flush-and-replay penalty per detected error, in cycles.
    pub c_penalty: u64,
}

impl Default for RazorCore {
    fn default() -> Self {
        RazorCore { c_penalty: 5 }
    }
}

/// One core's operating point for an interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreSetting {
    /// Supply voltage.
    pub voltage: Voltage,
    /// Timing-speculation ratio `r ∈ (0, 1]`.
    pub tsr: f64,
}

/// Per-thread and aggregate results of one simulated barrier interval.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSim {
    /// Cycles consumed per thread (base + replay).
    pub cycles: Vec<f64>,
    /// Detected timing errors per thread.
    pub errors: Vec<u64>,
    /// Wall-clock time per thread (cycles × clock period).
    pub times: Vec<f64>,
    /// Energy per thread (α V² × cycles).
    pub energies: Vec<f64>,
    /// Barrier execution time: the slowest thread (Eq 4.2).
    pub texec: f64,
    /// Total energy (Σ Eq 4.3).
    pub energy: f64,
}

impl IntervalSim {
    /// Observed error probability of a thread.
    #[must_use]
    pub fn error_rate(&self, thread: usize, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.errors[thread] as f64 / instructions as f64
        }
    }
}

/// Executes one barrier interval instruction by instruction.
///
/// * `tnom_v1` — stage nominal period at 1.0 V;
/// * `settings` — per-core operating points;
/// * `traces` — per-thread normalized sensitized delays (one entry per
///   instruction, each in `[0, 1]`);
/// * `cpi_base` — per-thread error-free CPI;
/// * `alpha` — switching-capacitance scalar of Eq 4.3;
/// * `razor` — the recovery mechanism.
///
/// An instruction errs iff its normalized delay exceeds the core's TSR
/// (voltage scaling cancels in the ratio — see [`timing::DelayTrace`]).
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[must_use]
pub fn simulate_barrier(
    tnom_v1: f64,
    settings: &[CoreSetting],
    traces: &[&[f64]],
    cpi_base: &[f64],
    alpha: f64,
    razor: RazorCore,
) -> IntervalSim {
    assert_eq!(settings.len(), traces.len(), "one setting per thread");
    assert_eq!(settings.len(), cpi_base.len(), "one CPI per thread");
    let m = settings.len();
    let mut cycles = Vec::with_capacity(m);
    let mut errors = Vec::with_capacity(m);
    let mut times = Vec::with_capacity(m);
    let mut energies = Vec::with_capacity(m);
    for i in 0..m {
        let s = settings[i];
        let tclk = s.tsr * tnom_v1 * s.voltage.delay_scale();
        let mut cyc = 0.0f64;
        let mut errs = 0u64;
        // Cycle-level walk: every instruction pays its CPI; a sensitized
        // delay beyond the speculative period trips the Razor flip-flop
        // and replays the pipeline.
        for &d in traces[i] {
            cyc += cpi_base[i];
            if d > s.tsr {
                errs += 1;
                cyc += razor.c_penalty as f64;
            }
        }
        let time = tclk * cyc;
        let energy = alpha * s.voltage.energy_scale() * cyc;
        cycles.push(cyc);
        errors.push(errs);
        times.push(time);
        energies.push(energy);
    }
    let texec = times.iter().fold(0.0f64, |a, &b| a.max(b));
    let energy = energies.iter().sum();
    IntervalSim {
        cycles,
        errors,
        times,
        energies,
        texec,
        energy,
    }
}

/// Sleep policy for cores idling at the barrier, the knob distinguishing
/// plain leakage accounting from the thrifty barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepPolicy {
    /// Fraction of leakage power retained while parked at the barrier
    /// (1.0 = no power management, 0.1 ≈ drowsy sleep, 0.0 = perfect
    /// power gating).
    pub idle_retention: f64,
    /// Wake-up latency in nominal-voltage cycles added to the barrier
    /// release when at least one core slept (0 for plain idling).
    pub wake_cycles: f64,
}

impl SleepPolicy {
    /// Plain idling: cores burn full leakage while waiting, wake free.
    #[must_use]
    pub fn none() -> SleepPolicy {
        SleepPolicy {
            idle_retention: 1.0,
            wake_cycles: 0.0,
        }
    }
}

/// [`simulate_barrier`] extended with static power: each core burns
/// `p_leak_v1 · V^gamma` per time unit while busy, scaled by the sleep
/// policy's retention while parked at the barrier — the cycle-accounting
/// counterpart of `synts_core::leakage` / `synts_core::thrifty`, used by
/// the integration tests to certify those closed forms.
///
/// # Panics
///
/// Panics if the slice lengths disagree or `p_leak_v1` is negative.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors simulate_barrier + the leakage triple
pub fn simulate_barrier_with_leakage(
    tnom_v1: f64,
    settings: &[CoreSetting],
    traces: &[&[f64]],
    cpi_base: &[f64],
    alpha: f64,
    razor: RazorCore,
    p_leak_v1: f64,
    gamma: f64,
    sleep: SleepPolicy,
) -> IntervalSim {
    assert!(p_leak_v1 >= 0.0, "leakage power must be non-negative");
    let mut sim = simulate_barrier(tnom_v1, settings, traces, cpi_base, alpha, razor);
    // Dynamic-only barrier time; sleeping stretches it by the wake latency.
    let slept = sim.times.iter().any(|&t| t < sim.texec * (1.0 - 1e-15));
    let wake = if slept && sleep.wake_cycles > 0.0 {
        sleep.wake_cycles * tnom_v1
    } else {
        0.0
    };
    let mut energy = 0.0;
    for (i, s) in settings.iter().enumerate() {
        let p_leak = p_leak_v1 * s.voltage.volts().powf(gamma);
        let idle = (sim.texec - sim.times[i]).max(0.0);
        // Busy leakage + (possibly gated) idle leakage + wake transition.
        sim.energies[i] +=
            p_leak * sim.times[i] + sleep.idle_retention * p_leak * idle + p_leak * wake;
        energy += sim.energies[i];
    }
    sim.texec += wake;
    sim.energy = energy;
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> CoreSetting {
        CoreSetting {
            voltage: Voltage::NOMINAL,
            tsr: 1.0,
        }
    }

    #[test]
    fn no_errors_at_nominal_clock() {
        let trace = [0.3, 0.9, 1.0, 0.5];
        let sim = simulate_barrier(
            100.0,
            &[nominal()],
            &[&trace],
            &[1.0],
            1.0,
            RazorCore::default(),
        );
        assert_eq!(sim.errors[0], 0);
        assert!((sim.texec - 100.0 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn overclocking_injects_errors_and_replay() {
        let trace = [0.3, 0.9, 0.95, 0.5];
        let fast = CoreSetting {
            voltage: Voltage::NOMINAL,
            tsr: 0.8,
        };
        let sim = simulate_barrier(100.0, &[fast], &[&trace], &[1.0], 1.0, RazorCore::default());
        assert_eq!(sim.errors[0], 2, "0.9 and 0.95 exceed r = 0.8");
        // cycles = 4 * 1.0 + 2 * 5.
        assert!((sim.cycles[0] - 14.0).abs() < 1e-12);
        assert!((sim.times[0] - 0.8 * 100.0 * 14.0).abs() < 1e-9);
    }

    #[test]
    fn voltage_scales_time_and_energy() {
        let trace = [0.1, 0.1];
        let low_v = CoreSetting {
            voltage: Voltage::new(0.8).expect("ok"),
            tsr: 1.0,
        };
        let sim = simulate_barrier(
            100.0,
            &[nominal(), low_v],
            &[&trace, &trace],
            &[1.0, 1.0],
            1.0,
            RazorCore::default(),
        );
        // Table 5.1: 0.8 V is 1.39x slower, 0.64x the energy.
        assert!((sim.times[1] / sim.times[0] - 1.39).abs() < 1e-9);
        assert!((sim.energies[1] / sim.energies[0] - 0.64).abs() < 1e-9);
        assert!((sim.texec - sim.times[1]).abs() < 1e-12, "slow core gates");
    }

    #[test]
    fn barrier_takes_max_energy_takes_sum() {
        let t0 = [0.2; 10];
        let t1 = [0.2; 30];
        let sim = simulate_barrier(
            50.0,
            &[nominal(), nominal()],
            &[&t0, &t1],
            &[1.0, 1.0],
            1.0,
            RazorCore::default(),
        );
        assert!((sim.texec - sim.times[1]).abs() < 1e-12);
        assert!((sim.energy - (sim.energies[0] + sim.energies[1])).abs() < 1e-12);
    }

    #[test]
    fn leakage_simulation_reduces_to_dynamic_when_zero() {
        let t0 = [0.2; 10];
        let t1 = [0.2; 30];
        let base = simulate_barrier(
            50.0,
            &[nominal(), nominal()],
            &[&t0, &t1],
            &[1.0, 1.0],
            1.0,
            RazorCore::default(),
        );
        let with = simulate_barrier_with_leakage(
            50.0,
            &[nominal(), nominal()],
            &[&t0, &t1],
            &[1.0, 1.0],
            1.0,
            RazorCore::default(),
            0.0,
            3.0,
            SleepPolicy::none(),
        );
        assert_eq!(base, with);
    }

    #[test]
    fn idle_core_burns_leakage_until_the_barrier() {
        let t0 = [0.2; 10];
        let t1 = [0.2; 30];
        let p_leak = 0.01;
        let sim = simulate_barrier_with_leakage(
            50.0,
            &[nominal(), nominal()],
            &[&t0, &t1],
            &[1.0, 1.0],
            1.0,
            RazorCore::default(),
            p_leak,
            3.0,
            SleepPolicy::none(),
        );
        // Core 0 leaks over the whole barrier (busy + idle at retention 1).
        let dynamic0 = 1.0 * 10.0; // alpha V² cycles
        let expect0 = dynamic0 + p_leak * sim.texec;
        assert!((sim.energies[0] - expect0).abs() < 1e-9);
    }

    #[test]
    fn drowsy_sleep_saves_idle_leakage_but_pays_wake() {
        let t0 = [0.2; 10];
        let t1 = [0.2; 30];
        let run = |sleep: SleepPolicy| {
            simulate_barrier_with_leakage(
                50.0,
                &[nominal(), nominal()],
                &[&t0, &t1],
                &[1.0, 1.0],
                1.0,
                RazorCore::default(),
                0.01,
                3.0,
                sleep,
            )
        };
        let idle = run(SleepPolicy::none());
        let drowsy = run(SleepPolicy {
            idle_retention: 0.1,
            wake_cycles: 0.0,
        });
        let thrifty = run(SleepPolicy {
            idle_retention: 0.1,
            wake_cycles: 100.0,
        });
        assert!(drowsy.energy < idle.energy, "sleep saves energy");
        assert_eq!(drowsy.texec, idle.texec, "free wake keeps the barrier");
        assert!(thrifty.texec > idle.texec, "wake latency stretches it");
    }

    #[test]
    fn balanced_threads_never_pay_wake_latency() {
        let t = [0.2; 10];
        let sim = simulate_barrier_with_leakage(
            50.0,
            &[nominal(), nominal()],
            &[&t, &t],
            &[1.0, 1.0],
            1.0,
            RazorCore::default(),
            0.01,
            3.0,
            SleepPolicy {
                idle_retention: 0.0,
                wake_cycles: 500.0,
            },
        );
        assert!((sim.texec - 50.0 * 10.0).abs() < 1e-9, "nobody slept");
    }

    #[test]
    fn error_rate_helper() {
        let trace = [0.99, 0.1, 0.99, 0.1];
        let fast = CoreSetting {
            voltage: Voltage::NOMINAL,
            tsr: 0.5,
        };
        let sim = simulate_barrier(10.0, &[fast], &[&trace], &[1.0], 1.0, RazorCore::default());
        assert!((sim.error_rate(0, 4) - 0.5).abs() < 1e-12);
        assert_eq!(sim.error_rate(0, 0), 0.0);
    }
}
