//! Program-level multi-core execution with barrier synchronization and
//! per-core DVFS — the Gem5-shaped top of the substrate.
//!
//! Each core runs its own [`Program`] on the mini ISA; `Instr::Barrier`
//! synchronizes all cores. Cores run at independent clock periods
//! (voltage × TSR, as the SynTS controller would set them), so the same
//! cycle counts translate into different wall-clock arrival times — the
//! fast-threads-wait-at-the-barrier picture of the paper's Fig 1.4.

use timing::Voltage;

use crate::core::{Core, CoreStats, ExecError};
use crate::isa::{Instr, Program};
use crate::razor::CoreSetting;

/// Result of one multi-core run.
#[derive(Debug, Clone)]
pub struct MultiCoreRun {
    /// Per-core statistics.
    pub stats: Vec<CoreStats>,
    /// Per-core wall-clock time (cycles × clock period), excluding barrier
    /// wait.
    pub busy_times: Vec<f64>,
    /// Wall-clock time of the whole run: barrier-synchronized makespan.
    pub makespan: f64,
    /// Per-core wall-clock time spent waiting at barriers.
    pub barrier_waits: Vec<f64>,
    /// Number of barrier episodes executed.
    pub barriers: usize,
}

/// A barrier-synchronized group of cores with per-core clock settings.
#[derive(Debug)]
pub struct MultiCore {
    cores: Vec<Core>,
    settings: Vec<CoreSetting>,
    tnom_v1: f64,
}

impl MultiCore {
    /// Creates `n` cores with `mem_words` of private memory each, all at
    /// the nominal operating point of a stage with period `tnom_v1`.
    #[must_use]
    pub fn new(n: usize, mem_words: usize, tnom_v1: f64) -> MultiCore {
        MultiCore {
            cores: (0..n).map(|_| Core::new(mem_words)).collect(),
            settings: vec![
                CoreSetting {
                    voltage: Voltage::NOMINAL,
                    tsr: 1.0,
                };
                n
            ],
            tnom_v1,
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Sets one core's operating point (what the SynTS controller does at
    /// each barrier interval).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_operating_point(&mut self, core: usize, setting: CoreSetting) {
        self.settings[core] = setting;
    }

    /// Clock period of a core at its current operating point.
    #[must_use]
    pub fn clock_period(&self, core: usize) -> f64 {
        let s = self.settings[core];
        s.tsr * self.tnom_v1 * s.voltage.delay_scale()
    }

    /// Runs one program per core to completion, synchronizing at every
    /// `Instr::Barrier`. Every program must contain the same number of
    /// barriers (checked).
    ///
    /// # Errors
    ///
    /// * [`ExecError`] from any core's execution;
    /// * [`ExecError::StepLimit`] if a core exceeds `max_steps` within one
    ///   barrier episode.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != self.cores()` or barrier counts differ
    /// between programs.
    pub fn run(&mut self, programs: &[Program], max_steps: u64) -> Result<MultiCoreRun, ExecError> {
        assert_eq!(programs.len(), self.cores.len(), "one program per core");
        // Split each program into barrier episodes.
        let episodes: Vec<Vec<Program>> = programs.iter().map(split_on_barriers).collect();
        let n_episodes = episodes[0].len();
        for e in &episodes {
            assert_eq!(
                e.len(),
                n_episodes,
                "all programs must cross the same number of barriers"
            );
        }

        let n = self.cores.len();
        let periods: Vec<f64> = (0..n).map(|i| self.clock_period(i)).collect();
        let mut busy = vec![0.0f64; n];
        let mut waits = vec![0.0f64; n];
        let mut makespan = 0.0f64;
        for ep in 0..n_episodes {
            let mut arrive = vec![0.0f64; n];
            for (i, core) in self.cores.iter_mut().enumerate() {
                let before = core.stats().cycles;
                core.run(&episodes[i][ep], max_steps)?;
                let cycles = core.stats().cycles - before;
                let t = cycles as f64 * periods[i];
                busy[i] += t;
                arrive[i] = makespan + t;
            }
            let episode_end = arrive.iter().copied().fold(0.0f64, f64::max);
            for i in 0..n {
                waits[i] += episode_end - arrive[i];
            }
            makespan = episode_end;
        }
        Ok(MultiCoreRun {
            stats: self.cores.iter().map(|c| c.stats().clone()).collect(),
            busy_times: busy,
            makespan,
            barrier_waits: waits,
            barriers: n_episodes.saturating_sub(1),
        })
    }
}

/// Splits a program at its `Barrier` instructions into standalone episode
/// programs (each terminated by `Halt`); branch targets are episode-local,
/// which the mini-ISA's structured loops guarantee.
fn split_on_barriers(p: &Program) -> Vec<Program> {
    let mut episodes: Vec<Program> = Vec::new();
    let mut current = Program::new();
    // Original-index offset of the current episode's first instruction:
    // each finished episode covered (its length - appended Halt) body
    // instructions plus the Barrier itself.
    let mut base = 0usize;
    for instr in &p.instrs {
        match instr {
            Instr::Barrier => {
                base += current.instrs.len() + 1;
                current.push(Instr::Halt);
                episodes.push(std::mem::take(&mut current));
            }
            Instr::Beq { ra, rb, target } => {
                current.push(Instr::Beq {
                    ra: *ra,
                    rb: *rb,
                    target: target.saturating_sub(base),
                });
            }
            Instr::Bne { ra, rb, target } => {
                current.push(Instr::Bne {
                    ra: *ra,
                    rb: *rb,
                    target: target.saturating_sub(base),
                });
            }
            Instr::Jump { target } => {
                current.push(Instr::Jump {
                    target: target.saturating_sub(base),
                });
            }
            other => {
                current.push(*other);
            }
        }
    }
    if !current.instrs.is_empty() || episodes.is_empty() {
        current.push(Instr::Halt);
        episodes.push(current);
    }
    episodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;
    use circuits::AluOp;

    fn work_then_barrier(iters: u16) -> Program {
        let mut p = Program::counted_loop(iters, 2);
        // counted_loop ends with Halt; replace it with Barrier + tail work.
        p.instrs.pop();
        p.push(Instr::Barrier);
        p.push(Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(9),
            ra: Reg::ZERO,
            imm: 7,
        });
        p.push(Instr::Halt);
        p
    }

    #[test]
    fn barrier_makespan_is_gated_by_the_slowest_core() {
        let mut mc = MultiCore::new(2, 4096, 10.0);
        let fast = work_then_barrier(5);
        let slow = work_then_barrier(50);
        let run = mc.run(&[fast, slow], 1_000_000).expect("runs");
        assert_eq!(run.barriers, 1);
        assert!(run.busy_times[1] > run.busy_times[0]);
        assert!(run.makespan >= run.busy_times[1]);
        // The fast core waits, the slow one (critical) barely does.
        assert!(run.barrier_waits[0] > run.barrier_waits[1]);
    }

    #[test]
    fn speeding_up_the_critical_core_shrinks_the_makespan() {
        let fast = work_then_barrier(5);
        let slow = work_then_barrier(50);
        let mut nominal = MultiCore::new(2, 4096, 10.0);
        let base = nominal
            .run(&[fast.clone(), slow.clone()], 1_000_000)
            .expect("runs")
            .makespan;
        let mut tuned = MultiCore::new(2, 4096, 10.0);
        tuned.set_operating_point(
            1,
            CoreSetting {
                voltage: Voltage::NOMINAL,
                tsr: 0.7, // overclock the critical core
            },
        );
        let better = tuned.run(&[fast, slow], 1_000_000).expect("runs").makespan;
        assert!(
            better < base,
            "speculation on the critical core: {better} vs {base}"
        );
    }

    #[test]
    fn slowing_a_non_critical_core_is_free() {
        let fast = work_then_barrier(5);
        let slow = work_then_barrier(50);
        let mut mc = MultiCore::new(2, 4096, 10.0);
        let base = mc
            .run(&[fast.clone(), slow.clone()], 1_000_000)
            .expect("runs")
            .makespan;
        let mut tuned = MultiCore::new(2, 4096, 10.0);
        tuned.set_operating_point(
            0,
            CoreSetting {
                voltage: Voltage::new(0.8).expect("in range"),
                tsr: 1.0,
            },
        );
        let run = tuned.run(&[fast, slow], 1_000_000).expect("runs");
        assert!(
            (run.makespan - base).abs() < base * 0.05,
            "slack absorption must not stretch the barrier: {} vs {base}",
            run.makespan
        );
    }

    #[test]
    fn mismatched_barrier_counts_panic() {
        let a = work_then_barrier(5);
        let mut b = Program::counted_loop(5, 1); // no barrier
        b.instrs.pop();
        b.push(Instr::Halt);
        let mut mc = MultiCore::new(2, 4096, 10.0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = mc.run(&[a, b], 1_000_000);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn programs_without_barriers_still_run() {
        let mut p = Program::new();
        p.push(Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            ra: Reg::ZERO,
            imm: 3,
        });
        p.push(Instr::Halt);
        let mut mc = MultiCore::new(1, 64, 10.0);
        let run = mc.run(&[p], 100).expect("runs");
        assert_eq!(run.barriers, 0);
        assert!(run.makespan > 0.0);
    }
}
