//! A miniature Alpha-flavoured register ISA.
//!
//! Thirty-two 64-bit registers (`r0` hardwired to zero), word-addressed
//! memory, ALU register/immediate forms, loads/stores, conditional
//! branches. Small enough to assemble by hand in tests, real enough that
//! the in-order core's CPI accounting exercises every stall source.

use circuits::AluOp;

/// A register name (`r0`..`r31`); `r0` always reads zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The zero register.
    pub const ZERO: Reg = Reg(0);

    pub(crate) fn index(self) -> usize {
        (self.0 as usize) % 32
    }
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Instr {
    /// `rd = ra <op> rb`
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
    },
    /// `rd = ra <op> imm`
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        ra: Reg,
        /// Immediate operand.
        imm: u16,
    },
    /// `rd = mem[ra + offset]` (word addressing).
    Load {
        /// Destination.
        rd: Reg,
        /// Base register.
        ra: Reg,
        /// Word offset.
        offset: u16,
    },
    /// `mem[ra + offset] = rs`.
    Store {
        /// Source.
        rs: Reg,
        /// Base register.
        ra: Reg,
        /// Word offset.
        offset: u16,
    },
    /// Branch to `target` if `ra == rb`.
    Beq {
        /// First comparand.
        ra: Reg,
        /// Second comparand.
        rb: Reg,
        /// Instruction index to jump to.
        target: usize,
    },
    /// Branch to `target` if `ra != rb`.
    Bne {
        /// First comparand.
        ra: Reg,
        /// Second comparand.
        rb: Reg,
        /// Instruction index to jump to.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Instruction index to jump to.
        target: usize,
    },
    /// Synchronize with all other cores (see `MultiCore::run`); a single
    /// core treats it as a no-op.
    Barrier,
    /// Stop execution.
    Halt,
}

/// An executable instruction sequence.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instructions, executed from index 0.
    pub instrs: Vec<Instr>,
}

impl Program {
    /// An empty program (immediately halts).
    #[must_use]
    pub fn new() -> Program {
        Program { instrs: Vec::new() }
    }

    /// Appends an instruction, builder style.
    pub fn push(&mut self, instr: Instr) -> &mut Program {
        self.instrs.push(instr);
        self
    }

    /// A countdown loop doing `iters` iterations of `body_per_iter`
    /// add/xor pairs plus a load/store — a standard CPI test pattern.
    #[must_use]
    pub fn counted_loop(iters: u16, body_per_iter: usize) -> Program {
        use Instr::*;
        let mut p = Program::new();
        // r1 = iters; r2 = scratch; r3 = memory cursor.
        p.push(AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            ra: Reg::ZERO,
            imm: iters,
        });
        let loop_top = p.instrs.len();
        for k in 0..body_per_iter {
            p.push(AluImm {
                op: AluOp::Add,
                rd: Reg(2),
                ra: Reg(2),
                imm: (k as u16).wrapping_mul(37) | 1,
            });
            p.push(Alu {
                op: AluOp::Xor,
                rd: Reg(4),
                ra: Reg(2),
                rb: Reg(1),
            });
        }
        p.push(Load {
            rd: Reg(5),
            ra: Reg(3),
            offset: 0,
        });
        p.push(Store {
            rs: Reg(4),
            ra: Reg(3),
            offset: 1,
        });
        p.push(AluImm {
            op: AluOp::Add,
            rd: Reg(3),
            ra: Reg(3),
            imm: 16,
        });
        p.push(AluImm {
            op: AluOp::Sub,
            rd: Reg(1),
            ra: Reg(1),
            imm: 1,
        });
        p.push(Bne {
            ra: Reg(1),
            rb: Reg::ZERO,
            target: loop_top,
        });
        p.push(Halt);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_indexing() {
        assert_eq!(Reg(0).index(), 0);
        assert_eq!(Reg(33).index(), 1, "register names wrap");
    }

    #[test]
    fn counted_loop_shape() {
        let p = Program::counted_loop(10, 2);
        assert!(matches!(p.instrs.last(), Some(Instr::Halt)));
        assert!(p.instrs.iter().any(|i| matches!(i, Instr::Load { .. })));
        assert!(p.instrs.iter().any(|i| matches!(i, Instr::Bne { .. })));
    }
}
