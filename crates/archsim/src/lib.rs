//! # archsim — cycle-level multi-core substrate for SynTS
//!
//! The paper's evaluation rests on Gem5 simulating a 4-core Alpha: it needs
//! (a) per-thread CPI structure (pipeline + cache behaviour), (b) barrier
//! semantics, and (c) an execution substrate that injects Razor timing
//! errors and pays the 5-cycle replay. This crate provides all three,
//! at the abstraction the SynTS models consume:
//!
//! * [`Program`] / [`Core`] — a tiny Alpha-flavoured register ISA with a
//!   functional + cycle-counting in-order core, used to validate the CPI
//!   model against real instruction streams;
//! * [`Cache`] — a set-associative L1 data-cache model;
//! * [`CpiModel`] / [`InstrStream`] — trace-driven CPI estimation for the
//!   instrumented workload traces;
//! * [`RazorCore`] / [`simulate_barrier`] — cycle-accounting execution of a
//!   barrier interval under per-core voltage/frequency/TSR settings with
//!   error injection from real sensitized-delay traces. Integration tests
//!   verify it agrees with the paper's closed-form Eq 4.1–4.3.
//!
//! ```
//! use archsim::{Cache, CacheConfig};
//!
//! let mut l1 = Cache::new(CacheConfig::l1_default());
//! assert!(!l1.access(0x1000, false)); // cold miss
//! assert!(l1.access(0x1000, false));  // hit
//! ```
#![forbid(unsafe_code)]

mod cache;
mod core;
mod cpi;
mod isa;
mod multicore;
mod razor;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use core::{Core, CoreStats, ExecError};
pub use cpi::{CpiModel, InstrStream};
pub use isa::{Instr, Program, Reg};
pub use multicore::{MultiCore, MultiCoreRun};
pub use razor::{
    simulate_barrier, simulate_barrier_with_leakage, CoreSetting, IntervalSim, RazorCore,
    SleepPolicy,
};
