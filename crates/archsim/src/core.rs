//! A functional, cycle-counting in-order core for the mini ISA.
//!
//! One instruction per cycle plus stalls: multi-cycle multiplies, L1 miss
//! penalties, taken-branch redirect bubbles — the CPI structure Eq 4.1's
//! `CPI_base` summarizes. The core can also record the [`AluEvent`] stream
//! it executes, closing the loop with the circuit-level characterization
//! (an ISA program is just another workload).

use circuits::{AluEvent, AluOp};

use crate::cache::{Cache, CacheConfig};
use crate::isa::{Instr, Program, Reg};

/// Cycle penalty of a multiply beyond the base cycle.
const MUL_EXTRA_CYCLES: u64 = 2;
/// Redirect bubbles after a taken branch (static not-taken fetch).
const TAKEN_BRANCH_PENALTY: u64 = 2;

/// Execution failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A memory access fell outside the core's data memory.
    MemOutOfBounds {
        /// The offending word address.
        addr: u64,
    },
    /// A branch target fell outside the program.
    PcOutOfRange {
        /// The offending instruction index.
        pc: usize,
    },
    /// The step budget ran out (runaway loop guard).
    StepLimit,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::MemOutOfBounds { addr } => write!(f, "memory access out of bounds: {addr}"),
            ExecError::PcOutOfRange { pc } => write!(f, "branch target out of range: {pc}"),
            ExecError::StepLimit => write!(f, "step limit exhausted"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Run statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreStats {
    /// Retired instructions.
    pub instructions: u64,
    /// Total cycles including stalls.
    pub cycles: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// L1 data misses.
    pub cache_misses: u64,
}

impl CoreStats {
    /// Cycles per instruction; 0 when nothing retired.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

/// The in-order core: 32 registers, word-addressed data memory, an L1
/// cache, and optional event recording.
#[derive(Debug, Clone)]
pub struct Core {
    regs: [u64; 32],
    mem: Vec<u64>,
    cache: Cache,
    stats: CoreStats,
    record: bool,
    events: Vec<AluEvent>,
}

impl Core {
    /// A core with `mem_words` words of data memory and a default L1.
    #[must_use]
    pub fn new(mem_words: usize) -> Core {
        Core {
            regs: [0; 32],
            mem: vec![0; mem_words.max(1)],
            cache: Cache::new(CacheConfig::l1_default()),
            stats: CoreStats::default(),
            record: false,
            events: Vec::new(),
        }
    }

    /// Enables [`AluEvent`] recording (for circuit-level characterization).
    pub fn set_recording(&mut self, on: bool) {
        self.record = on;
    }

    /// The recorded events (empty unless recording was enabled).
    #[must_use]
    pub fn events(&self) -> &[AluEvent] {
        &self.events
    }

    /// Run statistics so far.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Reads a register (r0 is always zero).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.index() == 0 {
            0
        } else {
            self.regs[r.index()]
        }
    }

    fn set_reg(&mut self, r: Reg, v: u64) {
        if r.index() != 0 {
            self.regs[r.index()] = v;
        }
    }

    /// Reads a data-memory word (for test assertions).
    #[must_use]
    pub fn mem_word(&self, addr: u64) -> Option<u64> {
        self.mem.get(addr as usize).copied()
    }

    fn alu(&mut self, op: AluOp, a: u64, b: u64) -> u64 {
        if self.record {
            self.events.push(AluEvent::new(op, a, b));
        }
        self.stats.cycles += 1;
        if op.is_complex() {
            self.stats.cycles += MUL_EXTRA_CYCLES;
        }
        op.eval(a, b, 64)
    }

    fn mem_access(&mut self, addr: u64, is_store: bool) -> Result<(), ExecError> {
        if (addr as usize) >= self.mem.len() {
            return Err(ExecError::MemOutOfBounds { addr });
        }
        self.stats.cycles += 1;
        if !self.cache.access(addr * 8, is_store) {
            self.stats.cycles += self.cache.config().miss_penalty;
            self.stats.cache_misses += 1;
        }
        Ok(())
    }

    /// Executes `program` until `Halt`, an error, or `max_steps` retired
    /// instructions.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run(&mut self, program: &Program, max_steps: u64) -> Result<&CoreStats, ExecError> {
        let mut pc = 0usize;
        let mut steps = 0u64;
        while pc < program.instrs.len() {
            if steps >= max_steps {
                return Err(ExecError::StepLimit);
            }
            steps += 1;
            self.stats.instructions += 1;
            match program.instrs[pc] {
                Instr::Halt => break,
                Instr::Barrier => {
                    // Synchronization is orchestrated by MultiCore; a lone
                    // core pays one cycle and proceeds.
                    self.stats.cycles += 1;
                    pc += 1;
                }
                Instr::Alu { op, rd, ra, rb } => {
                    let v = self.alu(op, self.reg(ra), self.reg(rb));
                    self.set_reg(rd, v);
                    pc += 1;
                }
                Instr::AluImm { op, rd, ra, imm } => {
                    let v = self.alu(op, self.reg(ra), u64::from(imm));
                    self.set_reg(rd, v);
                    pc += 1;
                }
                Instr::Load { rd, ra, offset } => {
                    let addr = self.reg(ra).wrapping_add(u64::from(offset));
                    self.mem_access(addr, false)?;
                    let v = self.mem[addr as usize];
                    self.set_reg(rd, v);
                    pc += 1;
                }
                Instr::Store { rs, ra, offset } => {
                    let addr = self.reg(ra).wrapping_add(u64::from(offset));
                    self.mem_access(addr, true)?;
                    self.mem[addr as usize] = self.reg(rs);
                    pc += 1;
                }
                Instr::Beq { ra, rb, target } | Instr::Bne { ra, rb, target } => {
                    let eq = self.reg(ra) == self.reg(rb);
                    let take = match program.instrs[pc] {
                        Instr::Beq { .. } => eq,
                        _ => !eq,
                    };
                    self.stats.cycles += 1;
                    if take {
                        if target >= program.instrs.len() {
                            return Err(ExecError::PcOutOfRange { pc: target });
                        }
                        self.stats.cycles += TAKEN_BRANCH_PENALTY;
                        self.stats.taken_branches += 1;
                        pc = target;
                    } else {
                        pc += 1;
                    }
                }
                Instr::Jump { target } => {
                    if target >= program.instrs.len() {
                        return Err(ExecError::PcOutOfRange { pc: target });
                    }
                    self.stats.cycles += 1 + TAKEN_BRANCH_PENALTY;
                    self.stats.taken_branches += 1;
                    pc = target;
                }
            }
        }
        Ok(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_executes_correct_count() {
        let mut core = Core::new(4096);
        let p = Program::counted_loop(25, 2);
        let stats = core.run(&p, 100_000).expect("runs").clone();
        // 1 setup + 25 * (2*2 alu + load + store + cursor + decrement +
        // branch) + the retiring Halt.
        assert_eq!(stats.instructions, 1 + 25 * 9 + 1);
        assert_eq!(stats.taken_branches, 24, "last branch falls through");
        assert!(stats.cpi() > 1.0, "stalls must show up in CPI");
    }

    #[test]
    fn alu_semantics_via_registers() {
        use circuits::AluOp;
        use Instr::*;
        let mut p = Program::new();
        p.push(AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            ra: Reg::ZERO,
            imm: 700,
        });
        p.push(AluImm {
            op: AluOp::Mul,
            rd: Reg(2),
            ra: Reg(1),
            imm: 3,
        });
        p.push(Halt);
        let mut core = Core::new(16);
        core.run(&p, 100).expect("runs");
        assert_eq!(core.reg(Reg(2)), 2100);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        use circuits::AluOp;
        let mut p = Program::new();
        p.push(Instr::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            ra: Reg::ZERO,
            imm: 99,
        });
        p.push(Instr::Halt);
        let mut core = Core::new(16);
        core.run(&p, 10).expect("runs");
        assert_eq!(core.reg(Reg::ZERO), 0);
    }

    #[test]
    fn memory_bounds_checked() {
        let mut p = Program::new();
        p.push(Instr::Load {
            rd: Reg(1),
            ra: Reg::ZERO,
            offset: 9999,
        });
        let mut core = Core::new(16);
        assert!(matches!(
            core.run(&p, 10).expect_err("oob"),
            ExecError::MemOutOfBounds { addr: 9999 }
        ));
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut p = Program::new();
        p.push(Instr::Jump { target: 0 });
        let mut core = Core::new(16);
        assert_eq!(core.run(&p, 100).expect_err("loop"), ExecError::StepLimit);
    }

    #[test]
    fn recording_captures_alu_stream() {
        let mut core = Core::new(4096);
        core.set_recording(true);
        let p = Program::counted_loop(5, 3);
        core.run(&p, 10_000).expect("runs");
        assert!(!core.events().is_empty());
        // Events carry real register values, not placeholders.
        assert!(core.events().iter().any(|e| e.a != 0 || e.b != 0));
    }

    #[test]
    fn multiplies_cost_more_cycles() {
        use circuits::AluOp;
        let mut adds = Program::new();
        let mut muls = Program::new();
        for _ in 0..50 {
            adds.push(Instr::AluImm {
                op: AluOp::Add,
                rd: Reg(1),
                ra: Reg(1),
                imm: 1,
            });
            muls.push(Instr::AluImm {
                op: AluOp::Mul,
                rd: Reg(1),
                ra: Reg(1),
                imm: 3,
            });
        }
        adds.push(Instr::Halt);
        muls.push(Instr::Halt);
        let mut c1 = Core::new(16);
        let mut c2 = Core::new(16);
        let s1 = c1.run(&adds, 1000).expect("ok").clone();
        let s2 = c2.run(&muls, 1000).expect("ok").clone();
        assert!(s2.cpi() > s1.cpi());
    }
}
