//! Property tests for the LP/MILP solver: relaxation bounds, feasibility
//! of returned points, binary integrality.

use milp::{Problem, Relation};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomBinary {
    costs: Vec<f64>,
    weights: Vec<f64>,
    budget: f64,
}

fn binary_strategy() -> impl Strategy<Value = RandomBinary> {
    (2usize..5).prop_flat_map(|n| {
        (
            prop::collection::vec(-5.0f64..5.0, n),
            prop::collection::vec(0.1f64..3.0, n),
            0.5f64..6.0,
        )
            .prop_map(|(costs, weights, budget)| RandomBinary {
                costs,
                weights,
                budget,
            })
    })
}

fn build(rb: &RandomBinary) -> Problem {
    let n = rb.costs.len();
    let mut p = Problem::minimize(n);
    for v in 0..n {
        p.set_objective(v, rb.costs[v]);
        p.set_binary(v);
    }
    let coeffs: Vec<(usize, f64)> = rb.weights.iter().copied().enumerate().collect();
    p.constraint(&coeffs, Relation::Le, rb.budget);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lp_relaxation_lower_bounds_the_milp(rb in binary_strategy()) {
        let p = build(&rb);
        let lp = p.solve_lp().expect("all-zero is feasible");
        let milp = p.solve_milp().expect("all-zero is feasible");
        prop_assert!(lp.objective <= milp.objective + 1e-6,
            "LP {} must lower-bound MILP {}", lp.objective, milp.objective);
    }

    #[test]
    fn milp_solution_is_feasible_and_binary(rb in binary_strategy()) {
        let p = build(&rb);
        let sol = p.solve_milp().expect("feasible");
        let mut weight = 0.0;
        for (x, w) in sol.x.iter().zip(&rb.weights) {
            prop_assert!((x.round() - x).abs() < 1e-6, "non-integral {x}");
            prop_assert!(*x > -1e-9 && *x < 1.0 + 1e-9, "out of binary range {x}");
            weight += x * w;
        }
        prop_assert!(weight <= rb.budget + 1e-6, "constraint violated");
    }

    #[test]
    fn milp_matches_brute_force(rb in binary_strategy()) {
        let p = build(&rb);
        let sol = p.solve_milp().expect("feasible");
        let n = rb.costs.len();
        let mut best = f64::INFINITY;
        for bits in 0u32..(1 << n) {
            let xs: Vec<f64> = (0..n).map(|v| f64::from((bits >> v) & 1)).collect();
            let w: f64 = xs.iter().zip(&rb.weights).map(|(x, w)| x * w).sum();
            if w <= rb.budget + 1e-9 {
                let c: f64 = xs.iter().zip(&rb.costs).map(|(x, c)| x * c).sum();
                best = best.min(c);
            }
        }
        prop_assert!((sol.objective - best).abs() < 1e-6,
            "milp {} vs brute {best}", sol.objective);
    }
}
