//! Two-phase dense simplex with Bland's anti-cycling rule.
//!
//! Standard-form transformation: every constraint gets its right-hand side
//! made non-negative, then `≤` rows receive a slack, `≥` rows a surplus plus
//! an artificial, and `=` rows an artificial. Phase 1 minimizes the sum of
//! artificials (feasibility); phase 2 minimizes the true objective with
//! artificial columns barred from entering the basis.

use crate::problem::{Problem, Relation, Solution, SolveError};

const EPS: f64 = 1e-9;
const MAX_ITERS: usize = 50_000;

struct Tableau {
    /// `m × (ncols + 1)` rows; last column is the RHS.
    rows: Vec<Vec<f64>>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Columns barred from entering (artificials in phase 2).
    barred: Vec<bool>,
    ncols: usize,
}

impl Tableau {
    fn rhs(&self, i: usize) -> f64 {
        self.rows[i][self.ncols]
    }

    fn pivot(&mut self, prow: usize, pcol: usize) {
        let scale = self.rows[prow][pcol];
        debug_assert!(scale.abs() > EPS, "pivot on (near-)zero element");
        for v in self.rows[prow].iter_mut() {
            *v /= scale;
        }
        let pivot_row = self.rows[prow].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i == prow {
                continue;
            }
            let factor = row[pcol];
            if factor.abs() > EPS {
                for (v, pr) in row.iter_mut().zip(&pivot_row) {
                    *v -= factor * pr;
                }
            }
        }
        self.basis[prow] = pcol;
    }

    /// Runs simplex iterations on the given cost vector until optimal.
    ///
    /// `costs[j]` is the original cost of column j. Returns the optimal
    /// objective value, or an error.
    fn optimize(&mut self, costs: &[f64]) -> Result<f64, SolveError> {
        for _ in 0..MAX_ITERS {
            // Reduced costs r_j = c_j - c_B · B⁻¹ A_j. The tableau rows are
            // already B⁻¹ A, so r_j = c_j - Σ_i costs[basis_i] * rows[i][j].
            let mut entering: Option<usize> = None;
            for j in 0..self.ncols {
                if self.barred[j] || self.basis.contains(&j) {
                    continue;
                }
                let mut r = costs[j];
                for (i, row) in self.rows.iter().enumerate() {
                    let cb = costs[self.basis[i]];
                    if cb != 0.0 {
                        r -= cb * row[j];
                    }
                }
                if r < -EPS {
                    entering = Some(j); // Bland: first (smallest) index
                    break;
                }
            }
            let Some(q) = entering else {
                // Optimal: objective = c_B · b.
                let obj = self
                    .rows
                    .iter()
                    .enumerate()
                    .map(|(i, _)| costs[self.basis[i]] * self.rhs(i))
                    .sum();
                return Ok(obj);
            };
            // Ratio test (Bland: ties broken by smallest basis variable).
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.rows.len() {
                let a = self.rows[i][q];
                if a > EPS {
                    let ratio = self.rhs(i) / a;
                    match leave {
                        None => leave = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < lr - EPS
                                || (ratio < lr + EPS && self.basis[i] < self.basis[li])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((p, _)) = leave else {
                return Err(SolveError::Unbounded);
            };
            self.pivot(p, q);
        }
        Err(SolveError::PivotLimit { pivots: MAX_ITERS })
    }
}

/// Solves the LP relaxation of `problem`.
pub(crate) fn solve(problem: &Problem) -> Result<Solution, SolveError> {
    let n = problem.n;
    let m = problem.constraints.len();

    // Column layout: [structural n | slack/surplus | artificial].
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for c in &problem.constraints {
        // Normalize to rhs >= 0 first; relation may flip.
        let rel = effective_relation(c.rel, c.rhs);
        match rel {
            Relation::Le => n_slack += 1,
            Relation::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Relation::Eq => n_art += 1,
        }
    }
    let ncols = n + n_slack + n_art;
    let mut rows = vec![vec![0.0; ncols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut is_artificial = vec![false; ncols];

    let mut slack_next = n;
    let mut art_next = n + n_slack;
    for (i, c) in problem.constraints.iter().enumerate() {
        let flip = c.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for &(v, a) in &c.coeffs {
            rows[i][v] += sign * a;
        }
        rows[i][ncols] = sign * c.rhs;
        let rel = effective_relation(c.rel, c.rhs);
        match rel {
            Relation::Le => {
                rows[i][slack_next] = 1.0;
                basis[i] = slack_next;
                slack_next += 1;
            }
            Relation::Ge => {
                rows[i][slack_next] = -1.0;
                slack_next += 1;
                rows[i][art_next] = 1.0;
                is_artificial[art_next] = true;
                basis[i] = art_next;
                art_next += 1;
            }
            Relation::Eq => {
                rows[i][art_next] = 1.0;
                is_artificial[art_next] = true;
                basis[i] = art_next;
                art_next += 1;
            }
        }
    }

    let mut t = Tableau {
        rows,
        basis,
        barred: vec![false; ncols],
        ncols,
    };

    // Phase 1: minimize the sum of artificials.
    if n_art > 0 {
        let phase1_costs: Vec<f64> = (0..ncols)
            .map(|j| if is_artificial[j] { 1.0 } else { 0.0 })
            .collect();
        let w = t.optimize(&phase1_costs)?;
        if w > 1e-7 {
            return Err(SolveError::Infeasible);
        }
        // Drive any artificial still in the basis out (degenerate rows).
        for i in 0..t.rows.len() {
            if is_artificial[t.basis[i]] {
                if let Some(j) = (0..ncols).find(|&j| !is_artificial[j] && t.rows[i][j].abs() > EPS)
                {
                    t.pivot(i, j);
                }
                // If no pivot exists the row is redundant (all-zero); the
                // artificial stays basic at value 0, which is harmless once
                // artificial columns are barred below.
            }
        }
        for j in 0..ncols {
            if is_artificial[j] {
                t.barred[j] = true;
            }
        }
    }

    // Phase 2: true objective (zero cost on slack/artificial columns).
    let mut costs = vec![0.0; ncols];
    costs[..n].copy_from_slice(&problem.objective);
    let objective = t.optimize(&costs)?;

    let mut x = vec![0.0; n];
    for (i, &b) in t.basis.iter().enumerate() {
        if b < n {
            x[b] = t.rhs(i);
        }
    }
    Ok(Solution { x, objective })
}

fn effective_relation(rel: Relation, rhs: f64) -> Relation {
    if rhs >= 0.0 {
        rel
    } else {
        match rel {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Problem, Relation, SolveError};

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => (2, 6), 36.
        let mut p = Problem::minimize(2);
        p.set_objective(0, -3.0);
        p.set_objective(1, -5.0);
        p.constraint(&[(0, 1.0)], Relation::Le, 4.0);
        p.constraint(&[(1, 2.0)], Relation::Le, 12.0);
        p.constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let s = p.solve_lp().expect("feasible");
        assert!((s.objective + 36.0).abs() < 1e-9);
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        assert!((s.x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y s.t. x + y = 10, x >= 3 => any split works, obj 10.
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 1.0);
        p.constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 10.0);
        p.constraint(&[(0, 1.0)], Relation::Ge, 3.0);
        let s = p.solve_lp().expect("feasible");
        assert!((s.objective - 10.0).abs() < 1e-9);
        assert!(s.x[0] >= 3.0 - 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::minimize(1);
        p.constraint(&[(0, 1.0)], Relation::Le, 1.0);
        p.constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        assert_eq!(
            p.solve_lp().expect_err("infeasible"),
            SolveError::Infeasible
        );
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::minimize(1);
        p.set_objective(0, -1.0); // minimize -x with x unconstrained above
        assert_eq!(p.solve_lp().expect_err("unbounded"), SolveError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y <= -2 with min x: y must exceed x by 2; x can be 0.
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 0.1);
        p.constraint(&[(0, 1.0), (1, -1.0)], Relation::Le, -2.0);
        let s = p.solve_lp().expect("feasible");
        assert!(s.x[1] - s.x[0] >= 2.0 - 1e-9);
        assert!((s.objective - 0.2).abs() < 1e-9);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the optimum.
        let mut p = Problem::minimize(2);
        p.set_objective(0, -1.0);
        p.set_objective(1, -1.0);
        for _ in 0..4 {
            p.constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 1.0);
        }
        p.constraint(&[(0, 1.0)], Relation::Le, 1.0);
        let s = p.solve_lp().expect("feasible");
        assert!((s.objective + 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_constraint_problem() {
        // min x with no constraints: x = 0.
        let mut p = Problem::minimize(1);
        p.set_objective(0, 1.0);
        let s = p.solve_lp().expect("feasible");
        assert_eq!(s.objective, 0.0);
    }
}
