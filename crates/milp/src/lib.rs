//! # milp — a small dense LP/MILP solver
//!
//! The SynTS paper reduces its joint voltage/frequency/speculation
//! assignment to a mixed-integer linear program, SynTS-MILP (Sec 4.2.1,
//! Eq 4.5–4.10), and hands it to "a standard MILP solver". No such solver is
//! available offline, so this crate supplies one: a textbook two-phase
//! simplex over a dense tableau with Bland's anti-cycling rule, wrapped in a
//! depth-first branch-and-bound for integer variables.
//!
//! It is deliberately small — SynTS-MILP has `M·Q·S + 1` variables
//! (169 for the paper's configuration) — and exact: solutions are validated
//! against exhaustive enumeration and against the paper's polynomial
//! algorithm in the `synts-core` test-suite.
//!
//! ```
//! use milp::{Problem, Relation};
//!
//! # fn main() -> Result<(), milp::SolveError> {
//! // maximize x + y  s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0
//! // (as minimization of -(x + y))
//! let mut p = Problem::minimize(2);
//! p.set_objective(0, -1.0);
//! p.set_objective(1, -1.0);
//! p.constraint(&[(0, 1.0), (1, 2.0)], Relation::Le, 4.0);
//! p.constraint(&[(0, 3.0), (1, 1.0)], Relation::Le, 6.0);
//! let sol = p.solve_lp()?;
//! assert!((sol.objective - (-2.8)).abs() < 1e-9); // x=1.6, y=1.2
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

mod bb;
mod problem;
mod simplex;

pub use bb::DEFAULT_NODE_LIMIT;
pub use problem::{MilpOptions, Problem, Relation, Solution, SolveError};
