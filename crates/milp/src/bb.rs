//! Branch-and-bound over the simplex relaxation.
//!
//! The default configuration ([`MilpOptions::default`]) reproduces the
//! classic cold solve: depth-first, no incumbent, 100 K-node budget. The
//! θ-sweep hot path in `synts-core` instead *warm-starts* the search
//! ([`MilpOptions::incumbent`]): a known feasible solution seeds the
//! incumbent, so its objective bounds the tree from the first node and
//! subtrees whose relaxation cannot beat it are pruned before they are
//! ever expanded. Combined with best-first node ordering
//! ([`MilpOptions::best_first`]) a tight seed collapses the search to a
//! handful of nodes — the seed is returned verbatim unless the tree
//! proves something strictly better exists.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::problem::{MilpOptions, Problem, Relation, Solution, SolveError};

const INT_TOL: f64 = 1e-6;

/// Default branch-and-bound node budget.
pub const DEFAULT_NODE_LIMIT: usize = 100_000;

/// Solves `problem` to integral optimality with the default options.
pub(crate) fn solve(problem: &Problem) -> Result<Solution, SolveError> {
    solve_with(problem, &MilpOptions::default())
}

/// One open node: the subproblem, the LP bound inherited from its
/// parent's relaxation (a valid lower bound on every solution in the
/// subtree; the root starts unbounded), and a push sequence number for
/// deterministic tie-breaking.
struct Node {
    bound: f64,
    seq: u64,
    problem: Problem,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    /// Max-heap priority: the next node to pop is the one with the
    /// *smallest* lower bound, ties to the most recently pushed
    /// (largest `seq`) — deterministic and DFS-like among equals.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .bound
            .total_cmp(&self.bound)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The open-node container: a LIFO stack for depth-first search, a
/// binary heap (O(log n) push/pop) for best-first.
enum OpenList {
    Dfs(Vec<Node>),
    BestFirst(BinaryHeap<Node>),
}

impl OpenList {
    fn new(best_first: bool, root: Node) -> OpenList {
        if best_first {
            OpenList::BestFirst(BinaryHeap::from([root]))
        } else {
            OpenList::Dfs(vec![root])
        }
    }

    fn push(&mut self, node: Node) {
        match self {
            OpenList::Dfs(stack) => stack.push(node),
            OpenList::BestFirst(heap) => heap.push(node),
        }
    }

    fn pop(&mut self) -> Option<Node> {
        match self {
            OpenList::Dfs(stack) => stack.pop(),
            OpenList::BestFirst(heap) => heap.pop(),
        }
    }
}

/// Solves `problem` to integral optimality under explicit [`MilpOptions`].
pub(crate) fn solve_with(problem: &Problem, options: &MilpOptions) -> Result<Solution, SolveError> {
    // Fast path: nothing integral.
    if !problem.integer.iter().any(|&b| b) {
        return problem.solve_lp();
    }
    // The incumbent is trusted feasible (the caller derived it from a
    // companion solver or a previous solve); it is only ever *replaced*
    // by something strictly better, so a suboptimal seed cannot worsen
    // the result — it just prunes less.
    let mut best: Option<Solution> = options.incumbent.clone();
    let mut open = OpenList::new(
        options.best_first,
        Node {
            bound: f64::NEG_INFINITY,
            seq: 0,
            problem: problem.clone(),
        },
    );
    let mut seq = 0u64;
    let node_limit = options.effective_node_limit();
    let mut nodes = 0usize;

    while let Some(node) = open.pop() {
        nodes += 1;
        if nodes > node_limit {
            return Err(SolveError::IterationLimit { nodes });
        }
        // Bound from the parent relaxation: prune without solving the LP.
        if let Some(ref inc) = best {
            if node.bound >= inc.objective - 1e-9 {
                continue;
            }
        }
        let relaxed = match node.problem.solve_lp() {
            Ok(s) => s,
            Err(SolveError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        // Bound: prune if the relaxation can't beat the incumbent.
        if let Some(ref inc) = best {
            if relaxed.objective >= inc.objective - 1e-9 {
                continue;
            }
        }
        // Find the most fractional integer variable.
        let mut branch: Option<(usize, f64)> = None;
        for (v, &is_int) in problem.integer.iter().enumerate() {
            if !is_int {
                continue;
            }
            let val = relaxed.x[v];
            let frac = (val - val.round()).abs();
            if frac > INT_TOL {
                let dist_to_half = (val.fract() - 0.5).abs();
                match branch {
                    None => branch = Some((v, dist_to_half)),
                    Some((_, d)) if dist_to_half < d => branch = Some((v, dist_to_half)),
                    _ => {}
                }
            }
        }
        match branch {
            None => {
                // Integral: new incumbent (rounded clean).
                let mut x = relaxed.x.clone();
                for (v, &is_int) in problem.integer.iter().enumerate() {
                    if is_int {
                        x[v] = x[v].round();
                    }
                }
                best = Some(Solution {
                    objective: relaxed.objective,
                    x,
                });
            }
            Some((v, _)) => {
                let val = relaxed.x[v];
                let floor = val.floor();
                // Down branch: x_v <= floor.
                let mut down = node.problem.clone();
                down.constraint(&[(v, 1.0)], Relation::Le, floor);
                // Up branch: x_v >= floor + 1.
                let mut up = node.problem;
                up.constraint(&[(v, 1.0)], Relation::Ge, floor + 1.0);
                seq += 1;
                open.push(Node {
                    bound: relaxed.objective,
                    seq,
                    problem: down,
                });
                seq += 1;
                open.push(Node {
                    bound: relaxed.objective,
                    seq,
                    problem: up,
                });
            }
        }
    }
    // No integral point anywhere in the tree means integral-infeasible.
    best.ok_or(SolveError::Infeasible)
}

#[cfg(test)]
mod tests {
    use crate::{MilpOptions, Problem, Relation, Solution, SolveError};

    #[test]
    fn knapsack_0_1() {
        // max 10a + 13b + 7c, weight 3a + 4b + 2c <= 6 => a + c? values:
        // a+b w=7 no; a+c w=5 val=17; b+c w=6 val=20 -> best b+c.
        let mut p = Problem::minimize(3);
        p.set_objective(0, -10.0);
        p.set_objective(1, -13.0);
        p.set_objective(2, -7.0);
        p.constraint(&[(0, 3.0), (1, 4.0), (2, 2.0)], Relation::Le, 6.0);
        for v in 0..3 {
            p.set_binary(v);
        }
        let s = p.solve_milp().expect("feasible");
        assert!((s.objective + 20.0).abs() < 1e-6);
        assert!(s.x[0].abs() < 1e-6);
        assert!((s.x[1] - 1.0).abs() < 1e-6);
        assert!((s.x[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn integer_rounding_matters() {
        // LP optimum is fractional; ILP must settle for less.
        // max x + y s.t. 2x + 2y <= 3, x, y binary -> LP 1.5, ILP 1.
        let mut p = Problem::minimize(2);
        p.set_objective(0, -1.0);
        p.set_objective(1, -1.0);
        p.constraint(&[(0, 2.0), (1, 2.0)], Relation::Le, 3.0);
        p.set_binary(0);
        p.set_binary(1);
        let lp = p.solve_lp().expect("lp");
        assert!((lp.objective + 1.5).abs() < 1e-9);
        let ilp = p.solve_milp().expect("ilp");
        assert!((ilp.objective + 1.0).abs() < 1e-6);
    }

    #[test]
    fn assignment_problem() {
        // 2 workers x 2 tasks, costs [[1, 10], [10, 2]]; best = 3.
        // x_ij binary, each worker one task, each task one worker.
        let mut p = Problem::minimize(4); // x00 x01 x10 x11
        let costs = [1.0, 10.0, 10.0, 2.0];
        for (v, &c) in costs.iter().enumerate() {
            p.set_objective(v, c);
            p.set_binary(v);
        }
        p.constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0);
        p.constraint(&[(2, 1.0), (3, 1.0)], Relation::Eq, 1.0);
        p.constraint(&[(0, 1.0), (2, 1.0)], Relation::Eq, 1.0);
        p.constraint(&[(1, 1.0), (3, 1.0)], Relation::Eq, 1.0);
        let s = p.solve_milp().expect("feasible");
        assert!((s.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integer_problem() {
        // 2x = 1 with x integer.
        let mut p = Problem::minimize(1);
        p.set_integer(0);
        p.constraint(&[(0, 2.0)], Relation::Eq, 1.0);
        assert_eq!(
            p.solve_milp().expect_err("no integral point"),
            SolveError::Infeasible
        );
    }

    #[test]
    fn continuous_passthrough() {
        let mut p = Problem::minimize(1);
        p.set_objective(0, 1.0);
        p.constraint(&[(0, 1.0)], Relation::Ge, 0.5);
        let s = p.solve_milp().expect("feasible");
        assert!(
            (s.x[0] - 0.5).abs() < 1e-9,
            "no integers declared: LP result"
        );
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // min 2i + c s.t. i + c >= 2.5, i integer, c <= 0.4
        // -> c = 0.4, i = ceil(2.1) ... i >= 2.1 -> i = 3? obj 6.4;
        //    i = 2, c = 0.5 violates c <= 0.4; so i = 3, c = 0 is 6.0. Check:
        //    i=3, c=0 satisfies 3 >= 2.5. obj = 6.0 < 6.4. Optimal: 6.0.
        let mut p = Problem::minimize(2);
        p.set_objective(0, 2.0);
        p.set_objective(1, 1.0);
        p.constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 2.5);
        p.constraint(&[(1, 1.0)], Relation::Le, 0.4);
        p.set_integer(0);
        let s = p.solve_milp().expect("feasible");
        assert!((s.objective - 6.0).abs() < 1e-6, "got {}", s.objective);
        assert!((s.x[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn random_binary_problems_match_exhaustive() {
        // 4 binary vars, random objective and one random <= constraint;
        // brute force all 16 assignments.
        let mut state = 0x5bd1e995u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // [-1, 1)
        };
        for case in 0..40 {
            let c: Vec<f64> = (0..4).map(|_| next()).collect();
            let a: Vec<f64> = (0..4).map(|_| next().abs()).collect();
            let b = next().abs() * 2.0;
            let mut p = Problem::minimize(4);
            for v in 0..4 {
                p.set_objective(v, c[v]);
                p.set_binary(v);
            }
            let coeffs: Vec<(usize, f64)> = a.iter().cloned().enumerate().collect();
            p.constraint(&coeffs, crate::Relation::Le, b);
            let milp = p.solve_milp().expect("binary feasible: all-zero works");
            // Brute force.
            let mut best = f64::INFINITY;
            for bits in 0..16u32 {
                let xs: Vec<f64> = (0..4).map(|v| f64::from((bits >> v) & 1)).collect();
                let weight: f64 = xs.iter().zip(&a).map(|(x, w)| x * w).sum();
                if weight <= b + 1e-9 {
                    let obj: f64 = xs.iter().zip(&c).map(|(x, cc)| x * cc).sum();
                    best = best.min(obj);
                }
            }
            assert!(
                (milp.objective - best).abs() < 1e-6,
                "case {case}: milp {} vs brute {best}",
                milp.objective
            );
            // Best-first ordering finds the same optimum.
            let bf = p
                .solve_milp_with(&MilpOptions {
                    best_first: true,
                    ..MilpOptions::default()
                })
                .expect("feasible");
            assert!(
                (bf.objective - best).abs() < 1e-6,
                "case {case}: best-first {} vs brute {best}",
                bf.objective
            );
        }
    }

    /// An optimal incumbent is returned verbatim: nothing in the tree can
    /// beat it, so the warm start short-circuits the whole search.
    #[test]
    fn optimal_incumbent_survives_and_is_returned() {
        let mut p = Problem::minimize(3);
        p.set_objective(0, -10.0);
        p.set_objective(1, -13.0);
        p.set_objective(2, -7.0);
        p.constraint(&[(0, 3.0), (1, 4.0), (2, 2.0)], Relation::Le, 6.0);
        for v in 0..3 {
            p.set_binary(v);
        }
        let seed = Solution {
            x: vec![0.0, 1.0, 1.0],
            objective: -20.0,
        };
        let s = p
            .solve_milp_with(&MilpOptions {
                incumbent: Some(seed.clone()),
                best_first: true,
                ..MilpOptions::default()
            })
            .expect("feasible");
        assert_eq!(s, seed, "nothing beats the optimum: the seed comes back");
    }

    /// A deliberately suboptimal incumbent is *replaced*, not returned: the
    /// warm start is an upper bound, never a blindfold.
    #[test]
    fn suboptimal_incumbent_is_improved() {
        let mut p = Problem::minimize(3);
        p.set_objective(0, -10.0);
        p.set_objective(1, -13.0);
        p.set_objective(2, -7.0);
        p.constraint(&[(0, 3.0), (1, 4.0), (2, 2.0)], Relation::Le, 6.0);
        for v in 0..3 {
            p.set_binary(v);
        }
        // a + c: weight 5, value 17 — feasible but not optimal.
        let seed = Solution {
            x: vec![1.0, 0.0, 1.0],
            objective: -17.0,
        };
        let s = p
            .solve_milp_with(&MilpOptions {
                incumbent: Some(seed),
                ..MilpOptions::default()
            })
            .expect("feasible");
        assert!((s.objective + 20.0).abs() < 1e-6, "got {}", s.objective);
    }

    /// The node budget is enforced and the error reports how many nodes
    /// were actually explored before giving up.
    #[test]
    fn node_limit_reports_nodes_explored() {
        let mut p = Problem::minimize(2);
        p.set_objective(0, -1.0);
        p.set_objective(1, -1.0);
        p.constraint(&[(0, 2.0), (1, 2.0)], Relation::Le, 3.0);
        p.set_binary(0);
        p.set_binary(1);
        let err = p
            .solve_milp_with(&MilpOptions::default().with_node_limit(0))
            .expect_err("zero budget");
        assert_eq!(err, SolveError::IterationLimit { nodes: 1 });
        let msg = err.to_string();
        assert!(msg.contains('1'), "nodes surface in the message: {msg}");
    }
}
