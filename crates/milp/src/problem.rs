//! Problem construction API and solver entry points.

use std::error::Error;
use std::fmt;

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub(crate) coeffs: Vec<(usize, f64)>,
    pub(crate) rel: Relation,
    pub(crate) rhs: f64,
}

/// Why a solve failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The simplex or branch-and-bound iteration budget was exhausted.
    IterationLimit,
    /// A constraint referenced a variable index outside the problem.
    BadVariable(usize),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::IterationLimit => write!(f, "iteration limit exhausted"),
            SolveError::BadVariable(i) => write!(f, "unknown variable index {i}"),
        }
    }
}

impl Error for SolveError {}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Values of the structural variables.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
}

/// A linear program / mixed-integer linear program in minimization form:
/// `min c·x` subject to linear constraints and `x ≥ 0`.
///
/// Mark variables integral with [`Problem::set_integer`] and solve with
/// [`Problem::solve_milp`]; leave all continuous and use
/// [`Problem::solve_lp`].
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) n: usize,
    pub(crate) objective: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) integer: Vec<bool>,
}

impl Problem {
    /// A minimization problem over `n` non-negative variables with an
    /// all-zero objective (set coefficients with [`Problem::set_objective`]).
    #[must_use]
    pub fn minimize(n: usize) -> Problem {
        Problem {
            n,
            objective: vec![0.0; n],
            constraints: Vec::new(),
            integer: vec![false; n],
        }
    }

    /// Number of structural variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints added so far.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        assert!(var < self.n, "variable {var} out of range");
        self.objective[var] = coeff;
    }

    /// Adds the constraint `Σ coeffs ⟨rel⟩ rhs`.
    ///
    /// Duplicate variable entries are summed.
    ///
    /// # Panics
    ///
    /// Panics if any variable index is out of range.
    pub fn constraint(&mut self, coeffs: &[(usize, f64)], rel: Relation, rhs: f64) {
        for &(v, _) in coeffs {
            assert!(v < self.n, "variable {v} out of range");
        }
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            rel,
            rhs,
        });
    }

    /// Declares variable `var` integer-valued (for [`Problem::solve_milp`]).
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_integer(&mut self, var: usize) {
        assert!(var < self.n, "variable {var} out of range");
        self.integer[var] = true;
    }

    /// Declares variable `var` binary: integer with `var ≤ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_binary(&mut self, var: usize) {
        self.set_integer(var);
        self.constraints.push(Constraint {
            coeffs: vec![(var, 1.0)],
            rel: Relation::Le,
            rhs: 1.0,
        });
    }

    /// Solves the continuous relaxation with two-phase simplex.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`], [`SolveError::Unbounded`] or
    /// [`SolveError::IterationLimit`].
    pub fn solve_lp(&self) -> Result<Solution, SolveError> {
        crate::simplex::solve(self)
    }

    /// Solves the problem respecting integrality via branch-and-bound.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if no integral feasible point exists,
    /// [`SolveError::Unbounded`] if the relaxation is unbounded, or
    /// [`SolveError::IterationLimit`] if the node budget is exhausted.
    pub fn solve_milp(&self) -> Result<Solution, SolveError> {
        crate::bb::solve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validation_panics_on_bad_var() {
        let mut p = Problem::minimize(2);
        p.set_objective(1, 1.0);
        let result = std::panic::catch_unwind(move || {
            p.set_objective(5, 1.0);
        });
        assert!(result.is_err());
    }

    #[test]
    fn counts() {
        let mut p = Problem::minimize(3);
        p.constraint(&[(0, 1.0)], Relation::Le, 1.0);
        assert_eq!(p.num_vars(), 3);
        assert_eq!(p.num_constraints(), 1);
    }

    #[test]
    fn error_display() {
        assert_eq!(SolveError::Infeasible.to_string(), "problem is infeasible");
    }
}
