//! Problem construction API and solver entry points.

use std::error::Error;
use std::fmt;

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub(crate) coeffs: Vec<(usize, f64)>,
    pub(crate) rel: Relation,
    pub(crate) rhs: f64,
}

/// Why a solve failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The branch-and-bound node budget was exhausted after exploring
    /// `nodes` nodes — the count tells the caller how far the search got
    /// before giving up, so a budget ([`MilpOptions::node_limit`]) can
    /// be sized from evidence.
    IterationLimit {
        /// Branch-and-bound nodes explored.
        nodes: usize,
    },
    /// One LP solve exhausted the simplex pivot budget — a numerical
    /// conditioning problem (e.g. an enormous objective coefficient),
    /// *not* a tree-size problem: raising
    /// [`MilpOptions::node_limit`] will not help.
    PivotLimit {
        /// Simplex pivots performed before giving up.
        pivots: usize,
    },
    /// A constraint referenced a variable index outside the problem.
    BadVariable(usize),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::IterationLimit { nodes } => {
                write!(f, "iteration limit exhausted after {nodes} nodes")
            }
            SolveError::PivotLimit { pivots } => {
                write!(f, "simplex pivot limit exhausted after {pivots} pivots")
            }
            SolveError::BadVariable(i) => write!(f, "unknown variable index {i}"),
        }
    }
}

impl Error for SolveError {}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Values of the structural variables.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
}

/// Tuning for [`Problem::solve_milp_with`]: warm start, node budget and
/// exploration order.
///
/// [`MilpOptions::default`] reproduces [`Problem::solve_milp`] exactly
/// (cold depth-first search, 100 K-node budget).
#[derive(Debug, Clone, Default)]
pub struct MilpOptions {
    /// A known feasible solution used as the initial incumbent. Its
    /// objective bounds the branch-and-bound tree from the very first
    /// node, so subtrees that cannot beat it are pruned without being
    /// expanded. The seed is trusted feasible (callers derive it from a
    /// previous solve or a companion exact solver) and is returned
    /// unchanged unless the search finds something strictly better —
    /// a suboptimal seed can only cost pruning power, never optimality.
    pub incumbent: Option<Solution>,
    /// Maximum branch-and-bound nodes to explore before giving up with
    /// [`SolveError::IterationLimit`]; `None` means the built-in budget
    /// ([`crate::DEFAULT_NODE_LIMIT`]).
    pub node_limit: Option<usize>,
    /// Pop the open node with the smallest LP lower bound first instead
    /// of depth-first. With a tight incumbent this prunes most of the
    /// tree immediately; without one it trades stack discipline for
    /// earlier bound improvements.
    pub best_first: bool,
}

impl MilpOptions {
    /// This configuration with an explicit node budget.
    #[must_use]
    pub fn with_node_limit(mut self, node_limit: usize) -> MilpOptions {
        self.node_limit = Some(node_limit);
        self
    }

    /// The effective node budget (`node_limit`, or the crate default
    /// when unset).
    #[must_use]
    pub fn effective_node_limit(&self) -> usize {
        self.node_limit.unwrap_or(crate::DEFAULT_NODE_LIMIT)
    }
}

/// A linear program / mixed-integer linear program in minimization form:
/// `min c·x` subject to linear constraints and `x ≥ 0`.
///
/// Mark variables integral with [`Problem::set_integer`] and solve with
/// [`Problem::solve_milp`]; leave all continuous and use
/// [`Problem::solve_lp`].
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) n: usize,
    pub(crate) objective: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) integer: Vec<bool>,
}

impl Problem {
    /// A minimization problem over `n` non-negative variables with an
    /// all-zero objective (set coefficients with [`Problem::set_objective`]).
    #[must_use]
    pub fn minimize(n: usize) -> Problem {
        Problem {
            n,
            objective: vec![0.0; n],
            constraints: Vec::new(),
            integer: vec![false; n],
        }
    }

    /// Number of structural variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints added so far.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        assert!(var < self.n, "variable {var} out of range");
        self.objective[var] = coeff;
    }

    /// Adds the constraint `Σ coeffs ⟨rel⟩ rhs`.
    ///
    /// Duplicate variable entries are summed.
    ///
    /// # Panics
    ///
    /// Panics if any variable index is out of range.
    pub fn constraint(&mut self, coeffs: &[(usize, f64)], rel: Relation, rhs: f64) {
        for &(v, _) in coeffs {
            assert!(v < self.n, "variable {v} out of range");
        }
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            rel,
            rhs,
        });
    }

    /// Declares variable `var` integer-valued (for [`Problem::solve_milp`]).
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_integer(&mut self, var: usize) {
        assert!(var < self.n, "variable {var} out of range");
        self.integer[var] = true;
    }

    /// Declares variable `var` binary: integer with `var ≤ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_binary(&mut self, var: usize) {
        self.set_integer(var);
        self.constraints.push(Constraint {
            coeffs: vec![(var, 1.0)],
            rel: Relation::Le,
            rhs: 1.0,
        });
    }

    /// Solves the continuous relaxation with two-phase simplex.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`], [`SolveError::Unbounded`] or
    /// [`SolveError::IterationLimit`].
    pub fn solve_lp(&self) -> Result<Solution, SolveError> {
        crate::simplex::solve(self)
    }

    /// Solves the problem respecting integrality via branch-and-bound.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if no integral feasible point exists,
    /// [`SolveError::Unbounded`] if the relaxation is unbounded, or
    /// [`SolveError::IterationLimit`] if the node budget is exhausted.
    pub fn solve_milp(&self) -> Result<Solution, SolveError> {
        crate::bb::solve(self)
    }

    /// [`Problem::solve_milp`] under explicit [`MilpOptions`]: an
    /// optional warm-start incumbent, a configurable node budget, and
    /// best-first node ordering.
    ///
    /// # Errors
    ///
    /// As [`Problem::solve_milp`]; [`SolveError::IterationLimit`] reports
    /// the nodes explored when the budget runs out.
    pub fn solve_milp_with(&self, options: &MilpOptions) -> Result<Solution, SolveError> {
        crate::bb::solve_with(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validation_panics_on_bad_var() {
        let mut p = Problem::minimize(2);
        p.set_objective(1, 1.0);
        let result = std::panic::catch_unwind(move || {
            p.set_objective(5, 1.0);
        });
        assert!(result.is_err());
    }

    #[test]
    fn counts() {
        let mut p = Problem::minimize(3);
        p.constraint(&[(0, 1.0)], Relation::Le, 1.0);
        assert_eq!(p.num_vars(), 3);
        assert_eq!(p.num_constraints(), 1);
    }

    #[test]
    fn error_display() {
        assert_eq!(SolveError::Infeasible.to_string(), "problem is infeasible");
    }
}
