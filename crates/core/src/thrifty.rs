//! The thrifty barrier (Li, Martínez & Huang — the paper's ref \[4\]): an
//! architecture-level baseline that attacks the *same slack* SynTS does,
//! but by sleeping instead of slowing down.
//!
//! Threads run at nominal voltage and frequency; a thread arriving early
//! at the barrier drops into a low-power sleep state and is woken when
//! the last thread arrives, paying a wake-up latency. Under the paper's
//! dynamic-only energy model (Eq 4.3) idle waiting is already free, so
//! the thrifty barrier only becomes interesting — and is only offered —
//! under the leakage-extended model of [`crate::leakage`], where the idle
//! tail burns `κ·P_leak(V)` per unit time and sleeping cuts `κ` down to
//! the sleep-retention floor.
//!
//! The qualitative comparison the tests pin down: thrifty saves the idle
//! *leakage*, but SynTS additionally converts the slack into *dynamic*
//! savings by lowering voltage — on heterogeneous workloads SynTS
//! (leakage-aware) dominates the thrifty barrier in EDP.

use serde::{Deserialize, Serialize};
use timing::{EnergyDelay, ErrorModel};

use crate::error::OptError;
use crate::leakage::LeakageModel;
use crate::model::{Assignment, OperatingPoint, SystemConfig, ThreadProfile};

/// Thrifty-barrier hardware parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThriftyConfig {
    /// Fraction of leakage power still burned in the sleep state
    /// (drowsy retention; 0 = perfect power gating).
    pub sleep_retention: f64,
    /// Wake-up latency in *cycles at nominal voltage* added to the
    /// barrier release for any interval in which at least one thread
    /// slept.
    pub wake_cycles: f64,
}

impl ThriftyConfig {
    /// Values in the spirit of the original paper: drowsy sleep retaining
    /// ~10% of leakage, ~100-cycle wake-up.
    #[must_use]
    pub fn classic() -> ThriftyConfig {
        ThriftyConfig {
            sleep_retention: 0.10,
            wake_cycles: 100.0,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::BadConfig`] naming the first violation.
    pub fn validate(&self) -> Result<(), OptError> {
        if !(0.0..=1.0).contains(&self.sleep_retention) || self.sleep_retention.is_nan() {
            return Err(OptError::BadConfig("sleep retention out of [0, 1]"));
        }
        if !self.wake_cycles.is_finite() || self.wake_cycles < 0.0 {
            return Err(OptError::BadConfig("wake cycles must be >= 0"));
        }
        Ok(())
    }
}

/// Outcome of one barrier interval under the thrifty barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct ThriftyOutcome {
    /// The (uniform nominal) operating points used.
    pub assignment: Assignment,
    /// Interval energy/time including sleep savings and wake penalty.
    pub total: EnergyDelay,
    /// How many threads slept (arrived strictly before the last).
    pub slept: usize,
    /// Total thread-time spent asleep across the interval.
    pub sleep_time: f64,
}

/// Evaluates one barrier interval under the thrifty barrier: all threads
/// at nominal V/F, early arrivals sleeping at `sleep_retention` leakage
/// until the barrier releases.
///
/// # Errors
///
/// [`OptError::BadConfig`] / [`OptError::NoThreads`] for malformed input.
pub fn thrifty_barrier<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    leak: &LeakageModel,
    thrifty: &ThriftyConfig,
) -> Result<ThriftyOutcome, OptError> {
    cfg.validate()?;
    leak.validate()?;
    thrifty.validate()?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let nominal_pt = OperatingPoint {
        voltage_idx: 0,
        tsr_idx: cfg.s() - 1,
    };
    let assignment = Assignment::uniform(profiles.len(), nominal_pt);
    let times: Vec<f64> = profiles
        .iter()
        .map(|p| crate::model::thread_time(cfg, p, nominal_pt))
        .collect();
    let barrier = times.iter().copied().fold(0.0f64, f64::max);
    let p_leak = leak.power(cfg, nominal_pt.voltage_idx);
    let mut energy = 0.0;
    let mut slept = 0;
    let mut sleep_time = 0.0;
    for (prof, &t_i) in profiles.iter().zip(&times) {
        let dynamic = crate::model::thread_energy(cfg, prof, nominal_pt);
        let idle = (barrier - t_i).max(0.0);
        if idle > 0.0 {
            slept += 1;
            sleep_time += idle;
        }
        // Active leakage over the busy span; drowsy leakage over the tail.
        energy += dynamic + p_leak * t_i + thrifty.sleep_retention * p_leak * idle;
    }
    // Wake-up penalty: the barrier release waits for sleepers to wake.
    let wake = if slept > 0 {
        thrifty.wake_cycles * cfg.tnom_v1
    } else {
        0.0
    };
    // The woken cores burn active leakage during the wake transition.
    energy += wake * p_leak * profiles.len() as f64;
    Ok(ThriftyOutcome {
        assignment,
        total: EnergyDelay::new(energy, barrier + wake),
        slept,
        sleep_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leakage::{evaluate_with_leakage, synts_poly_leakage, LeakageModel};
    use timing::ErrorCurve;

    fn curve(lo: f64, hi: f64) -> ErrorCurve {
        let delays: Vec<f64> = (0..200)
            .map(|i| lo + (hi - lo) * i as f64 / 200.0)
            .collect();
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    /// An imbalanced 4-thread interval: thread 0 is the straggler, the
    /// rest idle at the barrier (the Fig 1.4 situation).
    fn imbalanced() -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
        let cfg = SystemConfig::paper_default(10.0);
        let profiles = vec![
            ThreadProfile::new(10_000.0, 1.2, curve(0.70, 1.00)),
            ThreadProfile::new(6_000.0, 1.0, curve(0.45, 0.90)),
            ThreadProfile::new(5_000.0, 1.0, curve(0.50, 0.92)),
            ThreadProfile::new(4_000.0, 1.0, curve(0.40, 0.88)),
        ];
        (cfg, profiles)
    }

    #[test]
    fn sleeping_saves_idle_leakage() {
        let (cfg, profiles) = imbalanced();
        let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3).expect("ok");
        let thrifty = ThriftyConfig {
            sleep_retention: 0.1,
            wake_cycles: 0.0,
        };
        let out = thrifty_barrier(&cfg, &profiles, &leak, &thrifty).expect("ok");
        // Reference: same points, no sleeping (idle_scale = 1).
        let sleepless = evaluate_with_leakage(&cfg, &profiles, &out.assignment, &leak);
        assert!(out.slept == 3, "three threads idle at the barrier");
        assert!(out.sleep_time > 0.0);
        assert!(
            out.total.energy < sleepless.energy,
            "thrifty {} must beat sleepless {}",
            out.total.energy,
            sleepless.energy
        );
        assert_eq!(out.total.time, sleepless.time, "no wake penalty here");
    }

    #[test]
    fn full_retention_and_no_wake_equals_plain_nominal() {
        let (cfg, profiles) = imbalanced();
        let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3).expect("ok");
        let thrifty = ThriftyConfig {
            sleep_retention: 1.0,
            wake_cycles: 0.0,
        };
        let out = thrifty_barrier(&cfg, &profiles, &leak, &thrifty).expect("ok");
        let plain = evaluate_with_leakage(&cfg, &profiles, &out.assignment, &leak);
        assert!((out.total.energy - plain.energy).abs() < 1e-9 * plain.energy);
        assert_eq!(out.total.time, plain.time);
    }

    #[test]
    fn wake_penalty_stretches_the_interval() {
        let (cfg, profiles) = imbalanced();
        let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3).expect("ok");
        let base = thrifty_barrier(
            &cfg,
            &profiles,
            &leak,
            &ThriftyConfig {
                sleep_retention: 0.1,
                wake_cycles: 0.0,
            },
        )
        .expect("ok");
        let slow = thrifty_barrier(&cfg, &profiles, &leak, &ThriftyConfig::classic()).expect("ok");
        assert!(slow.total.time > base.total.time);
    }

    #[test]
    fn balanced_workload_never_sleeps() {
        let cfg = SystemConfig::paper_default(10.0);
        let profiles: Vec<ThreadProfile<ErrorCurve>> = (0..4)
            .map(|_| ThreadProfile::new(5_000.0, 1.0, curve(0.4, 0.9)))
            .collect();
        let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3).expect("ok");
        let out = thrifty_barrier(&cfg, &profiles, &leak, &ThriftyConfig::classic()).expect("ok");
        assert_eq!(out.slept, 0);
        assert_eq!(out.sleep_time, 0.0);
    }

    #[test]
    fn synts_with_leakage_beats_thrifty_on_heterogeneous_workloads() {
        // The headline qualitative claim: converting slack into voltage
        // reduction (SynTS) dominates merely sleeping through it.
        let (cfg, profiles) = imbalanced();
        let leak = LeakageModel::fraction_of_dynamic(&cfg, 0.3).expect("ok");
        let thrifty_out =
            thrifty_barrier(&cfg, &profiles, &leak, &ThriftyConfig::classic()).expect("ok");
        // Equal-weight theta on the thrifty outcome's scale.
        let theta = thrifty_out.total.energy / thrifty_out.total.time;
        let a = synts_poly_leakage(&cfg, &profiles, theta, &leak).expect("ok");
        let synts = evaluate_with_leakage(&cfg, &profiles, &a, &leak);
        assert!(
            synts.edp() < thrifty_out.total.edp(),
            "SynTS EDP {} must beat thrifty EDP {}",
            synts.edp(),
            thrifty_out.total.edp()
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let t = ThriftyConfig {
            sleep_retention: -0.1,
            wake_cycles: 0.0,
        };
        assert!(t.validate().is_err());
        let t = ThriftyConfig {
            sleep_retention: 0.1,
            wake_cycles: f64::NAN,
        };
        assert!(t.validate().is_err());
        assert!(ThriftyConfig::classic().validate().is_ok());
    }

    #[test]
    fn empty_profiles_rejected() {
        let cfg = SystemConfig::paper_default(10.0);
        let leak = LeakageModel::none();
        let empty: Vec<ThreadProfile<ErrorCurve>> = Vec::new();
        assert_eq!(
            thrifty_barrier(&cfg, &empty, &leak, &ThriftyConfig::classic())
                .expect_err("no threads"),
            OptError::NoThreads
        );
    }
}
