//! Deterministic fault injection for chaos testing the service stack.
//!
//! A [`FaultPlan`] is parsed from a compact textual grammar (the
//! `SYNTS_FAULTS` environment variable, a `--faults` flag, or the
//! `faults` field of a [`crate::ScenarioSpec`]) and threaded — always as
//! an `Option` — through the characterization cache, the scenario-service
//! executor, and the HTTP server/client. When no plan is armed every
//! injection point is a no-op, so the production paths carry the hooks at
//! zero behavioural cost.
//!
//! Determinism is the whole point: whether a given site fires for a given
//! operation is a pure function of `(seed, site, identity token)` — an
//! FNV-1a hash folded through a splitmix finalizer — with **no wall-clock
//! reads and no RNG** in the decision path. Two runs of the same spec with
//! the same plan inject byte-identical fault sequences, which is what lets
//! the chaos suite assert that recovery produces byte-identical reports.
//!
//! # Grammar
//!
//! Semicolon-separated `key=value` clauses:
//!
//! ```text
//! seed=42;cache.write=1/4;exec.panic=~#a0;net.refuse=2/5
//! ```
//!
//! * `seed=<u64>` — hash seed (defaults to 0).
//! * `<site>=<N>/<D>` — rate rule: fires for the deterministic `N/D`
//!   fraction of identity tokens at `<site>`. `<N>` alone means `N/1`
//!   (so `1` fires always, `0` never).
//! * `<site>=~<substr>` — match rule: fires whenever the identity token
//!   contains `<substr>`.
//!
//! Identity tokens are stable names for the operation being attempted:
//! the cache entry file name for `cache.*` sites, `"<shard-spec-name>#a<attempt>"`
//! for `exec.*` sites (so `~#a0` fails only first attempts and the retry
//! path is exercised deterministically), and `"<METHOD> <path>#a<attempt>"`
//! / `"#r<n>"` (server request counter) for `net.*` sites.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::error::OptError;
use crate::scenario::Json;

/// Environment variable holding a fault plan armed for the whole process.
pub const FAULTS_ENV: &str = "SYNTS_FAULTS";

/// Injection-site names accepted by the plan grammar.
pub mod site {
    /// Cache entry load: a hit is deterministically turned into a miss.
    pub const CACHE_READ: &str = "cache.read";
    /// Cache entry store: the write is dropped before the tmp file lands.
    pub const CACHE_WRITE: &str = "cache.write";
    /// Cache entry publish: the tmp file is written but the rename fails.
    pub const CACHE_RENAME: &str = "cache.rename";
    /// Executor: the shard worker panics (contained by `catch_unwind`).
    pub const EXEC_PANIC: &str = "exec.panic";
    /// Executor: the shard sleeps briefly before running (latency fault).
    pub const EXEC_SLOW: &str = "exec.slow";
    /// Executor: the whole process aborts — the real kill for recovery tests.
    pub const EXEC_KILL: &str = "exec.kill";
    /// Client: the connection attempt is refused before any bytes move.
    pub const NET_REFUSE: &str = "net.refuse";
    /// Server: the response head is torn mid-write and the socket dropped.
    pub const NET_TORN: &str = "net.torn";
    /// Server: the response body is cut mid-stream and the socket dropped.
    pub const NET_DISCONNECT: &str = "net.disconnect";
    /// Executor: a due heartbeat is silently dropped instead of sent, so
    /// the coordinator-side lease runs down and the shard is reassigned.
    pub const FLEET_HEARTBEAT: &str = "fleet.heartbeat";
    /// Coordinator: a granted dispatch is lost in flight — the lease is
    /// charged an attempt and the shard goes back on the queue.
    pub const FLEET_DISPATCH: &str = "fleet.dispatch";
    /// Cache: the remote characterization tier is unreachable; the lookup
    /// degrades to a local miss (and the publish is dropped).
    pub const CACHE_REMOTE: &str = "cache.remote";
}

/// Every site name, in the order the fault report renders them.
pub const ALL_SITES: [&str; 12] = [
    site::CACHE_READ,
    site::CACHE_WRITE,
    site::CACHE_RENAME,
    site::EXEC_PANIC,
    site::EXEC_SLOW,
    site::EXEC_KILL,
    site::NET_REFUSE,
    site::NET_TORN,
    site::NET_DISCONNECT,
    site::FLEET_HEARTBEAT,
    site::FLEET_DISPATCH,
    site::CACHE_REMOTE,
];

/// How a single rule decides whether to fire for an identity token.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Trigger {
    /// Fire for the deterministic `num/den` fraction of tokens.
    Rate { num: u64, den: u64 },
    /// Fire when the token contains the substring.
    Match(String),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultRule {
    site: String,
    trigger: Trigger,
}

/// A parsed, armed fault plan. Decisions are pure; the only interior
/// state is the fired-count ledger backing [`FaultPlan::report`].
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    source: String,
    rules: Vec<FaultRule>,
    fired: Mutex<BTreeMap<String, u64>>,
}

impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        // Identity is the decision function (seed + rules); the fired
        // ledger is observability, not behaviour.
        self.seed == other.seed && self.rules == other.rules
    }
}

impl Eq for FaultPlan {}

impl FaultPlan {
    /// Parses the plan grammar. An empty (or all-whitespace) source yields
    /// an inert plan with no rules.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::Spec`] on an unknown site name or a malformed
    /// clause/rate/seed.
    pub fn parse(src: &str) -> Result<Self, OptError> {
        let mut seed = 0u64;
        let mut rules = Vec::new();
        for clause in src.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let Some((key, value)) = clause.split_once('=') else {
                return Err(OptError::Spec(format!(
                    "fault plan: clause {clause:?} is not key=value"
                )));
            };
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                seed = value.parse().map_err(|_| {
                    OptError::Spec(format!("fault plan: seed {value:?} is not a u64"))
                })?;
                continue;
            }
            if !ALL_SITES.contains(&key) {
                return Err(OptError::Spec(format!(
                    "fault plan: unknown site {key:?} (expected one of {})",
                    ALL_SITES.join(", ")
                )));
            }
            let trigger = if let Some(substr) = value.strip_prefix('~') {
                if substr.is_empty() {
                    return Err(OptError::Spec(format!(
                        "fault plan: empty match pattern for {key}"
                    )));
                }
                Trigger::Match(substr.to_string())
            } else {
                let (num, den) = match value.split_once('/') {
                    Some((n, d)) => (n.trim(), d.trim()),
                    None => (value, "1"),
                };
                let num: u64 = num.parse().map_err(|_| {
                    OptError::Spec(format!("fault plan: bad rate numerator in {clause:?}"))
                })?;
                let den: u64 = den.parse().map_err(|_| {
                    OptError::Spec(format!("fault plan: bad rate denominator in {clause:?}"))
                })?;
                if den == 0 {
                    return Err(OptError::Spec(format!(
                        "fault plan: zero rate denominator in {clause:?}"
                    )));
                }
                Trigger::Rate { num, den }
            };
            rules.push(FaultRule {
                site: key.to_string(),
                trigger,
            });
        }
        Ok(Self {
            seed,
            source: src.trim().to_string(),
            rules,
            fired: Mutex::new(BTreeMap::new()),
        })
    }

    /// Reads [`FAULTS_ENV`] and parses it. `Ok(None)` when unset or empty.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::parse`] errors so a typo in the variable is
    /// loud instead of silently disarming the plan.
    pub fn from_env() -> Result<Option<Self>, OptError> {
        // synts-lint: allow(env-read) — SYNTS_FAULTS only arms the chaos
        // harness; an unarmed run never consults it in a decision path.
        match std::env::var(FAULTS_ENV) {
            Ok(src) if !src.trim().is_empty() => Self::parse(&src).map(Some),
            _ => Ok(None),
        }
    }

    /// The hash seed the plan was parsed with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan text this was parsed from (for logs and reports).
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// True when at least one rule is armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        !self.rules.is_empty()
    }

    /// Deterministic decision: should `site` fail the operation named by
    /// `token`? Fires (and records) at most once per call even when
    /// several rules match.
    #[must_use]
    pub fn should(&self, site: &str, token: &str) -> bool {
        let hit = self.rules.iter().any(|rule| {
            rule.site == site
                && match &rule.trigger {
                    Trigger::Rate { num, den } => decision(self.seed, site, token) % den < *num,
                    Trigger::Match(substr) => token.contains(substr.as_str()),
                }
        });
        if hit {
            let mut fired = self
                .fired
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *fired.entry(site.to_string()).or_insert(0) += 1;
        }
        hit
    }

    /// Panics — inside the caller's `catch_unwind` containment — when the
    /// [`site::EXEC_PANIC`] site fires for `token`.
    pub fn maybe_panic(&self, token: &str) {
        if self.should(site::EXEC_PANIC, token) {
            panic!("fault injected: {} at {token}", site::EXEC_PANIC);
        }
    }

    /// Sleeps briefly when the [`site::EXEC_SLOW`] site fires for `token`.
    /// The delay is fixed, not measured, so no clock enters any decision.
    pub fn maybe_slow(&self, token: &str) {
        if self.should(site::EXEC_SLOW, token) {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    }

    /// Aborts the whole process when the [`site::EXEC_KILL`] site fires —
    /// the genuine mid-job kill the recovery test needs (no destructors,
    /// no unwinding, exactly like `kill -9`).
    pub fn maybe_kill(&self, token: &str) {
        if self.should(site::EXEC_KILL, token) {
            eprintln!("fault injected: {} at {token}; aborting", site::EXEC_KILL);
            std::process::abort();
        }
    }

    /// How many times each site has fired so far, in site-name order.
    #[must_use]
    pub fn fired_counts(&self) -> BTreeMap<String, u64> {
        self.fired
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Canonical-JSON fault report: the plan source, seed, and per-site
    /// fired counts (every known site listed, zeros included, so reports
    /// from different runs are directly comparable).
    #[must_use]
    pub fn report(&self) -> Json {
        let fired = self.fired_counts();
        let mut counts = Json::obj();
        for s in ALL_SITES {
            let n = fired.get(s).copied().unwrap_or(0);
            counts = counts.field(s, Json::num(n as f64));
        }
        Json::obj()
            .field("plan", Json::str(self.source.as_str()))
            .field("seed", Json::num(self.seed as f64))
            .field("fired", counts)
    }
}

/// Pure decision hash: FNV-1a over `(seed, site, token)` finalized with
/// splitmix64 so low-entropy tokens still spread across the rate space.
fn decision(seed: u64, site: &str, token: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut step = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    step(&seed.to_le_bytes());
    step(site.as_bytes());
    step(&[0xff]);
    step(token.as_bytes());
    let mut x = hash;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(!plan.is_armed());
        assert!(!plan.should(site::CACHE_WRITE, "anything"));
        assert_eq!(plan.fired_counts().len(), 0);
    }

    #[test]
    fn parse_rejects_unknown_sites_and_bad_rates() {
        assert!(FaultPlan::parse("cache.explode=1/2").is_err());
        assert!(FaultPlan::parse("cache.write=1/0").is_err());
        assert!(FaultPlan::parse("cache.write").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        assert!(FaultPlan::parse("exec.panic=~").is_err());
    }

    #[test]
    fn match_rules_fire_on_substring() {
        let plan = FaultPlan::parse("exec.panic=~#a0").unwrap();
        assert!(plan.should(site::EXEC_PANIC, "fig@shard1#a0"));
        assert!(!plan.should(site::EXEC_PANIC, "fig@shard1#a1"));
        assert!(!plan.should(site::CACHE_WRITE, "fig@shard1#a0"));
        assert_eq!(plan.fired_counts().get(site::EXEC_PANIC), Some(&1));
    }

    #[test]
    fn rate_rules_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::parse("seed=1;cache.write=1/2").unwrap();
        let b = FaultPlan::parse("seed=1;cache.write=1/2").unwrap();
        let c = FaultPlan::parse("seed=2;cache.write=1/2").unwrap();
        let tokens: Vec<String> = (0..64).map(|i| format!("entry-{i}.json")).collect();
        let fire = |p: &FaultPlan| -> Vec<bool> {
            tokens
                .iter()
                .map(|t| p.should(site::CACHE_WRITE, t))
                .collect()
        };
        let fa = fire(&a);
        assert_eq!(fa, fire(&b), "same seed must agree");
        assert_ne!(fa, fire(&c), "different seed should differ somewhere");
        let hits = fa.iter().filter(|&&x| x).count();
        assert!(hits > 8 && hits < 56, "1/2 rate wildly off: {hits}/64");
    }

    #[test]
    fn rate_edges_always_and_never() {
        let always = FaultPlan::parse("net.refuse=1").unwrap();
        let never = FaultPlan::parse("net.refuse=0/5").unwrap();
        for t in ["GET /healthz#a0", "POST /v1/jobs#a2"] {
            assert!(always.should(site::NET_REFUSE, t));
            assert!(!never.should(site::NET_REFUSE, t));
        }
    }

    #[test]
    fn report_lists_every_site_with_zeroes() {
        let plan = FaultPlan::parse("seed=9;exec.slow=~x").unwrap();
        assert!(plan.should(site::EXEC_SLOW, "x1"));
        let report = plan.report();
        let fired = report.get("fired").unwrap();
        for s in ALL_SITES {
            assert!(fired.get(s).is_some(), "missing {s}");
        }
        assert_eq!(report.get("seed").and_then(Json::as_usize), Some(9));
    }

    #[test]
    fn plans_with_same_rules_compare_equal() {
        let a = FaultPlan::parse("seed=3;cache.read=~t").unwrap();
        let b = FaultPlan::parse("seed=3;cache.read=~t").unwrap();
        assert!(a.should(site::CACHE_READ, "entry-t"));
        // Fired ledgers differ; identity does not.
        assert_eq!(a, b);
    }
}
