//! A hand-rolled scoped thread pool for θ sweeps and batched interval
//! re-optimization.
//!
//! The synergistic-θ formulation is embarrassingly parallel: every θ point
//! of a Pareto sweep and every barrier-interval re-optimization is an
//! independent solve against shared, read-only inputs. [`ThreadPool`] fans
//! such work out over `std::thread::scope` workers — no external
//! dependency, no unsafe code, no long-lived threads to manage — and
//! collects results **in index order**, so the output of a parallel run is
//! bit-identical to the sequential one regardless of worker count.
//!
//! Worker count resolution, in priority order:
//!
//! 1. an explicit count ([`ThreadPool::new`], or
//!    `Synts::builder().workers(n)`);
//! 2. the `SYNTS_THREADS` environment variable ([`THREADS_ENV`]);
//! 3. [`std::thread::available_parallelism`].
//!
//! ```
//! use synts_core::parallel::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "SYNTS_THREADS";

/// Resolves a worker count: `explicit` if given, else [`THREADS_ENV`],
/// else the machine's available parallelism. Always at least 1.
///
/// # Panics
///
/// If `explicit` is `Some(0)`, or [`THREADS_ENV`] is set to something
/// other than an integer >= 1 (`0`, negative, or non-numeric). A typo'd
/// worker knob silently falling back to "the whole machine" (or to
/// sequential) is exactly the kind of misconfiguration that shows up as
/// a mystery perf cliff on a fleet — fail loudly at the first pool
/// construction instead, and give `workers(0)` and `SYNTS_THREADS=0`
/// the same loud answer rather than two behaviors.
#[must_use]
pub fn worker_count(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        assert!(
            n >= 1,
            "workers=0 is invalid: expected an integer >= 1 \
             (use 1 for a sequential run, or no explicit count to use the \
             machine's available parallelism)"
        );
        return n;
    }
    // synts-lint: allow(env-read) — SYNTS_THREADS is the sanctioned worker-count knob; results are bit-identical at any count
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        return threads_from_env(&raw);
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a [`THREADS_ENV`] value, panicking (loudly, with the variable
/// name and offending value) on anything but an integer >= 1.
fn threads_from_env(raw: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => panic!(
            "{THREADS_ENV}={raw:?} is invalid: expected an integer >= 1 \
             (use 1 for a sequential run, or unset it to use the machine's \
             available parallelism)"
        ),
    }
}

/// A scoped fork/join pool: `workers` threads are spawned per call inside
/// `std::thread::scope`, pull item indices from a shared atomic cursor,
/// and are joined before the call returns.
///
/// The pool is a cheap value object (a configured worker count); cloning
/// or copying it is free. Work items only need to live for the duration
/// of one `map` call, so borrowed inputs (configs, profile slices, trait
/// objects) work without `Arc` plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// A pool with exactly `workers` threads (clamped to at least 1).
    #[must_use]
    pub fn new(workers: usize) -> ThreadPool {
        ThreadPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized by [`worker_count`]`(None)`: `SYNTS_THREADS` if set,
    /// otherwise the machine's available parallelism.
    #[must_use]
    pub fn from_env() -> ThreadPool {
        ThreadPool::new(worker_count(None))
    }

    /// The single-threaded pool — `map` runs inline on the caller.
    #[must_use]
    pub fn sequential() -> ThreadPool {
        ThreadPool::new(1)
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, returning results in item order.
    ///
    /// `f` receives `(index, &item)`. With one worker (or one item) the
    /// map runs inline on the calling thread — no spawn, identical
    /// semantics. A panic in `f` is propagated to the caller after all
    /// workers have been joined.
    ///
    /// ## Scheduling: greedy one-at-a-time claiming
    ///
    /// Workers pull single indices from a shared atomic cursor. For the
    /// few-expensive-items shape (a corpus build: a handful of
    /// second-long characterizations) this is the *right* discipline: a
    /// worker is never idle while unclaimed items remain, so the
    /// makespan satisfies Graham's bound
    /// `elapsed ≤ sum(costs)/workers + max(cost)` regardless of cost
    /// distribution (pinned by
    /// `greedy_claiming_bounds_worker_idle_on_expensive_items`).
    /// Pre-chunked assignment ([`ThreadPool::chunk_ranges`], which
    /// `pareto_sweep` uses to amortize per-chunk setup) has no such
    /// bound — two expensive items landing in one worker's chunk
    /// serialize while the other workers drain their cheap chunks and
    /// idle. The cursor `fetch_add` costs nanoseconds per item; it only
    /// matters for micro-items, which belong in batched `solve_batch`
    /// calls anyway.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.workers.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            local.push((i, f(i, item)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(bucket) => bucket,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        // Deterministic index-ordered collection: each index was claimed
        // by exactly one worker.
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(items.len(), || None);
        for bucket in buckets {
            for (i, r) in bucket {
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("every index is claimed exactly once"))
            .collect()
    }

    /// [`ThreadPool::map`] for fallible work, surfacing the same error a
    /// sequential left-to-right loop would — the lowest-index failure —
    /// independent of worker count and scheduling. With one worker the
    /// loop short-circuits at that failure; with more, in-flight items
    /// run to completion first (stopping them would cost coordination
    /// without changing the result).
    ///
    /// # Errors
    ///
    /// The first error in item order, if any `f` call fails.
    pub fn try_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        if self.workers.min(items.len()) <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        self.map(items, f).into_iter().collect()
    }

    /// Splits `0..len` into at most `workers` contiguous near-equal index
    /// ranges — the chunking `pareto_sweep` uses so each worker's
    /// `solve_batch` call amortizes shared setup over its whole chunk.
    /// Public so `synts-cli check` can preview a shard plan's θ-grid
    /// partition without characterizing the benchmark.
    pub fn chunk_ranges(&self, len: usize) -> Vec<std::ops::Range<usize>> {
        let workers = self.workers.min(len).max(1);
        let base = len / workers;
        let extra = len % workers;
        let mut ranges = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let size = base + usize::from(w < extra);
            if size == 0 {
                continue;
            }
            ranges.push(start..start + size);
            start += size;
        }
        ranges
    }
}

impl Default for ThreadPool {
    fn default() -> ThreadPool {
        ThreadPool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order_at_any_worker_count() {
        let items: Vec<usize> = (0..57).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 4, 8, 64] {
            let got = ThreadPool::new(workers).map(&items, |i, &x| {
                assert_eq!(i, x, "index matches item position");
                x * 3 + 1
            });
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn map_handles_empty_and_single_item() {
        let pool = ThreadPool::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn try_map_returns_the_lowest_index_error() {
        let items: Vec<usize> = (0..40).collect();
        let err = ThreadPool::new(8)
            .try_map(&items, |_, &x| if x % 13 == 12 { Err(x) } else { Ok(x) })
            .expect_err("items 12, 25, 38 fail");
        assert_eq!(err, 12, "sequential-order first error wins");
    }

    #[test]
    fn worker_count_prefers_explicit_over_env() {
        assert_eq!(worker_count(Some(3)), 3);
        assert_eq!(worker_count(Some(1)), 1);
        assert!(worker_count(None) >= 1);
    }

    /// An explicit zero is the same misconfiguration as `SYNTS_THREADS=0`
    /// and gets the same loud rejection (message shape and all), never a
    /// silent clamp to sequential.
    #[test]
    fn worker_count_rejects_explicit_zero_loudly() {
        let panic = std::panic::catch_unwind(|| worker_count(Some(0)))
            .expect_err("workers=0 must be rejected");
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(msg.contains("workers=0"), "names the knob: {msg}");
        assert!(
            msg.contains("expected an integer >= 1"),
            "same message shape as the env rejection: {msg}"
        );
        assert!(
            msg.contains("use 1 for a sequential run"),
            "tells the caller the fix: {msg}"
        );
    }

    #[test]
    fn threads_env_accepts_positive_integers() {
        assert_eq!(threads_from_env("6"), 6);
        assert_eq!(threads_from_env(" 8 "), 8, "whitespace is trimmed");
        assert_eq!(threads_from_env("1"), 1);
    }

    /// The satellite contract: `SYNTS_THREADS=0` and non-numeric values
    /// are rejected loudly (with the variable name and the offending
    /// value in the message), never silently coerced. The invalid values
    /// are probed through the pure parser so this test cannot race other
    /// tests in this binary that read the real environment.
    #[test]
    fn threads_env_rejects_zero_and_junk_loudly() {
        for raw in ["0", "not-a-number", "", "-3", "2.5"] {
            let panic = std::panic::catch_unwind(|| threads_from_env(raw))
                .expect_err(&format!("{raw:?} must be rejected"));
            let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains(THREADS_ENV), "{raw:?}: names the knob: {msg}");
            assert!(msg.contains(raw), "{raw:?}: names the value: {msg}");
        }
    }

    #[test]
    fn try_map_short_circuits_sequentially() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let items: Vec<usize> = (0..20).collect();
        let err = ThreadPool::sequential()
            .try_map(&items, |_, &x| {
                calls.fetch_add(1, Ordering::Relaxed);
                if x == 3 {
                    Err(x)
                } else {
                    Ok(x)
                }
            })
            .expect_err("item 3 fails");
        assert_eq!(err, 3);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            4,
            "one worker stops at the first failure"
        );
    }

    #[test]
    fn chunk_ranges_cover_all_indices_contiguously() {
        for len in [0usize, 1, 5, 8, 17] {
            for workers in [1usize, 2, 4, 8] {
                let ranges = ThreadPool::new(workers).chunk_ranges(len);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(!r.is_empty(), "no empty chunks");
                    next = r.end;
                }
                assert_eq!(next, len, "full coverage: len {len} workers {workers}");
                assert!(ranges.len() <= workers.max(1));
            }
        }
    }

    /// The satellite contract for the corpus shape (few, expensive
    /// items): worker idle time is bounded. With greedy one-at-a-time
    /// claiming no worker idles while unclaimed items remain, so total
    /// idle is at most `(workers-1) × max(cost)` — equivalently the
    /// makespan obeys Graham's bound `sum/workers + max`. Sleeps are used
    /// as costs because they overlap even on a single hardware core,
    /// which keeps this meaningful on 1-CPU CI runners. The generous
    /// margin absorbs scheduler jitter; a pathological schedule (two
    /// expensive items serialized on one worker, or no overlap at all)
    /// misses the bound by whole sleep-lengths, not by jitter.
    #[test]
    fn greedy_claiming_bounds_worker_idle_on_expensive_items() {
        use std::time::{Duration, Instant};
        // 12 cheap + 1 expensive item, expensive in the middle — the
        // distribution that wrecks static chunking.
        let mut costs_ms: Vec<u64> = vec![30; 12];
        costs_ms.insert(6, 120);
        let workers = 4;
        let sum: u64 = costs_ms.iter().sum(); // 480 ms
        let max = 120;
        let start = Instant::now();
        ThreadPool::new(workers).map(&costs_ms, |_, &ms| {
            std::thread::sleep(Duration::from_millis(ms));
        });
        let elapsed = start.elapsed();
        let graham = sum / workers as u64 + max; // 240 ms
        let margin = 60;
        assert!(
            elapsed <= Duration::from_millis(graham + margin),
            "makespan {elapsed:?} exceeds Graham bound {graham}ms + {margin}ms margin \
             (sequential would be {sum}ms)"
        );
    }

    #[test]
    fn pool_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            ThreadPool::new(4).map(&[0u32, 1, 2, 3, 4, 5, 6, 7], |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err(), "worker panic reaches the caller");
    }
}
