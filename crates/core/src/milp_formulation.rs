//! SynTS-MILP — the paper's mixed-integer formulation (Sec 4.2.1,
//! Eq 4.5–4.10), lowered onto the [`milp`] solver.
//!
//! Variables: binaries `x_{ijk}` (thread `i` at voltage `j`, TSR `k`) and a
//! continuous `t_exec`. Because energy `en_{ijk}` and time `t_{ijk}` are
//! precomputable constants for each `(i, j, k)` (Eq 4.7–4.9 fold into the
//! tables), the objective and constraints are linear:
//!
//! * minimize `Σ en_{ijk} x_{ijk} + θ·t_exec`            (Eq 4.5)
//! * `t_exec ≥ Σ_jk t_{ijk} x_{ijk}`  for every thread    (Eq 4.6)
//! * `Σ_jk x_{ijk} = 1`               for every thread    (Eq 4.10)

use milp::{Problem, Relation};
use timing::ErrorModel;

use crate::error::OptError;
use crate::model::{Assignment, OperatingPoint, SystemConfig, ThreadProfile};
use crate::poly::Tables;

/// Solves SynTS-OPT through the MILP formulation.
///
/// Produces the same optima as [`crate::synts_poly`] (verified by tests);
/// exists to reproduce the paper's formulation and as an independent
/// correctness oracle. Use the polynomial algorithm in anything online —
/// that asymmetry is the paper's point.
///
/// # Errors
///
/// * [`OptError::BadConfig`] / [`OptError::NoThreads`] for malformed input.
/// * [`OptError::Milp`] if the backing solver fails (should not happen for
///   well-formed instances: the all-nominal assignment is always feasible).
pub fn synts_milp<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
) -> Result<Assignment, OptError> {
    cfg.validate()?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let t = Tables::build(cfg, profiles);
    solve_on_tables(&t, theta)
}

/// The MILP lowering over precomputed [`Tables`] — the table build is the
/// per-benchmark setup `Solver::solve_batch` hoists out of θ loops.
pub(crate) fn solve_on_tables(t: &Tables, theta: f64) -> Result<Assignment, OptError> {
    let (m, q, s) = (t.m, t.q, t.s);
    let n_points = q * s;
    let n_vars = m * n_points + 1; // + t_exec
    let texec_var = m * n_points;

    // Normalize magnitudes so the simplex works near 1.0.
    let e_scale = t
        .energy
        .iter()
        .flatten()
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1e-30);
    let t_scale = t
        .time
        .iter()
        .flatten()
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1e-30);

    let mut p = Problem::minimize(n_vars);
    for i in 0..m {
        for idx in 0..n_points {
            let var = i * n_points + idx;
            p.set_objective(var, t.energy[i][idx] / e_scale);
            p.set_binary(var);
        }
    }
    // θ·t_exec with t_exec expressed in t_scale units: θ' = θ·t_scale/e_scale.
    p.set_objective(texec_var, theta * t_scale / e_scale);

    for i in 0..m {
        // Eq 4.10: one point per thread.
        let ones: Vec<(usize, f64)> = (0..n_points).map(|idx| (i * n_points + idx, 1.0)).collect();
        p.constraint(&ones, Relation::Eq, 1.0);
        // Eq 4.6: Σ t_ijk x_ijk − t_exec ≤ 0 (in t_scale units).
        let mut coeffs: Vec<(usize, f64)> = (0..n_points)
            .map(|idx| (i * n_points + idx, t.time[i][idx] / t_scale))
            .collect();
        coeffs.push((texec_var, -1.0));
        p.constraint(&coeffs, Relation::Le, 0.0);
    }

    let sol = p.solve_milp()?;
    let mut points = Vec::with_capacity(m);
    for i in 0..m {
        let chosen = (0..n_points)
            .find(|idx| sol.x[i * n_points + idx] > 0.5)
            .expect("Eq 4.10 forces exactly one point per thread");
        points.push(OperatingPoint {
            voltage_idx: chosen / s,
            tsr_idx: chosen % s,
        });
    }
    Ok(Assignment { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::weighted_cost;
    use crate::poly::synts_poly;
    use timing::ErrorCurve;

    fn curve(delays: Vec<f64>) -> ErrorCurve {
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    fn small_instance(seed: u64) -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
        let mut cfg = SystemConfig::paper_default(10.0);
        cfg.voltages = timing::VoltageTable::from_volts([1.0, 0.86, 0.72]).expect("ok");
        cfg.tsr_levels = vec![0.64, 0.8, 1.0];
        let mut state = seed;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let profiles = (0..3)
            .map(|_| {
                let base = 0.3 + 0.5 * rand01();
                let spread = 0.1 + 0.3 * rand01();
                let delays: Vec<f64> = (0..100)
                    .map(|i| (base + spread * (i as f64 / 100.0)).min(1.0))
                    .collect();
                ThreadProfile::new(1_000.0 + 9_000.0 * rand01(), 1.0 + rand01(), curve(delays))
            })
            .collect();
        (cfg, profiles)
    }

    #[test]
    fn milp_matches_poly_across_thetas_and_instances() {
        for seed in [1u64, 7, 42, 1234] {
            let (cfg, profiles) = small_instance(seed);
            for theta in [0.0, 0.05, 1.0, 50.0] {
                let a_milp = synts_milp(&cfg, &profiles, theta).expect("milp");
                let a_poly = synts_poly(&cfg, &profiles, theta).expect("poly");
                let cm = weighted_cost(&cfg, &profiles, &a_milp, theta);
                let cp = weighted_cost(&cfg, &profiles, &a_poly, theta);
                assert!(
                    (cm - cp).abs() <= 1e-6 * cp.abs().max(1.0),
                    "seed {seed} theta {theta}: milp {cm} vs poly {cp}"
                );
            }
        }
    }

    #[test]
    fn milp_matches_exhaustive() {
        let (cfg, profiles) = small_instance(99);
        let theta = 1.0;
        let a_milp = synts_milp(&cfg, &profiles, theta).expect("milp");
        let a_ex = crate::exhaustive::synts_exhaustive(&cfg, &profiles, theta).expect("ex");
        let cm = weighted_cost(&cfg, &profiles, &a_milp, theta);
        let ce = weighted_cost(&cfg, &profiles, &a_ex, theta);
        assert!((cm - ce).abs() <= 1e-6 * ce.abs().max(1.0));
    }

    #[test]
    fn rejects_empty() {
        let (cfg, _) = small_instance(5);
        let empty: Vec<ThreadProfile<ErrorCurve>> = Vec::new();
        assert_eq!(
            synts_milp(&cfg, &empty, 1.0).expect_err("no threads"),
            OptError::NoThreads
        );
    }
}
