//! SynTS-MILP — the paper's mixed-integer formulation (Sec 4.2.1,
//! Eq 4.5–4.10), lowered onto the [`milp`] solver.
//!
//! Variables: binaries `x_{ijk}` (thread `i` at voltage `j`, TSR `k`) and a
//! continuous `t_exec`. Because energy `en_{ijk}` and time `t_{ijk}` are
//! precomputable constants for each `(i, j, k)` (Eq 4.7–4.9 fold into the
//! tables), the objective and constraints are linear:
//!
//! * minimize `Σ en_{ijk} x_{ijk} + θ·t_exec`            (Eq 4.5)
//! * `t_exec ≥ Σ_jk t_{ijk} x_{ijk}`  for every thread    (Eq 4.6)
//! * `Σ_jk x_{ijk} = 1`               for every thread    (Eq 4.10)

use milp::{MilpOptions, Problem, Relation, Solution};
use timing::ErrorModel;

use crate::error::OptError;
use crate::model::{Assignment, OperatingPoint, SystemConfig, ThreadProfile};
use crate::poly::{self, PreparedTables, Tables};

/// Solves SynTS-OPT through the MILP formulation.
///
/// Produces the same optima as [`crate::synts_poly`] (verified by tests);
/// exists to reproduce the paper's formulation and as an independent
/// correctness oracle. Use the polynomial algorithm in anything online —
/// that asymmetry is the paper's point.
///
/// Since PR 5 the branch-and-bound is *warm-started*: Algorithm 1 on the
/// shared θ-independent [`PreparedTables`] supplies an optimal incumbent
/// in `O(M²·QS·log QS)`, whose objective bound prunes most of the MILP
/// tree immediately (best-first node order). The oracle property is
/// preserved — if the seed were ever suboptimal the tree search would
/// find and return the better solution — while a θ sweep pays a few
/// nodes per grid point instead of a cold search. The cold path survives
/// as [`crate::reference::synts_milp_naive`].
///
/// # Errors
///
/// * [`OptError::BadConfig`] / [`OptError::NoThreads`] for malformed input.
/// * [`OptError::Milp`] if the backing solver fails (should not happen for
///   well-formed instances: the all-nominal assignment is always feasible);
///   an exhausted node budget reports the nodes explored.
pub fn synts_milp<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
) -> Result<Assignment, OptError> {
    synts_milp_with(cfg, profiles, theta, &MilpTuning::default())
}

/// [`synts_milp`] with explicit solver tuning (node budget).
///
/// # Errors
///
/// As [`synts_milp`].
pub fn synts_milp_with<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
    tuning: &MilpTuning,
) -> Result<Assignment, OptError> {
    cfg.validate()?;
    poly::validate_theta(theta)?;
    if profiles.is_empty() {
        return Err(OptError::NoThreads);
    }
    let p = PreparedTables::build(cfg, profiles);
    solve_prepared(&p, theta, tuning)
}

/// Branch-and-bound knobs exposed to `synts-core` callers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MilpTuning {
    /// Branch-and-bound node budget per solve; `None` uses
    /// [`milp::DEFAULT_NODE_LIMIT`].
    pub node_limit: Option<usize>,
}

/// The MILP lowering of Eq 4.5–4.10 over precomputed [`Tables`].
struct Lowering {
    problem: Problem,
    n_points: usize,
}

fn lower(t: &Tables, theta: f64) -> Lowering {
    let (m, q, s) = (t.m, t.q, t.s);
    let n_points = q * s;
    let n_vars = m * n_points + 1; // + t_exec
    let texec_var = m * n_points;

    // Normalize magnitudes so the simplex works near 1.0.
    let e_scale = t
        .energy
        .iter()
        .flatten()
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1e-30);
    let t_scale = t
        .time
        .iter()
        .flatten()
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1e-30);

    let mut p = Problem::minimize(n_vars);
    for i in 0..m {
        for idx in 0..n_points {
            let var = i * n_points + idx;
            p.set_objective(var, t.energy[i][idx] / e_scale);
            p.set_binary(var);
        }
    }
    // θ·t_exec with t_exec expressed in t_scale units: θ' = θ·t_scale/e_scale.
    p.set_objective(texec_var, theta * t_scale / e_scale);

    for i in 0..m {
        // Eq 4.10: one point per thread.
        let ones: Vec<(usize, f64)> = (0..n_points).map(|idx| (i * n_points + idx, 1.0)).collect();
        p.constraint(&ones, Relation::Eq, 1.0);
        // Eq 4.6: Σ t_ijk x_ijk − t_exec ≤ 0 (in t_scale units).
        let mut coeffs: Vec<(usize, f64)> = (0..n_points)
            .map(|idx| (i * n_points + idx, t.time[i][idx] / t_scale))
            .collect();
        coeffs.push((texec_var, -1.0));
        p.constraint(&coeffs, Relation::Le, 0.0);
    }
    Lowering {
        problem: p,
        n_points,
    }
}

fn extract(t: &Tables, low: &Lowering, sol: &Solution) -> Assignment {
    let mut points = Vec::with_capacity(t.m);
    for i in 0..t.m {
        let chosen = (0..low.n_points)
            .find(|idx| sol.x[i * low.n_points + idx] > 0.5)
            .expect("Eq 4.10 forces exactly one point per thread");
        points.push(OperatingPoint {
            voltage_idx: chosen / t.s,
            tsr_idx: chosen % t.s,
        });
    }
    Assignment { points }
}

/// The cold MILP path, exactly as before PR 5: the full `M·Q·S + 1`
/// variable lowering, depth-first branch-and-bound from scratch, no
/// incumbent. Kept as the reference baseline
/// ([`crate::reference::synts_milp_naive`]).
pub(crate) fn solve_on_tables(t: &Tables, theta: f64) -> Result<Assignment, OptError> {
    let low = lower(t, theta);
    let sol = low.problem.solve_milp()?;
    Ok(extract(t, &low, &sol))
}

/// The Eq 4.5–4.10 lowering restricted to the dominance-pruned candidate
/// space: one binary per *surviving* point instead of per `(i, j, k)`.
/// A dominated point can always be swapped for its dominator without
/// raising `t_exec` or any energy term, so the pruned MILP has exactly
/// the full problem's optimal cost — with a tableau (and branch set)
/// several times smaller.
struct PrunedLowering {
    problem: Problem,
    /// `offsets[i]`: first variable of thread `i`'s candidate block.
    offsets: Vec<usize>,
    texec_var: usize,
    t_scale: f64,
    e_scale: f64,
}

fn lower_pruned(p: &PreparedTables, theta: f64) -> PrunedLowering {
    let (t, st) = (&p.tables, &p.sorted);
    let m = t.m;
    let mut offsets = Vec::with_capacity(m);
    let mut n_x = 0usize;
    for i in 0..m {
        offsets.push(n_x);
        n_x += st.candidates(i).len();
    }
    let texec_var = n_x;

    // Normalize magnitudes (over the surviving points) so the simplex
    // works near 1.0.
    let surviving = (0..m).flat_map(|i| st.candidates(i).iter().map(move |&c| (i, c as usize)));
    let mut e_scale = 1e-30f64;
    let mut t_scale = 1e-30f64;
    for (i, idx) in surviving {
        e_scale = e_scale.max(t.energy[i][idx]);
        t_scale = t_scale.max(t.time[i][idx]);
    }

    let mut problem = Problem::minimize(n_x + 1);
    for i in 0..m {
        for (pos, &c) in st.candidates(i).iter().enumerate() {
            let var = offsets[i] + pos;
            problem.set_objective(var, t.energy[i][c as usize] / e_scale);
            problem.set_binary(var);
        }
    }
    // θ·t_exec with t_exec expressed in t_scale units: θ' = θ·t_scale/e_scale.
    problem.set_objective(texec_var, theta * t_scale / e_scale);

    for i in 0..m {
        let block = st.candidates(i);
        // Eq 4.10: one point per thread.
        let ones: Vec<(usize, f64)> = (0..block.len())
            .map(|pos| (offsets[i] + pos, 1.0))
            .collect();
        problem.constraint(&ones, Relation::Eq, 1.0);
        // Eq 4.6: Σ t_ijk x_ijk − t_exec ≤ 0 (in t_scale units).
        let mut coeffs: Vec<(usize, f64)> = block
            .iter()
            .enumerate()
            .map(|(pos, &c)| (offsets[i] + pos, t.time[i][c as usize] / t_scale))
            .collect();
        coeffs.push((texec_var, -1.0));
        problem.constraint(&coeffs, Relation::Le, 0.0);
    }
    PrunedLowering {
        problem,
        offsets,
        texec_var,
        t_scale,
        e_scale,
    }
}

/// Encodes Algorithm 1's optimum as a feasible solution of the pruned
/// lowering — the warm-start incumbent. minEnergy tie-breaking can pick
/// a dominated point, so each seed point is first remapped to a
/// surviving dominator (never raising time or energy). The objective is
/// computed with the problem's own scaled coefficients so the bound is
/// consistent with what the LP reports.
fn encode_incumbent(
    p: &PreparedTables,
    low: &PrunedLowering,
    seed: &Assignment,
    theta: f64,
) -> Solution {
    let (t, st) = (&p.tables, &p.sorted);
    let mut x = vec![0.0; low.texec_var + 1];
    let mut texec = 0.0f64;
    let mut energy_scaled = 0.0;
    for (i, point) in seed.points.iter().enumerate() {
        let idx = st.dominating_candidate(t, i, point.voltage_idx * t.s + point.tsr_idx);
        let pos = st
            .candidates(i)
            .iter()
            .position(|&c| c as usize == idx)
            .expect("dominating_candidate returns a surviving point");
        x[low.offsets[i] + pos] = 1.0;
        texec = texec.max(t.time[i][idx]);
        energy_scaled += t.energy[i][idx] / low.e_scale;
    }
    let texec_scaled = texec / low.t_scale;
    x[low.texec_var] = texec_scaled;
    let objective = energy_scaled + (theta * low.t_scale / low.e_scale) * texec_scaled;
    Solution { x, objective }
}

fn extract_pruned(p: &PreparedTables, low: &PrunedLowering, sol: &Solution) -> Assignment {
    let (t, st) = (&p.tables, &p.sorted);
    let mut points = Vec::with_capacity(t.m);
    for i in 0..t.m {
        let block = st.candidates(i);
        let chosen = (0..block.len())
            .find(|pos| sol.x[low.offsets[i] + pos] > 0.5)
            .expect("Eq 4.10 forces exactly one point per thread");
        points.push(t.point(block[chosen] as usize));
    }
    Assignment { points }
}

/// The warm-started MILP over shared [`PreparedTables`] — the batch hot
/// path: dominance-pruned lowering, incumbent seeded from Algorithm 1,
/// best-first branch-and-bound. Deliberately seeded from Algorithm 1 on
/// *this* θ (not the previous grid point's optimum): the seed is then
/// optimal, so the result never depends on how a sweep was chunked
/// across workers and the bit-identical-at-any-worker-count guarantee of
/// PR 2 holds.
pub(crate) fn solve_prepared(
    p: &PreparedTables,
    theta: f64,
    tuning: &MilpTuning,
) -> Result<Assignment, OptError> {
    let seed = poly::solve_prepared(p, theta)?;
    let low = lower_pruned(p, theta);
    let incumbent = encode_incumbent(p, &low, &seed, theta);
    let options = MilpOptions {
        incumbent: Some(incumbent),
        node_limit: tuning.node_limit,
        best_first: true,
    };
    let sol = low.problem.solve_milp_with(&options)?;
    Ok(extract_pruned(p, &low, &sol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::weighted_cost;
    use crate::poly::synts_poly;
    use timing::ErrorCurve;

    fn curve(delays: Vec<f64>) -> ErrorCurve {
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    fn small_instance(seed: u64) -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
        let mut cfg = SystemConfig::paper_default(10.0);
        cfg.voltages = timing::VoltageTable::from_volts([1.0, 0.86, 0.72]).expect("ok");
        cfg.tsr_levels = vec![0.64, 0.8, 1.0];
        let mut state = seed;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let profiles = (0..3)
            .map(|_| {
                let base = 0.3 + 0.5 * rand01();
                let spread = 0.1 + 0.3 * rand01();
                let delays: Vec<f64> = (0..100)
                    .map(|i| (base + spread * (i as f64 / 100.0)).min(1.0))
                    .collect();
                ThreadProfile::new(1_000.0 + 9_000.0 * rand01(), 1.0 + rand01(), curve(delays))
            })
            .collect();
        (cfg, profiles)
    }

    #[test]
    fn milp_matches_poly_across_thetas_and_instances() {
        for seed in [1u64, 7, 42, 1234] {
            let (cfg, profiles) = small_instance(seed);
            for theta in [0.0, 0.05, 1.0, 50.0] {
                let a_milp = synts_milp(&cfg, &profiles, theta).expect("milp");
                let a_poly = synts_poly(&cfg, &profiles, theta).expect("poly");
                let cm = weighted_cost(&cfg, &profiles, &a_milp, theta);
                let cp = weighted_cost(&cfg, &profiles, &a_poly, theta);
                assert!(
                    (cm - cp).abs() <= 1e-6 * cp.abs().max(1.0),
                    "seed {seed} theta {theta}: milp {cm} vs poly {cp}"
                );
            }
        }
    }

    #[test]
    fn milp_matches_exhaustive() {
        let (cfg, profiles) = small_instance(99);
        let theta = 1.0;
        let a_milp = synts_milp(&cfg, &profiles, theta).expect("milp");
        let a_ex = crate::exhaustive::synts_exhaustive(&cfg, &profiles, theta).expect("ex");
        let cm = weighted_cost(&cfg, &profiles, &a_milp, theta);
        let ce = weighted_cost(&cfg, &profiles, &a_ex, theta);
        assert!((cm - ce).abs() <= 1e-6 * ce.abs().max(1.0));
    }

    #[test]
    fn rejects_empty() {
        let (cfg, _) = small_instance(5);
        let empty: Vec<ThreadProfile<ErrorCurve>> = Vec::new();
        assert_eq!(
            synts_milp(&cfg, &empty, 1.0).expect_err("no threads"),
            OptError::NoThreads
        );
    }
}
