//! θ sweeps and Pareto-curve generation (Figs 6.11–6.16), dispatched
//! through the [`Solver`] trait and fanned out across the
//! [`crate::parallel::ThreadPool`].
//!
//! Every θ point is an independent solve against shared read-only inputs,
//! so [`pareto_sweep`] partitions the θ grid into contiguous chunks, runs
//! each chunk through [`Solver::solve_batch`] on a pool worker (one table
//! build per worker for the table-driven solvers), and collects results in
//! index order — the output is bit-identical to the sequential loop at any
//! worker count.
//!
//! [`Scheme`] is deprecated: it predates the [`Solver`] trait and
//! duplicated the registry's names and labels. Use registry keys
//! (`"synts_poly"`, `"nominal"`, …) with [`crate::SolverRegistry`] /
//! [`solver::default_solver`], and [`Solver::label`] for display.

use std::sync::Arc;

use timing::{EnergyDelay, ErrorModel};

use crate::error::OptError;
use crate::model::{evaluate, Assignment, SystemConfig, ThreadProfile};
use crate::parallel::ThreadPool;
use crate::solver::{self, SolveRequest, Solver};

/// The four schemes compared throughout the evaluation.
#[deprecated(
    since = "0.2.0",
    note = "use SolverRegistry keys (`\"synts_poly\"`, `\"nominal\"`, ...) and `Solver::label()` \
            for display; `Scheme` duplicated both and drifted"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Highest voltage, no scaling, no speculation.
    Nominal,
    /// Joint DVFS without speculation (`r = 1`).
    NoTs,
    /// Independent per-core timing speculation.
    PerCoreTs,
    /// The paper's synergistic scheme.
    SynTs,
}

#[allow(deprecated)]
impl Scheme {
    /// All schemes, in the paper's reporting order.
    pub const ALL: [Scheme; 4] = [
        Scheme::Nominal,
        Scheme::NoTs,
        Scheme::PerCoreTs,
        Scheme::SynTs,
    ];

    /// The [`crate::SolverRegistry`] key of this scheme.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Scheme::Nominal => "nominal",
            Scheme::NoTs => "no_ts",
            Scheme::PerCoreTs => "per_core_ts",
            Scheme::SynTs => "synts_poly",
        }
    }

    /// The solver implementing this scheme, resolved through the same
    /// name→solver mapping [`crate::SolverRegistry::with_defaults`]
    /// registers ([`solver::default_solver`]), so the dispatch table has
    /// a single source of truth.
    #[must_use]
    pub fn solver<M: ErrorModel + 'static>(self) -> Arc<dyn Solver<M>> {
        solver::default_solver(self.key()).expect("every Scheme key has a default solver")
    }
}

#[allow(deprecated)]
impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scheme::Nominal => "Nominal",
            Scheme::NoTs => "No-TS",
            Scheme::PerCoreTs => "Per-core TS",
            Scheme::SynTs => "SynTS",
        };
        f.write_str(s)
    }
}

/// Computes the assignment a scheme picks at weight `theta`, dispatching
/// through the [`Solver`] trait.
///
/// # Errors
///
/// Propagates [`OptError`] from the underlying solver.
#[deprecated(
    since = "0.2.0",
    note = "resolve a registry key via `solver::default_solver(name)` (or a `SolverRegistry`) \
            and call `solve` directly"
)]
#[allow(deprecated)]
pub fn assignment_for<M: ErrorModel + 'static>(
    scheme: Scheme,
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    theta: f64,
) -> Result<Assignment, OptError> {
    scheme.solver().solve(cfg, profiles, theta)
}

/// One point of a θ sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The weight used.
    pub theta: f64,
    /// The chosen assignment.
    pub assignment: Assignment,
    /// Its energy/time (absolute units).
    pub ed: EnergyDelay,
}

/// Sweeps `theta` over any [`Solver`], producing the raw points behind
/// the Pareto plots of Figs 6.11–6.16.
///
/// θ points fan out across a [`ThreadPool::from_env`] pool (worker count
/// from `SYNTS_THREADS`, else the machine); results are collected in θ
/// order and are bit-identical to the sequential loop. Use
/// [`pareto_sweep_pooled`] to pass an explicit pool.
///
/// # Errors
///
/// Propagates [`OptError`] from the solver — the first failing θ in grid
/// order, exactly as the sequential loop would report.
pub fn pareto_sweep<M: ErrorModel + Sync>(
    solver: &dyn Solver<M>,
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    thetas: &[f64],
) -> Result<Vec<SweepPoint>, OptError> {
    pareto_sweep_pooled(solver, cfg, profiles, thetas, ThreadPool::from_env())
}

/// [`pareto_sweep`] over an explicit [`ThreadPool`].
///
/// The θ grid is split into `pool.workers()` contiguous chunks; each
/// worker runs its chunk through one [`Solver::solve_batch`] call, so the
/// table-driven solvers build their time/energy tables once per worker
/// instead of once per θ. Collection is index-ordered, making the result
/// independent of worker count and scheduling.
///
/// # Errors
///
/// As [`pareto_sweep`].
pub fn pareto_sweep_pooled<M: ErrorModel + Sync>(
    solver: &dyn Solver<M>,
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    thetas: &[f64],
    pool: ThreadPool,
) -> Result<Vec<SweepPoint>, OptError> {
    let ranges = pool.chunk_ranges(thetas.len());
    let chunks = pool.try_map(&ranges, |_, range| {
        let grid = &thetas[range.clone()];
        let requests: Vec<SolveRequest<'_, M>> = grid
            .iter()
            .map(|&theta| SolveRequest::new(cfg, profiles, theta))
            .collect();
        solver
            .solve_batch(&requests)
            .into_iter()
            .zip(grid)
            .map(|(result, &theta)| {
                let assignment = result?;
                let ed = evaluate(cfg, profiles, &assignment);
                Ok(SweepPoint {
                    theta,
                    assignment,
                    ed,
                })
            })
            .collect::<Result<Vec<SweepPoint>, OptError>>()
    })?;
    Ok(chunks.into_iter().flatten().collect())
}

/// The θ at which energy and execution time contribute equally to Eq 4.4 at
/// the nominal operating point — the paper's "weights energy and execution
/// time equally" setting (Fig 6.18).
///
/// # Errors
///
/// Propagates [`OptError`] from the nominal baseline.
pub fn theta_equal_weight<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
) -> Result<f64, OptError> {
    let a = crate::baselines::nominal(cfg, profiles)?;
    let ed = evaluate(cfg, profiles, &a);
    Ok(ed.energy / ed.time)
}

/// A log-spaced θ grid centered on [`theta_equal_weight`], spanning
/// `10^-decades .. 10^decades` around it with `n` points.
///
/// # Errors
///
/// Propagates [`OptError`] from the nominal baseline.
pub fn default_theta_sweep<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    n: usize,
    decades: f64,
) -> Result<Vec<f64>, OptError> {
    let center = theta_equal_weight(cfg, profiles)?;
    if n <= 1 {
        return Ok(vec![center]);
    }
    Ok((0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64; // 0..1
            center * 10f64.powf(decades * (2.0 * t - 1.0))
        })
        .collect())
}

#[cfg(test)]
#[allow(deprecated)] // `Scheme` coverage stays until the type is removed.
mod tests {
    use super::*;
    use crate::baselines::nominal;
    use timing::{pareto_front, ErrorCurve};

    fn curve(delays: Vec<f64>) -> ErrorCurve {
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    fn workload() -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
        let cfg = SystemConfig::paper_default(10.0);
        let mk = |lo: f64, hi: f64| {
            curve(
                (0..200)
                    .map(|i| lo + (hi - lo) * (i as f64 / 200.0))
                    .collect(),
            )
        };
        let profiles = vec![
            ThreadProfile::new(8_000.0, 1.3, mk(0.7, 1.0)),
            ThreadProfile::new(9_000.0, 1.1, mk(0.5, 0.9)),
            ThreadProfile::new(10_000.0, 1.0, mk(0.35, 0.8)),
            ThreadProfile::new(7_000.0, 1.2, mk(0.45, 0.85)),
        ];
        (cfg, profiles)
    }

    #[test]
    fn sweep_produces_monotone_tradeoff_for_synts() {
        let (cfg, profiles) = workload();
        let thetas = default_theta_sweep(&cfg, &profiles, 9, 2.0).expect("ok");
        let pts = pareto_sweep(&solver::Poly, &cfg, &profiles, &thetas).expect("ok");
        // Higher theta -> no slower, and the sweep spans a real range.
        for w in pts.windows(2) {
            assert!(
                w[1].ed.time <= w[0].ed.time + 1e-9,
                "time must not rise with theta"
            );
        }
        assert!(
            pts[0].ed.time > pts[pts.len() - 1].ed.time,
            "sweep must spread"
        );
    }

    #[test]
    fn synts_weakly_dominates_baselines_on_the_front() {
        let (cfg, profiles) = workload();
        let thetas = default_theta_sweep(&cfg, &profiles, 7, 2.0).expect("ok");
        let synts = pareto_sweep(&*Scheme::SynTs.solver(), &cfg, &profiles, &thetas).expect("ok");
        let percore =
            pareto_sweep(&*Scheme::PerCoreTs.solver(), &cfg, &profiles, &thetas).expect("ok");
        // For every per-core point, some SynTS point is at least as good on
        // both axes (SynTS solves the joint problem optimally).
        for p in &percore {
            let dominated = synts.iter().any(|s| {
                s.ed.energy <= p.ed.energy * (1.0 + 1e-9) && s.ed.time <= p.ed.time * (1.0 + 1e-9)
            });
            assert!(dominated, "per-core point not covered by SynTS front");
        }
    }

    #[test]
    fn equal_weight_theta_balances_terms() {
        let (cfg, profiles) = workload();
        let theta = theta_equal_weight(&cfg, &profiles).expect("ok");
        let a = nominal(&cfg, &profiles).expect("ok");
        let ed = evaluate(&cfg, &profiles, &a);
        assert!(((theta * ed.time) / ed.energy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pareto_front_of_sweep_is_nontrivial() {
        let (cfg, profiles) = workload();
        let thetas = default_theta_sweep(&cfg, &profiles, 11, 2.0).expect("ok");
        let pts = pareto_sweep(&solver::Poly, &cfg, &profiles, &thetas).expect("ok");
        let eds: Vec<EnergyDelay> = pts.iter().map(|p| p.ed).collect();
        let front = pareto_front(&eds);
        assert!(front.len() >= 2, "expected a real trade-off curve");
    }

    #[test]
    fn scheme_display_names() {
        assert_eq!(Scheme::SynTs.to_string(), "SynTS");
        assert_eq!(Scheme::PerCoreTs.to_string(), "Per-core TS");
        assert_eq!(Scheme::NoTs.to_string(), "No-TS");
        assert_eq!(Scheme::Nominal.to_string(), "Nominal");
    }

    #[test]
    fn scheme_keys_resolve_in_the_registry() {
        let reg: crate::SolverRegistry = crate::SolverRegistry::with_defaults();
        for scheme in Scheme::ALL {
            let solver = reg.get(scheme.key()).expect("scheme key registered");
            assert_eq!(solver.name(), scheme.key());
            assert_eq!(
                scheme.solver::<ErrorCurve>().name(),
                solver.name(),
                "Scheme::solver and registry must agree"
            );
        }
    }

    #[test]
    fn assignment_for_matches_direct_solver_dispatch() {
        let (cfg, profiles) = workload();
        let theta = theta_equal_weight(&cfg, &profiles).expect("ok");
        for scheme in Scheme::ALL {
            let via_scheme = assignment_for(scheme, &cfg, &profiles, theta).expect("ok");
            let via_trait = scheme
                .solver::<ErrorCurve>()
                .solve(&cfg, &profiles, theta)
                .expect("ok");
            assert_eq!(via_scheme, via_trait, "{scheme}");
        }
    }
}
