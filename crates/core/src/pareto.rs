//! θ sweeps and Pareto-curve generation (Figs 6.11–6.16), dispatched
//! through the [`Solver`] trait and fanned out across the
//! [`crate::parallel::ThreadPool`].
//!
//! Every θ point is an independent solve against shared read-only inputs,
//! so [`pareto_sweep`] partitions the θ grid into contiguous chunks, runs
//! each chunk through [`Solver::solve_batch`] on a pool worker (the
//! table-driven solvers build their θ-independent state — time/energy
//! tables plus the sorted/dominance-pruned companion — once per worker
//! and dedupe repeated θ values), and collects results in index order —
//! the output is bit-identical to the sequential loop at any worker
//! count.
//!
//! Schemes are addressed by registry key (`"synts_poly"`, `"nominal"`,
//! …) through [`crate::SolverRegistry`] /
//! [`crate::solver::default_solver`], with [`Solver::label`] for
//! display — the former `Scheme` enum that duplicated both is gone.

use timing::{EnergyDelay, ErrorModel};

use crate::error::OptError;
use crate::model::{evaluate, Assignment, SystemConfig, ThreadProfile};
use crate::parallel::ThreadPool;
use crate::solver::{SolveRequest, Solver};

/// One point of a θ sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The weight used.
    pub theta: f64,
    /// The chosen assignment.
    pub assignment: Assignment,
    /// Its energy/time (absolute units).
    pub ed: EnergyDelay,
}

/// Sweeps `theta` over any [`Solver`], producing the raw points behind
/// the Pareto plots of Figs 6.11–6.16.
///
/// θ points fan out across a [`ThreadPool::from_env`] pool (worker count
/// from `SYNTS_THREADS`, else the machine); results are collected in θ
/// order and are bit-identical to the sequential loop. Use
/// [`pareto_sweep_pooled`] to pass an explicit pool.
///
/// # Errors
///
/// Propagates [`OptError`] from the solver — the first failing θ in grid
/// order, exactly as the sequential loop would report.
pub fn pareto_sweep<M: ErrorModel + Sync>(
    solver: &dyn Solver<M>,
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    thetas: &[f64],
) -> Result<Vec<SweepPoint>, OptError> {
    pareto_sweep_pooled(solver, cfg, profiles, thetas, ThreadPool::from_env())
}

/// [`pareto_sweep`] over an explicit [`ThreadPool`].
///
/// The θ grid is split into `pool.workers()` contiguous chunks; each
/// worker runs its chunk through one [`Solver::solve_batch`] call, so the
/// table-driven solvers build their time/energy tables once per worker
/// instead of once per θ. Collection is index-ordered, making the result
/// independent of worker count and scheduling.
///
/// # Errors
///
/// As [`pareto_sweep`].
pub fn pareto_sweep_pooled<M: ErrorModel + Sync>(
    solver: &dyn Solver<M>,
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    thetas: &[f64],
    pool: ThreadPool,
) -> Result<Vec<SweepPoint>, OptError> {
    let ranges = pool.chunk_ranges(thetas.len());
    let chunks = pool.try_map(&ranges, |_, range| {
        let grid = &thetas[range.clone()];
        let requests: Vec<SolveRequest<'_, M>> = grid
            .iter()
            .map(|&theta| SolveRequest::new(cfg, profiles, theta))
            .collect();
        solver
            .solve_batch(&requests)
            .into_iter()
            .zip(grid)
            .map(|(result, &theta)| {
                let assignment = result?;
                let ed = evaluate(cfg, profiles, &assignment);
                Ok(SweepPoint {
                    theta,
                    assignment,
                    ed,
                })
            })
            .collect::<Result<Vec<SweepPoint>, OptError>>()
    })?;
    Ok(chunks.into_iter().flatten().collect())
}

/// The θ at which energy and execution time contribute equally to Eq 4.4 at
/// the nominal operating point — the paper's "weights energy and execution
/// time equally" setting (Fig 6.18).
///
/// # Errors
///
/// Propagates [`OptError`] from the nominal baseline.
pub fn theta_equal_weight<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
) -> Result<f64, OptError> {
    let a = crate::baselines::nominal(cfg, profiles)?;
    let ed = evaluate(cfg, profiles, &a);
    Ok(ed.energy / ed.time)
}

/// A log-spaced θ grid around `center`: `n` points spanning
/// `center·10^-decades ..= center·10^decades`. The shared grid rule
/// behind [`default_theta_sweep`] and the scenario layer's
/// `ThetaSpec::LogAroundEqualWeight`.
#[must_use]
pub fn log_theta_grid(center: f64, n: usize, decades: f64) -> Vec<f64> {
    if n <= 1 {
        return vec![center];
    }
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64; // 0..1
            center * 10f64.powf(decades * (2.0 * t - 1.0))
        })
        .collect()
}

/// A log-spaced θ grid centered on [`theta_equal_weight`], spanning
/// `10^-decades .. 10^decades` around it with `n` points.
///
/// # Errors
///
/// Propagates [`OptError`] from the nominal baseline.
pub fn default_theta_sweep<M: ErrorModel>(
    cfg: &SystemConfig,
    profiles: &[ThreadProfile<M>],
    n: usize,
    decades: f64,
) -> Result<Vec<f64>, OptError> {
    let center = theta_equal_weight(cfg, profiles)?;
    Ok(log_theta_grid(center, n, decades))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::nominal;
    use crate::solver;
    use timing::{pareto_front, ErrorCurve};

    fn curve(delays: Vec<f64>) -> ErrorCurve {
        ErrorCurve::from_normalized_delays(delays).expect("non-empty")
    }

    fn workload() -> (SystemConfig, Vec<ThreadProfile<ErrorCurve>>) {
        let cfg = SystemConfig::paper_default(10.0);
        let mk = |lo: f64, hi: f64| {
            curve(
                (0..200)
                    .map(|i| lo + (hi - lo) * (i as f64 / 200.0))
                    .collect(),
            )
        };
        let profiles = vec![
            ThreadProfile::new(8_000.0, 1.3, mk(0.7, 1.0)),
            ThreadProfile::new(9_000.0, 1.1, mk(0.5, 0.9)),
            ThreadProfile::new(10_000.0, 1.0, mk(0.35, 0.8)),
            ThreadProfile::new(7_000.0, 1.2, mk(0.45, 0.85)),
        ];
        (cfg, profiles)
    }

    #[test]
    fn sweep_produces_monotone_tradeoff_for_synts() {
        let (cfg, profiles) = workload();
        let thetas = default_theta_sweep(&cfg, &profiles, 9, 2.0).expect("ok");
        let pts = pareto_sweep(&solver::Poly, &cfg, &profiles, &thetas).expect("ok");
        // Higher theta -> no slower, and the sweep spans a real range.
        for w in pts.windows(2) {
            assert!(
                w[1].ed.time <= w[0].ed.time + 1e-9,
                "time must not rise with theta"
            );
        }
        assert!(
            pts[0].ed.time > pts[pts.len() - 1].ed.time,
            "sweep must spread"
        );
    }

    #[test]
    fn synts_weakly_dominates_baselines_on_the_front() {
        let (cfg, profiles) = workload();
        let thetas = default_theta_sweep(&cfg, &profiles, 7, 2.0).expect("ok");
        let poly = solver::default_solver::<ErrorCurve>("synts_poly").expect("registered");
        let percore_solver =
            solver::default_solver::<ErrorCurve>("per_core_ts").expect("registered");
        let synts = pareto_sweep(&*poly, &cfg, &profiles, &thetas).expect("ok");
        let percore = pareto_sweep(&*percore_solver, &cfg, &profiles, &thetas).expect("ok");
        // For every per-core point, some SynTS point is at least as good on
        // both axes (SynTS solves the joint problem optimally).
        for p in &percore {
            let dominated = synts.iter().any(|s| {
                s.ed.energy <= p.ed.energy * (1.0 + 1e-9) && s.ed.time <= p.ed.time * (1.0 + 1e-9)
            });
            assert!(dominated, "per-core point not covered by SynTS front");
        }
    }

    #[test]
    fn equal_weight_theta_balances_terms() {
        let (cfg, profiles) = workload();
        let theta = theta_equal_weight(&cfg, &profiles).expect("ok");
        let a = nominal(&cfg, &profiles).expect("ok");
        let ed = evaluate(&cfg, &profiles, &a);
        assert!(((theta * ed.time) / ed.energy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pareto_front_of_sweep_is_nontrivial() {
        let (cfg, profiles) = workload();
        let thetas = default_theta_sweep(&cfg, &profiles, 11, 2.0).expect("ok");
        let pts = pareto_sweep(&solver::Poly, &cfg, &profiles, &thetas).expect("ok");
        let eds: Vec<EnergyDelay> = pts.iter().map(|p| p.ed).collect();
        let front = pareto_front(&eds);
        assert!(front.len() >= 2, "expected a real trade-off curve");
    }

    #[test]
    fn registry_keys_and_labels_cover_the_evaluation_schemes() {
        let reg: crate::SolverRegistry = crate::SolverRegistry::with_defaults();
        for (key, label) in [
            ("nominal", "Nominal"),
            ("no_ts", "No-TS"),
            ("per_core_ts", "Per-core TS"),
            ("synts_poly", "SynTS"),
        ] {
            let from_registry = reg.get(key).expect("registered");
            assert_eq!(from_registry.name(), key);
            assert_eq!(from_registry.label(), label);
            let direct = solver::default_solver::<ErrorCurve>(key).expect("constructible");
            assert_eq!(
                direct.name(),
                from_registry.name(),
                "default_solver and registry must agree"
            );
        }
    }

    #[test]
    fn log_theta_grid_is_symmetric_and_centered() {
        let grid = log_theta_grid(2.0, 9, 2.0);
        assert_eq!(grid.len(), 9);
        assert!((grid[4] - 2.0).abs() < 1e-12, "middle point is the center");
        assert!((grid[0] - 0.02).abs() < 1e-12, "left edge is center/10^2");
        assert!((grid[8] - 200.0).abs() < 1e-9, "right edge is center*10^2");
        assert_eq!(log_theta_grid(3.5, 1, 2.0), vec![3.5], "n=1 collapses");
    }
}
