//! [`Experiment`] — the single entry point that turns a
//! [`ScenarioSpec`] into a [`Report`].
//!
//! The runner owns the whole data-driven path: characterize (or accept a
//! pre-characterized [`BenchmarkData`]), select intervals, resolve the θ
//! grid, dispatch every scheme through the [`SolverRegistry`], fan the
//! per-interval batched solves across the [`ThreadPool`], and assemble
//! typed records with Pareto fronts and invariant checks. Results are
//! bit-identical at any worker count: intervals are mapped in index
//! order and each interval runs its whole θ grid through one
//! [`crate::Solver::solve_batch`] call, exactly as the sequential loop
//! would.

use std::sync::Arc;

use archsim::{simulate_barrier, CoreSetting, RazorCore};
use timing::{pareto_front, EnergyDelay, ErrorCurve};

use crate::cache::{characterize_cached, CharCache};
use crate::error::OptError;
use crate::experiments::BenchmarkData;
use crate::model::{evaluate, Assignment, SystemConfig, ThreadProfile};
use crate::parallel::{worker_count, ThreadPool};
use crate::scenario::report::{Dataset, Record, Report, ReportCheck};
use crate::scenario::spec::{IntervalSelection, ScenarioSpec};
use crate::solver::{Objective, SolveRequest, Solver, SolverRegistry};

/// A configured scenario run: a spec plus the registry it resolves
/// scheme keys against.
pub struct Experiment {
    spec: ScenarioSpec,
    registry: SolverRegistry<ErrorCurve>,
    cache: CharCache,
}

impl Experiment {
    /// An experiment over the default registry
    /// ([`SolverRegistry::with_defaults`]) and the environment-resolved
    /// characterization cache (`SYNTS_CACHE_DIR`).
    #[must_use]
    pub fn new(spec: ScenarioSpec) -> Experiment {
        Experiment {
            spec,
            registry: SolverRegistry::with_defaults(),
            cache: CharCache::from_env(),
        }
    }

    /// Replaces the registry (to resolve schemes against custom or
    /// re-parameterized solvers).
    #[must_use]
    pub fn with_registry(mut self, registry: SolverRegistry<ErrorCurve>) -> Experiment {
        self.registry = registry;
        self
    }

    /// Replaces the characterization cache ([`CharCache::disabled`] to
    /// force a fresh gate-level characterization on every run).
    #[must_use]
    pub fn with_cache(mut self, cache: CharCache) -> Experiment {
        self.cache = cache;
        self
    }

    /// The spec this experiment runs.
    #[must_use]
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Characterizes the spec's benchmark/stage at the spec's quality
    /// and runs the scenario.
    ///
    /// Characterization consults the on-disk cache (a warm entry skips
    /// gate simulation, bit-identically) and fans a cold one across the
    /// spec's worker pool — the same pool the solve phase uses.
    ///
    /// # Errors
    ///
    /// Characterization failures, unknown scheme keys (listing the
    /// registered ones) and solver errors, as [`OptError`].
    pub fn run(&self) -> Result<Report, OptError> {
        // Resolve every named scheme first so a typo fails in
        // microseconds, not after a full characterization run.
        for key in self.spec.schemes.iter().chain(&self.spec.normalize_to) {
            self.registry.get(key)?;
        }
        let data = characterize_cached(
            self.spec.benchmark,
            self.spec.stage,
            &self.spec.quality.harness(),
            &self.cache,
            ThreadPool::new(worker_count(self.spec.workers)),
        )?;
        self.run_on(&data)
    }

    /// Runs the scenario over already-characterized data — the path the
    /// figure generators use to share one corpus across many scenarios
    /// (the spec's `quality` only governs [`Experiment::run`]'s own
    /// characterization; `data` is taken as-is).
    ///
    /// # Errors
    ///
    /// [`OptError::BadConfig`] if `data` is for a different
    /// benchmark/stage than the spec, otherwise as [`Experiment::run`].
    pub fn run_on(&self, data: &BenchmarkData) -> Result<Report, OptError> {
        let spec = &self.spec;
        if data.benchmark != spec.benchmark || data.stage != spec.stage {
            return Err(OptError::BadConfig(
                "characterized data does not match the spec's benchmark/stage",
            ));
        }
        let cfg = data.system_config();
        let intervals_used = select_intervals(spec, data)?;
        let profile_sets: Vec<Vec<ThreadProfile<ErrorCurve>>> = intervals_used
            .iter()
            .map(|&i| data.intervals[i].profiles())
            .collect();

        let theta_center = equal_weight_center(&cfg, &profile_sets)?;
        let theta_grid = spec.thetas.resolve(theta_center);
        let pool = ThreadPool::new(worker_count(spec.workers));

        // Resolve every scheme up front so an unknown key fails before
        // any solving starts, with the registered keys in the message.
        let solvers: Vec<(String, Arc<dyn Solver<ErrorCurve>>)> = spec
            .schemes
            .iter()
            .map(|key| Ok((key.clone(), self.registry.get(key)?)))
            .collect::<Result<_, OptError>>()?;

        let baseline = match &spec.normalize_to {
            Some(key) => {
                let solver = self.registry.get(key)?;
                let (sums, _) =
                    run_scheme(pool, &cfg, &profile_sets, &*solver, &[theta_center], false)?;
                Some(sums[0])
            }
            None => None,
        };

        let mut datasets = Vec::with_capacity(solvers.len());
        for (key, solver) in &solvers {
            let (sums, assignments) = run_scheme(
                pool,
                &cfg,
                &profile_sets,
                &**solver,
                &theta_grid,
                spec.record_assignments,
            )?;
            let records: Vec<Record> = theta_grid
                .iter()
                .enumerate()
                .map(|(j, &theta)| Record {
                    theta,
                    ed: sums[j],
                    normalized: baseline.map(|base| sums[j].normalized_to(base)),
                    assignments: assignments
                        .as_ref()
                        .map(|per_interval| per_interval.iter().map(|iv| iv[j].clone()).collect()),
                })
                .collect();
            let pareto = pareto_front(&sums);
            datasets.push(Dataset {
                scheme: key.clone(),
                label: solver.label().to_string(),
                records,
                pareto,
            });
        }

        let mut checks = dominance_checks(&solvers, &theta_grid, &datasets);
        if spec.verify_model {
            // Verify the first *speculating* scheme so the simulation
            // actually exercises the Razor error/replay path; a
            // zero-speculation baseline would pass vacuously.
            let verify_idx = solvers
                .iter()
                .position(|(_, s)| s.capabilities().speculates)
                .unwrap_or(0);
            checks.push(model_vs_sim_check(
                &cfg,
                data,
                intervals_used[0],
                &*solvers[verify_idx].1,
                theta_grid[0],
            )?);
        }

        Ok(Report {
            spec: spec.clone(),
            tnom_v1: data.tnom_v1,
            intervals_used,
            theta_center,
            theta_grid,
            baseline,
            datasets,
            checks,
        })
    }
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("spec", &self.spec.name)
            .field("registry", &self.registry.len())
            .finish()
    }
}

/// The equal-weight θ of a set of interval profiles: Σ nominal energy /
/// Σ nominal time (the paper's Fig 6.18 weighting). Shared by the runner
/// and the shard planner so both resolve a spec's θ grid to the same
/// bits.
pub(crate) fn equal_weight_center(
    cfg: &SystemConfig,
    profile_sets: &[Vec<ThreadProfile<ErrorCurve>>],
) -> Result<f64, OptError> {
    let mut nominal_energy = 0.0;
    let mut nominal_time = 0.0;
    for profiles in profile_sets {
        let a = crate::baselines::nominal(cfg, profiles)?;
        let ed = evaluate(cfg, profiles, &a);
        nominal_energy += ed.energy;
        nominal_time += ed.time;
    }
    if nominal_time <= 0.0 {
        return Err(OptError::BadConfig(
            "the selected intervals carry no nominal execution time (idle stage?)",
        ));
    }
    Ok(nominal_energy / nominal_time)
}

pub(crate) fn select_intervals(
    spec: &ScenarioSpec,
    data: &BenchmarkData,
) -> Result<Vec<usize>, OptError> {
    if data.intervals.is_empty() {
        return Err(OptError::BadConfig("characterized data has no intervals"));
    }
    Ok(match spec.intervals {
        IntervalSelection::All => (0..data.intervals.len()).collect(),
        IntervalSelection::MostHeterogeneous => vec![data.most_heterogeneous_interval()],
        IntervalSelection::Index(i) => {
            if i >= data.intervals.len() {
                return Err(OptError::Spec(format!(
                    "scenario spec: interval index {i} out of range (benchmark has {})",
                    data.intervals.len()
                )));
            }
            vec![i]
        }
    })
}

/// Runs one solver over `intervals × thetas`: intervals fan out across
/// the pool, each interval runs its whole θ grid through one
/// `solve_batch` call (one table build per interval for the
/// table-driven solvers), and per-θ energy/time is summed in interval
/// order — numerically identical to the sequential nested loop.
#[allow(clippy::type_complexity)]
fn run_scheme(
    pool: ThreadPool,
    cfg: &SystemConfig,
    profile_sets: &[Vec<ThreadProfile<ErrorCurve>>],
    solver: &dyn Solver<ErrorCurve>,
    thetas: &[f64],
    keep_assignments: bool,
) -> Result<(Vec<EnergyDelay>, Option<Vec<Vec<Assignment>>>), OptError> {
    let per_interval: Vec<Vec<(Assignment, EnergyDelay)>> =
        pool.try_map(profile_sets, |_, profiles| {
            let requests: Vec<SolveRequest<'_, ErrorCurve>> = thetas
                .iter()
                .map(|&theta| SolveRequest::new(cfg, profiles, theta))
                .collect();
            solver
                .solve_batch(&requests)
                .into_iter()
                .map(|result| {
                    result.map(|a| {
                        let ed = evaluate(cfg, profiles, &a);
                        (a, ed)
                    })
                })
                .collect::<Result<Vec<(Assignment, EnergyDelay)>, OptError>>()
        })?;
    let mut sums = vec![EnergyDelay::new(0.0, 0.0); thetas.len()];
    for interval in &per_interval {
        for (acc, (_, ed)) in sums.iter_mut().zip(interval) {
            acc.energy += ed.energy;
            acc.time += ed.time;
        }
    }
    let assignments = keep_assignments.then(|| {
        per_interval
            .into_iter()
            .map(|iv| iv.into_iter().map(|(a, _)| a).collect())
            .collect()
    });
    Ok((sums, assignments))
}

/// For every exact solver of the weighted objective, checks that its
/// Eq 4.4 cost lower-bounds every other scheme's at every θ — the
/// provable form of the "SynTS dominates the baselines" figures.
/// Shared with [`crate::scenario::service`]'s merge, which recomputes
/// the checks over the reassembled grid.
pub(crate) fn dominance_checks(
    solvers: &[(String, Arc<dyn Solver<ErrorCurve>>)],
    theta_grid: &[f64],
    datasets: &[Dataset],
) -> Vec<ReportCheck> {
    let mut checks = Vec::new();
    for (i, (_, solver)) in solvers.iter().enumerate() {
        let caps = solver.capabilities();
        if !(caps.exact && caps.objective == Objective::WeightedEnergyTime) {
            continue;
        }
        for (j, other) in datasets.iter().enumerate() {
            if i == j {
                continue;
            }
            let pass = theta_grid.iter().enumerate().all(|(k, &theta)| {
                let cost = |ed: EnergyDelay| ed.energy + theta * ed.time;
                cost(datasets[i].records[k].ed) <= cost(other.records[k].ed) * (1.0 + 1e-9)
            });
            checks.push(ReportCheck::new(
                format!(
                    "{}'s weighted cost lower-bounds {} at every theta",
                    datasets[i].label, other.label
                ),
                pass,
            ));
        }
    }
    checks
}

/// Checks that the analytic Eq 4.1–4.3 evaluation agrees with the
/// instruction-by-instruction Razor simulator on one interval, for the
/// first scheme's assignment. Profiles are rebuilt over the subsampled
/// trace population so the simulator and the model see the same `N`.
fn model_vs_sim_check(
    cfg: &SystemConfig,
    data: &BenchmarkData,
    interval: usize,
    solver: &dyn Solver<ErrorCurve>,
    theta: f64,
) -> Result<ReportCheck, OptError> {
    let iv = &data.intervals[interval];
    if iv.threads.iter().any(|t| t.normalized_delays.is_empty()) {
        return Ok(ReportCheck::new(
            "model-vs-simulation agreement skipped (a thread has no stage activity)",
            true,
        ));
    }
    let traces: Vec<&[f64]> = iv
        .threads
        .iter()
        .map(|t| t.normalized_delays.as_slice())
        .collect();
    let profiles: Vec<ThreadProfile<ErrorCurve>> = iv
        .threads
        .iter()
        .map(|t| {
            Ok(ThreadProfile::new(
                t.normalized_delays.len() as f64,
                t.cpi_base,
                ErrorCurve::from_normalized_delays(t.normalized_delays.clone())?,
            ))
        })
        .collect::<Result<_, OptError>>()?;
    let assignment = solver.solve(cfg, &profiles, theta)?;
    let predicted = evaluate(cfg, &profiles, &assignment);
    let settings: Vec<CoreSetting> = assignment
        .points
        .iter()
        .map(|p| CoreSetting {
            voltage: cfg.voltages.levels()[p.voltage_idx],
            tsr: cfg.tsr_levels[p.tsr_idx],
        })
        .collect();
    let cpi: Vec<f64> = iv.threads.iter().map(|t| t.cpi_base).collect();
    let sim = simulate_barrier(
        data.tnom_v1,
        &settings,
        &traces,
        &cpi,
        cfg.alpha,
        RazorCore {
            c_penalty: cfg.c_penalty as u64,
        },
    );
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
    let pass = rel(sim.texec, predicted.time) < 1e-9 && rel(sim.energy, predicted.energy) < 1e-9;
    Ok(ReportCheck::new(
        format!(
            "analytic Eq 4.1-4.3 matches the cycle-level Razor simulation \
             for {} on interval {interval}",
            solver.label()
        ),
        pass,
    ))
}
