//! Shard planning and report merging — the fleet-facing decomposition
//! of one [`ScenarioSpec`] into independently runnable pieces.
//!
//! A spec's work is a grid: (selected intervals) × (θ points) × (schemes).
//! The θ axis is embarrassingly parallel *across machines*, not just
//! across threads: every θ point is one `solve_batch` entry against the
//! same characterized data, and characterization itself is served from
//! the shared content-addressed cache (`SYNTS_CACHE_DIR`). [`ShardPlan`]
//! splits the resolved θ grid into contiguous chunks — each [`Shard`] is
//! a complete, self-describing [`ScenarioSpec`] with an explicit
//! [`ThetaSpec::Grid`] — and [`Report::merge`] reassembles the partial
//! reports into one that is **bit-identical** (canonical JSON and all)
//! to a monolithic [`Experiment::run`] on the original spec:
//!
//! * the θ grid is resolved *once*, by the planner, through the same
//!   [`equal_weight_center`] the runner uses, so shard grids concatenate
//!   back to exactly the monolithic grid;
//! * per-record energy/time/normalization is a pure function of
//!   (data, scheme, θ) and data is bit-identical under the cache, so
//!   partial records are the monolithic records;
//! * Pareto fronts and dominance checks are *recomputed* over the merged
//!   record set (a front is not a per-chunk property);
//! * the model-vs-simulation check runs at `theta_grid[0]`, which lives
//!   in shard 0 — the planner therefore enables `verify_model` only
//!   there, and the merge splices that check back in after the
//!   recomputed dominance checks, exactly where the monolithic runner
//!   puts it.
//!
//! ```no_run
//! use synts_core::scenario::{Experiment, ScenarioSpec, ShardPlan, ThetaSpec};
//! use synts_core::SolverRegistry;
//! use workloads::Benchmark;
//! use circuits::StageKind;
//!
//! # fn main() -> Result<(), synts_core::OptError> {
//! let spec = ScenarioSpec::new("sweep", Benchmark::Radix, StageKind::Decode)
//!     .thetas(ThetaSpec::LogAroundEqualWeight { points: 9, decades: 2.0 });
//! let plan = ShardPlan::plan_cached(&spec, 4)?;
//! let parts = plan
//!     .shards()
//!     .iter()
//!     .map(|shard| Experiment::new(shard.spec.clone()).run())
//!     .collect::<Result<Vec<_>, _>>()?;
//! let merged = plan.merge(&parts, &SolverRegistry::with_defaults())?;
//! assert_eq!(merged.theta_grid.len(), 9);
//! # Ok(())
//! # }
//! ```

use std::ops::Range;
use std::sync::Arc;

use timing::{pareto_front, ErrorCurve};

use crate::cache::{characterize_cached, CharCache};
use crate::error::OptError;
use crate::experiments::BenchmarkData;
use crate::model::ThreadProfile;
use crate::parallel::{worker_count, ThreadPool};
use crate::scenario::report::{Dataset, Report};
use crate::scenario::runner::{dominance_checks, equal_weight_center, select_intervals};
use crate::scenario::spec::{ScenarioSpec, ThetaSpec};
use crate::solver::{Solver, SolverRegistry};

/// One independently runnable piece of a sharded scenario: the original
/// spec restricted to a contiguous θ-chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    /// Position of this shard in the plan (and of its chunk in the grid).
    pub index: usize,
    /// The half-open range of global θ-grid indices this shard covers.
    pub theta_range: Range<usize>,
    /// The derived spec: same benchmark/stage/schemes/intervals/quality,
    /// θs pinned to an explicit [`ThetaSpec::Grid`] chunk, and
    /// `verify_model` kept only on shard 0 (where `theta_grid[0]` lives).
    pub spec: ScenarioSpec,
}

/// A deterministic decomposition of one [`ScenarioSpec`] into
/// [`Shard`]s, carrying everything needed to merge the partial reports
/// back into the monolithic one.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    spec: ScenarioSpec,
    theta_center: f64,
    theta_grid: Vec<f64>,
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Plans `spec` against already-characterized `data`, splitting the
    /// resolved θ grid into at most `max_shards` contiguous near-equal
    /// chunks (clamped to at least 1; a grid shorter than `max_shards`
    /// yields one shard per θ point).
    ///
    /// # Errors
    ///
    /// [`OptError::BadConfig`] if `data` is for a different
    /// benchmark/stage, the spec selects no intervals, or the resolved
    /// grid is empty; [`OptError::Spec`] on an out-of-range interval
    /// index.
    pub fn plan(
        spec: &ScenarioSpec,
        data: &BenchmarkData,
        max_shards: usize,
    ) -> Result<ShardPlan, OptError> {
        if data.benchmark != spec.benchmark || data.stage != spec.stage {
            return Err(OptError::BadConfig(
                "characterized data does not match the spec's benchmark/stage",
            ));
        }
        if spec.schemes.is_empty() {
            return Err(OptError::BadConfig("the spec names no schemes"));
        }
        let cfg = data.system_config();
        let intervals_used = select_intervals(spec, data)?;
        let profile_sets: Vec<Vec<ThreadProfile<ErrorCurve>>> = intervals_used
            .iter()
            .map(|&i| data.intervals[i].profiles())
            .collect();
        let theta_center = equal_weight_center(&cfg, &profile_sets)?;
        let theta_grid = spec.thetas.resolve(theta_center);
        if theta_grid.is_empty() {
            return Err(OptError::BadConfig("the spec resolves to an empty θ grid"));
        }
        // The same contiguous near-equal chunking the thread pool uses,
        // so a plan at N shards mirrors a sweep at N workers.
        let ranges = ThreadPool::new(max_shards.max(1)).chunk_ranges(theta_grid.len());
        let shards = ranges
            .into_iter()
            .enumerate()
            .map(|(index, range)| {
                let mut shard_spec = spec.clone();
                shard_spec.name = format!("{}@shard{index}", spec.name);
                shard_spec.thetas = ThetaSpec::Grid(theta_grid[range.clone()].to_vec());
                shard_spec.verify_model = spec.verify_model && index == 0;
                Shard {
                    index,
                    theta_range: range,
                    spec: shard_spec,
                }
            })
            .collect();
        Ok(ShardPlan {
            spec: spec.clone(),
            theta_center,
            theta_grid,
            shards,
        })
    }

    /// Plans `spec` by characterizing its benchmark/stage first, through
    /// the environment-resolved cache (`SYNTS_CACHE_DIR`) — the entry
    /// point the service uses on job submission. The characterization
    /// this pays warms the cache the shards then hit.
    ///
    /// # Errors
    ///
    /// Characterization failures, plus everything [`ShardPlan::plan`]
    /// raises.
    pub fn plan_cached(spec: &ScenarioSpec, max_shards: usize) -> Result<ShardPlan, OptError> {
        Self::plan_cached_with(spec, max_shards, &CharCache::from_env())
    }

    /// [`ShardPlan::plan_cached`] against an explicit cache.
    ///
    /// # Errors
    ///
    /// As [`ShardPlan::plan_cached`].
    pub fn plan_cached_with(
        spec: &ScenarioSpec,
        max_shards: usize,
        cache: &CharCache,
    ) -> Result<ShardPlan, OptError> {
        let data = characterize_cached(
            spec.benchmark,
            spec.stage,
            &spec.quality.harness(),
            cache,
            ThreadPool::new(worker_count(spec.workers)),
        )?;
        Self::plan(spec, &data, max_shards)
    }

    /// The original (unsharded) spec.
    #[must_use]
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The equal-weight θ the grid was resolved around.
    #[must_use]
    pub fn theta_center(&self) -> f64 {
        self.theta_center
    }

    /// The full resolved θ grid, in monolithic record order.
    #[must_use]
    pub fn theta_grid(&self) -> &[f64] {
        &self.theta_grid
    }

    /// The shards, in θ-chunk order.
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Merges the shards' partial reports (one per shard, in shard
    /// order) into the monolithic report — see [`Report::merge`].
    ///
    /// # Errors
    ///
    /// As [`Report::merge`].
    pub fn merge(
        &self,
        parts: &[Report],
        registry: &SolverRegistry<ErrorCurve>,
    ) -> Result<Report, OptError> {
        Report::merge(self, parts, registry)
    }
}

impl Report {
    /// Reassembles one report per [`Shard`] of `plan` (in shard order)
    /// into the report a monolithic [`Experiment::run`] of the plan's
    /// spec would produce — bit-identical, canonical JSON included.
    ///
    /// Partial `Dataset`s are matched by scheme key, records
    /// concatenated in θ-chunk order, Pareto fronts and dominance checks
    /// recomputed over the merged set (resolving scheme capabilities
    /// against `registry`), and shard 0's model-vs-simulation check (if
    /// the spec asked for one) spliced back in last.
    ///
    /// # Errors
    ///
    /// [`OptError::Spec`] when the parts do not line up with the plan
    /// (wrong count or order, a θ chunk or dataset mismatch, or
    /// cross-shard disagreement on the characterized inputs);
    /// [`OptError::UnknownSolver`] if a scheme key is not in `registry`.
    ///
    /// [`Experiment::run`]: crate::scenario::Experiment::run
    pub fn merge(
        plan: &ShardPlan,
        parts: &[Report],
        registry: &SolverRegistry<ErrorCurve>,
    ) -> Result<Report, OptError> {
        let bad = |msg: String| OptError::Spec(format!("report merge: {msg}"));
        if parts.len() != plan.shards.len() {
            return Err(bad(format!(
                "expected {} partial reports (one per shard), got {}",
                plan.shards.len(),
                parts.len()
            )));
        }
        let first = &parts[0];
        for (shard, part) in plan.shards.iter().zip(parts) {
            if part.spec != shard.spec {
                return Err(bad(format!(
                    "part {} was produced by spec '{}', expected shard spec '{}' \
                     (parts must arrive in shard order)",
                    shard.index, part.spec.name, shard.spec.name
                )));
            }
            let expected = &plan.theta_grid[shard.theta_range.clone()];
            if !bits_eq(&part.theta_grid, expected) {
                return Err(bad(format!(
                    "part {}'s θ grid does not match its planned chunk",
                    shard.index
                )));
            }
            if part.tnom_v1.to_bits() != first.tnom_v1.to_bits()
                || part.theta_center.to_bits() != first.theta_center.to_bits()
                || part.intervals_used != first.intervals_used
                || part.baseline.map(ed_bits) != first.baseline.map(ed_bits)
            {
                return Err(bad(format!(
                    "part {} disagrees with part 0 on the characterized inputs \
                     (was it run against a different cache or library?)",
                    shard.index
                )));
            }
            if part.datasets.len() != plan.spec.schemes.len()
                || part
                    .datasets
                    .iter()
                    .zip(&plan.spec.schemes)
                    .any(|(ds, scheme)| &ds.scheme != scheme)
            {
                return Err(bad(format!(
                    "part {}'s datasets do not cover the spec's schemes",
                    shard.index
                )));
            }
        }
        if first.theta_center.to_bits() != plan.theta_center.to_bits() {
            return Err(bad(
                "the parts' equal-weight θ disagrees with the plan's".to_string()
            ));
        }

        let solvers: Vec<(String, Arc<dyn Solver<ErrorCurve>>)> = plan
            .spec
            .schemes
            .iter()
            .map(|key| Ok((key.clone(), registry.get(key)?)))
            .collect::<Result<_, OptError>>()?;
        let datasets: Vec<Dataset> = plan
            .spec
            .schemes
            .iter()
            .enumerate()
            .map(|(s, scheme)| {
                let records: Vec<_> = parts
                    .iter()
                    .flat_map(|part| part.datasets[s].records.iter().cloned())
                    .collect();
                let pareto = pareto_front(&records.iter().map(|r| r.ed).collect::<Vec<_>>());
                Dataset {
                    scheme: scheme.clone(),
                    label: first.datasets[s].label.clone(),
                    records,
                    pareto,
                }
            })
            .collect();

        let mut checks = dominance_checks(&solvers, &plan.theta_grid, &datasets);
        if plan.spec.verify_model {
            // The monolithic runner appends exactly one model-vs-sim
            // check after the dominance checks; shard 0 ran it at the
            // same (interval, θ, scheme), so its last check is that one.
            let model_check = first
                .checks
                .last()
                .ok_or_else(|| bad("shard 0 carries no model-vs-simulation check".to_string()))?;
            checks.push(model_check.clone());
        }

        Ok(Report {
            spec: plan.spec.clone(),
            tnom_v1: first.tnom_v1,
            intervals_used: first.intervals_used.clone(),
            theta_center: plan.theta_center,
            theta_grid: plan.theta_grid.clone(),
            baseline: first.baseline,
            datasets,
            checks,
        })
    }
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn ed_bits(ed: timing::EnergyDelay) -> (u64, u64) {
    (ed.energy.to_bits(), ed.time.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::StageKind;
    use workloads::Benchmark;

    fn grid_spec(points: usize) -> ScenarioSpec {
        ScenarioSpec::new("plan", Benchmark::Radix, StageKind::Decode)
            .thetas(ThetaSpec::Grid((1..=points).map(|i| i as f64).collect()))
    }

    #[test]
    fn shards_tile_the_grid_contiguously() {
        for (points, max_shards) in [(9usize, 4usize), (5, 8), (1, 3), (12, 1)] {
            let spec = grid_spec(points);
            // A pure-Grid spec resolves without data; plan() needs data
            // only for the center, so exercise the chunking directly.
            let grid = spec.thetas.resolve(1.0);
            let ranges = ThreadPool::new(max_shards).chunk_ranges(grid.len());
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(!r.is_empty());
                next = r.end;
            }
            assert_eq!(next, points);
            assert!(ranges.len() <= max_shards.min(points));
        }
    }

    #[test]
    fn merge_rejects_wrong_part_count_and_order() {
        let data = crate::experiments::characterize(
            Benchmark::Radix,
            StageKind::Decode,
            &crate::experiments::HarnessConfig::quick(),
        )
        .expect("characterizes");
        let spec = grid_spec(4).schemes(["synts_poly", "no_ts"]);
        let plan = ShardPlan::plan(&spec, &data, 2).expect("plans");
        assert_eq!(plan.shards().len(), 2);
        let parts: Vec<Report> = plan
            .shards()
            .iter()
            .map(|shard| {
                crate::scenario::Experiment::new(shard.spec.clone())
                    .run_on(&data)
                    .expect("runs")
            })
            .collect();
        let registry = SolverRegistry::with_defaults();

        let err = plan
            .merge(&parts[..1], &registry)
            .expect_err("missing part");
        assert!(err.to_string().contains("expected 2"), "{err}");
        let swapped: Vec<Report> = vec![parts[1].clone(), parts[0].clone()];
        let err = plan.merge(&swapped, &registry).expect_err("out of order");
        assert!(err.to_string().contains("shard order"), "{err}");

        let merged = plan.merge(&parts, &registry).expect("merges");
        let monolithic = crate::scenario::Experiment::new(spec)
            .run_on(&data)
            .expect("runs");
        assert_eq!(merged.to_json_string(), monolithic.to_json_string());
    }
}
