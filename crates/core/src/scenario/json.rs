//! A minimal, deterministic JSON value — the serialization substrate of
//! the scenario layer.
//!
//! The workspace builds hermetically against a no-op `serde` stand-in
//! (see `vendor/README.md`), so the spec/report types serialize through
//! this hand-rolled tree instead of derives. Two properties matter more
//! than generality here:
//!
//! * **byte stability** — object keys keep insertion order and numbers
//!   render via Rust's shortest-round-trip `f64` formatting, so the same
//!   [`crate::scenario::Report`] always renders to the same bytes (the
//!   golden-fixture and cross-`SYNTS_THREADS` determinism tests rely on
//!   this);
//! * **full round-trip** — the parser accepts everything the writer
//!   emits (and standard JSON generally), so committed spec files are
//!   plain JSON editable by hand.

use std::fmt::Write as _;

use crate::error::OptError;

/// A JSON value tree. Object fields keep insertion order (no map
/// re-sorting), which is what makes rendering deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder starting empty.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (no-op with a debug assert on other
    /// variants).
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> Json {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.to_string(), value));
        } else {
            debug_assert!(false, "field() on a non-object");
        }
        self
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array value from any collection of elements.
    #[must_use]
    pub fn arr(items: impl Into<Vec<Json>>) -> Json {
        Json::Arr(items.into())
    }

    /// A number value.
    #[must_use]
    pub fn num(x: f64) -> Json {
        Json::Num(x)
    }

    /// Field lookup on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u32::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation — the format of
    /// committed spec files and golden report fixtures.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must be a single value plus whitespace).
    ///
    /// # Errors
    ///
    /// [`OptError::Spec`] with a byte offset on malformed input.
    pub fn parse(src: &str) -> Result<Json, OptError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's shortest-round-trip formatting: deterministic, and the
        // parser recovers the identical f64.
        let _ = write!(out, "{x}");
    } else {
        // JSON has no NaN/Inf; `null` is the least-surprising stand-in.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> OptError {
        // Report line:column, not a raw byte offset — remote clients see
        // this string verbatim and spec files are edited by hand.
        let mut line = 1usize;
        let mut col = 1usize;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        OptError::Spec(format!("json (line {line}, column {col}): {message}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), OptError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, OptError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, OptError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, OptError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, OptError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, OptError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos = end;
                            // Surrogates are rejected rather than paired:
                            // the writer never emits them and spec files
                            // have no use for astral escapes split in two.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-synchronize on UTF-8: step back and consume the
                    // full code point from the source slice.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, OptError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_typical_documents() {
        for src in [
            r#"{"a":1,"b":[true,false,null],"c":"x\ny","d":-0.5,"e":{}}"#,
            r#"[1e3,2.5E-2,0.125,17]"#,
            r#""just a string""#,
            "[]",
            "{}",
        ] {
            let parsed = Json::parse(src).expect(src);
            let rendered = parsed.render();
            assert_eq!(Json::parse(&rendered).expect("re-parses"), parsed, "{src}");
        }
    }

    #[test]
    fn numbers_render_shortest_round_trip() {
        for x in [0.0, 1.0, -3.5, 0.1, 1e30, 123456789.0, 1.0 / 3.0] {
            let rendered = Json::Num(x).render();
            let back = Json::parse(&rendered)
                .expect("parses")
                .as_f64()
                .expect("num");
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {rendered}");
        }
    }

    #[test]
    fn object_field_order_is_preserved() {
        let j = Json::obj()
            .field("zebra", Json::num(1.0))
            .field("alpha", Json::num(2.0));
        assert_eq!(j.render(), r#"{"zebra":1,"alpha":2}"#);
    }

    #[test]
    fn pretty_rendering_is_parseable_and_stable() {
        let j = Json::obj()
            .field("name", Json::str("fig"))
            .field("grid", Json::Arr(vec![Json::num(1.0), Json::num(2.0)]));
        let pretty = j.render_pretty();
        assert!(pretty.contains("\n  \"name\": \"fig\""), "{pretty}");
        assert_eq!(Json::parse(&pretty).expect("parses"), j);
    }

    #[test]
    fn rejects_malformed_input() {
        for src in [
            "{",
            "[1,",
            "\"unterminated",
            "01x",
            "{\"a\" 1}",
            "[1] 2",
            "tru",
        ] {
            assert!(Json::parse(src).is_err(), "{src} should fail");
        }
    }

    #[test]
    fn parse_errors_name_line_and_column() {
        let err = Json::parse("{\n  \"a\": 1,\n  \"b\": oops\n}").expect_err("bad literal");
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("column 8"), "{msg}");
        let err = Json::parse("[1, 2,]").expect_err("trailing comma");
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode £";
        let rendered = Json::str(s).render();
        assert_eq!(
            Json::parse(&rendered).expect("parses").as_str(),
            Some(s),
            "{rendered}"
        );
    }
}
