//! The declarative scenario layer: data-driven end-to-end runs.
//!
//! The paper's evaluation is a grid of scenarios — benchmark × pipeline
//! stage × scheme × θ. This module makes such runs *data* instead of
//! hand-wired loops:
//!
//! * [`ScenarioSpec`] — a serializable description (benchmark, stage,
//!   registry keys, θ grid, interval selection, workers, quality);
//! * [`Experiment`] — the one runner entry point, executing a spec over
//!   the [`crate::SolverRegistry`] and the [`crate::parallel`] pool;
//! * [`Report`] / [`Dataset`] / [`Record`] — typed results (per-scheme
//!   assignments, energy/time, Pareto fronts, invariant checks) with
//!   text-free JSON/CSV sinks, so golden fixtures pin canonical JSON
//!   rather than prose;
//! * [`Json`] — the deterministic serialization substrate (the vendored
//!   `serde` stand-in is derive-only, see `vendor/README.md`);
//! * [`ShardPlan`] / [`Shard`] — the service-facing decomposition of one
//!   spec into independently runnable θ-chunks, with [`Report::merge`]
//!   reassembling the partial reports bit-identically.
//!
//! ```no_run
//! use synts_core::scenario::{Experiment, ScenarioSpec, ThetaSpec};
//! use workloads::Benchmark;
//! use circuits::StageKind;
//!
//! # fn main() -> Result<(), synts_core::OptError> {
//! let spec = ScenarioSpec::new("demo", Benchmark::Radix, StageKind::Decode)
//!     .schemes(["synts_poly", "per_core_ts", "no_ts"])
//!     .thetas(ThetaSpec::LogAroundEqualWeight { points: 9, decades: 2.0 })
//!     .normalize_to("nominal");
//! let report = Experiment::new(spec).run()?;
//! println!("{}", report.to_json_string());
//! # Ok(())
//! # }
//! ```

pub mod json;
pub mod report;
pub mod runner;
pub mod service;
pub mod spec;

pub use json::Json;
pub use report::{Dataset, Record, Report, ReportCheck};
pub use runner::Experiment;
pub use service::{Shard, ShardPlan};
pub use spec::{IntervalSelection, Quality, ScenarioSpec, ThetaSpec};
