//! Typed, serializable experiment results: [`Report`] → [`Dataset`] →
//! [`Record`].
//!
//! A report is the structured product of one [`crate::scenario::Experiment`]
//! run — per-scheme energy/time records over the θ grid, Pareto-front
//! indices, optional per-interval assignments and the engine's invariant
//! checks — with JSON and CSV sinks. Golden fixtures pin the canonical
//! JSON rendering, not prose, so renderers can evolve freely.

use timing::EnergyDelay;

use crate::model::Assignment;
use crate::scenario::json::Json;
use crate::scenario::spec::ScenarioSpec;

/// One (scheme, θ) measurement, aggregated over the selected intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The weight this record was solved at.
    pub theta: f64,
    /// Summed energy/time in absolute units.
    pub ed: EnergyDelay,
    /// Energy/time normalized to the report baseline, when the spec
    /// names a `normalize_to` scheme.
    pub normalized: Option<EnergyDelay>,
    /// The chosen assignments, one per selected interval, when the spec
    /// sets `record_assignments`.
    pub assignments: Option<Vec<Assignment>>,
}

impl Record {
    fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .field("theta", Json::num(self.theta))
            .field("energy", Json::num(self.ed.energy))
            .field("time", Json::num(self.ed.time))
            .field("edp", Json::num(self.ed.edp()));
        if let Some(n) = self.normalized {
            j = j
                .field("norm_energy", Json::num(n.energy))
                .field("norm_time", Json::num(n.time));
        }
        if let Some(assignments) = &self.assignments {
            let per_interval: Vec<Json> = assignments
                .iter()
                .map(|a| {
                    Json::Arr(
                        a.points
                            .iter()
                            .map(|p| {
                                Json::Arr(vec![
                                    Json::num(p.voltage_idx as f64),
                                    Json::num(p.tsr_idx as f64),
                                ])
                            })
                            .collect(),
                    )
                })
                .collect();
            j = j.field("assignments", Json::Arr(per_interval));
        }
        j
    }
}

/// One scheme's records over the whole θ grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// The registry key the scheme was resolved from.
    pub scheme: String,
    /// The solver's display label ([`crate::Solver::label`]).
    pub label: String,
    /// One record per θ grid point, in grid order.
    pub records: Vec<Record>,
    /// Indices (into `records`) of the Pareto-optimal points, sorted by
    /// ascending time.
    pub pareto: Vec<usize>,
}

impl Dataset {
    /// The records' energy/time points, in grid order.
    #[must_use]
    pub fn points(&self) -> Vec<EnergyDelay> {
        self.records.iter().map(|r| r.ed).collect()
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .field("scheme", Json::str(&self.scheme))
            .field("label", Json::str(&self.label))
            .field(
                "records",
                Json::Arr(self.records.iter().map(Record::to_json).collect()),
            )
            .field(
                "pareto",
                Json::Arr(self.pareto.iter().map(|&i| Json::num(i as f64)).collect()),
            )
    }
}

/// One engine-evaluated invariant (e.g. "the exact solver's weighted
/// cost lower-bounds every baseline at every θ").
#[derive(Debug, Clone, PartialEq)]
pub struct ReportCheck {
    /// The claim, in words.
    pub claim: String,
    /// Whether the data satisfies it.
    pub pass: bool,
}

impl ReportCheck {
    /// Creates a check.
    pub fn new(claim: impl Into<String>, pass: bool) -> ReportCheck {
        ReportCheck {
            claim: claim.into(),
            pass,
        }
    }
}

/// The structured result of running a [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The spec that produced this report.
    pub spec: ScenarioSpec,
    /// Stage nominal period at 1.0 V (characterization output).
    pub tnom_v1: f64,
    /// Indices of the intervals the records aggregate over.
    pub intervals_used: Vec<usize>,
    /// The equal-weight θ of the selected intervals.
    pub theta_center: f64,
    /// The resolved θ grid, in record order.
    pub theta_grid: Vec<f64>,
    /// Absolute energy/time of the `normalize_to` scheme at the
    /// equal-weight θ, when the spec names one.
    pub baseline: Option<EnergyDelay>,
    /// One dataset per spec scheme, in spec order.
    pub datasets: Vec<Dataset>,
    /// Engine invariant checks.
    pub checks: Vec<ReportCheck>,
}

impl Report {
    /// The dataset of a scheme, by registry key.
    #[must_use]
    pub fn dataset(&self, scheme: &str) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.scheme == scheme)
    }

    /// Whether every check passed.
    #[must_use]
    pub fn all_checks_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The JSON tree of the report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .field("spec", self.spec.to_json())
            .field("tnom_v1", Json::num(self.tnom_v1))
            .field(
                "intervals_used",
                Json::Arr(
                    self.intervals_used
                        .iter()
                        .map(|&i| Json::num(i as f64))
                        .collect(),
                ),
            )
            .field("theta_center", Json::num(self.theta_center))
            .field(
                "theta_grid",
                Json::Arr(self.theta_grid.iter().map(|&t| Json::num(t)).collect()),
            );
        j = j.field(
            "baseline",
            match self.baseline {
                Some(base) => Json::obj()
                    .field("energy", Json::num(base.energy))
                    .field("time", Json::num(base.time)),
                None => Json::Null,
            },
        );
        j.field(
            "datasets",
            Json::Arr(self.datasets.iter().map(Dataset::to_json).collect()),
        )
        .field(
            "checks",
            Json::Arr(
                self.checks
                    .iter()
                    .map(|c| {
                        Json::obj()
                            .field("claim", Json::str(&c.claim))
                            .field("pass", Json::Bool(c.pass))
                    })
                    .collect(),
            ),
        )
    }

    /// Canonical pretty JSON — the golden-fixture format. Byte-stable
    /// across worker counts and platforms for a given spec.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parses a report back from its canonical JSON tree — the inverse
    /// of [`Report::to_json`]. Numbers survive bit-exactly (the JSON
    /// layer stores `f64`s and renders shortest-round-trip), so
    /// `Report::from_json(&r.to_json()).to_json_string()` reproduces
    /// `r.to_json_string()` byte for byte. That exactness is what lets
    /// the service journal persist partial shard reports and merge them
    /// after a crash into a report identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`crate::OptError::Spec`] naming the offending field.
    pub fn from_json(json: &Json) -> Result<Report, crate::OptError> {
        let bad = |path: &str, expected: &str| {
            crate::OptError::Spec(format!("report: {path}: {expected}"))
        };
        let num = |key: &str| -> Result<f64, crate::OptError> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| bad(key, "expected a number"))
        };
        let spec =
            ScenarioSpec::from_json(json.get("spec").ok_or_else(|| bad("spec", "missing"))?)?;
        let intervals_used = json
            .get("intervals_used")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("intervals_used", "expected an array"))?
            .iter()
            .map(|v| v.as_usize())
            .collect::<Option<Vec<usize>>>()
            .ok_or_else(|| bad("intervals_used", "expected integer indices"))?;
        let theta_grid = json
            .get("theta_grid")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("theta_grid", "expected an array"))?
            .iter()
            .map(Json::as_f64)
            .collect::<Option<Vec<f64>>>()
            .ok_or_else(|| bad("theta_grid", "expected numbers"))?;
        let baseline = match json.get("baseline") {
            None | Some(Json::Null) => None,
            Some(value) => Some(parse_energy_delay(value, "baseline")?),
        };
        let datasets = json
            .get("datasets")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("datasets", "expected an array"))?
            .iter()
            .map(parse_dataset)
            .collect::<Result<Vec<Dataset>, _>>()?;
        let checks = json
            .get("checks")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("checks", "expected an array"))?
            .iter()
            .map(|c| {
                let claim = c
                    .get("claim")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("checks[].claim", "expected a string"))?;
                let pass = c
                    .get("pass")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("checks[].pass", "expected a bool"))?;
                Ok(ReportCheck::new(claim, pass))
            })
            .collect::<Result<Vec<ReportCheck>, crate::OptError>>()?;
        Ok(Report {
            spec,
            tnom_v1: num("tnom_v1")?,
            intervals_used,
            theta_center: num("theta_center")?,
            theta_grid,
            baseline,
            datasets,
            checks,
        })
    }

    /// Parses a report from canonical JSON text (journal payloads,
    /// fixture files).
    ///
    /// # Errors
    ///
    /// [`crate::OptError::Spec`] on malformed JSON or an invalid field.
    pub fn from_json_str(src: &str) -> Result<Report, crate::OptError> {
        Report::from_json(&Json::parse(src)?)
    }

    /// CSV payload: header plus one row per (scheme, θ) record.
    #[must_use]
    pub fn to_csv(&self) -> (Vec<&'static str>, Vec<Vec<String>>) {
        let normalized = self.baseline.is_some();
        let mut header = vec!["scheme", "label", "theta", "energy", "time", "edp"];
        if normalized {
            header.push("norm_energy");
            header.push("norm_time");
        }
        let mut rows = Vec::new();
        for ds in &self.datasets {
            for r in &ds.records {
                let mut row = vec![
                    ds.scheme.clone(),
                    ds.label.clone(),
                    format!("{}", r.theta),
                    format!("{}", r.ed.energy),
                    format!("{}", r.ed.time),
                    format!("{}", r.ed.edp()),
                ];
                if let Some(n) = r.normalized {
                    row.push(format!("{}", n.energy));
                    row.push(format!("{}", n.time));
                }
                rows.push(row);
            }
        }
        (header, rows)
    }
}

fn parse_energy_delay(json: &Json, path: &str) -> Result<EnergyDelay, crate::OptError> {
    let field = |key: &str| -> Result<f64, crate::OptError> {
        json.get(key).and_then(Json::as_f64).ok_or_else(|| {
            crate::OptError::Spec(format!("report: {path}.{key}: expected a number"))
        })
    };
    Ok(EnergyDelay::new(field("energy")?, field("time")?))
}

fn parse_record(json: &Json) -> Result<Record, crate::OptError> {
    let bad =
        |path: &str, expected: &str| crate::OptError::Spec(format!("report: {path}: {expected}"));
    let num = |key: &str| -> Result<f64, crate::OptError> {
        json.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| bad(&format!("records[].{key}"), "expected a number"))
    };
    // `edp` is derived (energy × time) — recomputed by the writer, so the
    // parser ignores it rather than trusting a possibly stale copy.
    let normalized = match json.get("norm_energy") {
        None => None,
        Some(_) => Some(EnergyDelay::new(num("norm_energy")?, num("norm_time")?)),
    };
    let assignments = match json.get("assignments") {
        None => None,
        Some(value) => {
            let per_interval = value
                .as_arr()
                .ok_or_else(|| bad("records[].assignments", "expected an array"))?;
            let mut out = Vec::with_capacity(per_interval.len());
            for interval in per_interval {
                let pairs = interval
                    .as_arr()
                    .ok_or_else(|| bad("records[].assignments[]", "expected an array"))?;
                let mut points = Vec::with_capacity(pairs.len());
                for pair in pairs {
                    let idxs = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        bad(
                            "records[].assignments[][]",
                            "expected a [voltage, tsr] pair",
                        )
                    })?;
                    let voltage_idx = idxs[0]
                        .as_usize()
                        .ok_or_else(|| bad("records[].assignments[][][0]", "expected an index"))?;
                    let tsr_idx = idxs[1]
                        .as_usize()
                        .ok_or_else(|| bad("records[].assignments[][][1]", "expected an index"))?;
                    points.push(crate::model::OperatingPoint {
                        voltage_idx,
                        tsr_idx,
                    });
                }
                out.push(Assignment { points });
            }
            Some(out)
        }
    };
    Ok(Record {
        theta: num("theta")?,
        ed: EnergyDelay::new(num("energy")?, num("time")?),
        normalized,
        assignments,
    })
}

fn parse_dataset(json: &Json) -> Result<Dataset, crate::OptError> {
    let bad =
        |path: &str, expected: &str| crate::OptError::Spec(format!("report: {path}: {expected}"));
    let scheme = json
        .get("scheme")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("datasets[].scheme", "expected a string"))?;
    let label = json
        .get("label")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("datasets[].label", "expected a string"))?;
    let records = json
        .get("records")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("datasets[].records", "expected an array"))?
        .iter()
        .map(parse_record)
        .collect::<Result<Vec<Record>, _>>()?;
    let pareto = json
        .get("pareto")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("datasets[].pareto", "expected an array"))?
        .iter()
        .map(|v| v.as_usize())
        .collect::<Option<Vec<usize>>>()
        .ok_or_else(|| bad("datasets[].pareto", "expected integer indices"))?;
    Ok(Dataset {
        scheme: scheme.to_string(),
        label: label.to_string(),
        records,
        pareto,
    })
}
